"""Common type system (CTS).

The CTS "provides types and operations found in many programming
languages" (paper §1, item 1).  The simulation carries enough of it to
type method signatures, verify stack discipline, and describe managed
objects: primitives, classes, and single-dimensional arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import CliError, TypeMismatch

__all__ = ["PrimitiveKind", "CliType", "TypeRegistry"]


class PrimitiveKind(enum.Enum):
    """Built-in value kinds (a pragmatic subset of ECMA-335 I.8)."""

    VOID = "void"
    BOOL = "bool"
    CHAR = "char"
    INT32 = "int32"
    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"     # reference type, but built-in
    OBJECT = "object"


@dataclass(frozen=True)
class CliType:
    """A type reference: primitive, class, or array of element type."""

    name: str
    primitive: Optional[PrimitiveKind] = None
    element: Optional["CliType"] = None  # set for arrays

    @property
    def is_primitive(self) -> bool:
        return self.primitive is not None

    @property
    def is_array(self) -> bool:
        return self.element is not None

    @property
    def is_reference(self) -> bool:
        """Reference types live on the managed heap."""
        if self.is_array:
            return True
        return self.primitive in (PrimitiveKind.STRING, PrimitiveKind.OBJECT, None)

    @property
    def is_numeric(self) -> bool:
        return self.primitive in (
            PrimitiveKind.INT32,
            PrimitiveKind.INT64,
            PrimitiveKind.FLOAT64,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


# Canonical singletons for the primitives.
VOID = CliType("void", PrimitiveKind.VOID)
BOOL = CliType("bool", PrimitiveKind.BOOL)
CHAR = CliType("char", PrimitiveKind.CHAR)
INT32 = CliType("int32", PrimitiveKind.INT32)
INT64 = CliType("int64", PrimitiveKind.INT64)
FLOAT64 = CliType("float64", PrimitiveKind.FLOAT64)
STRING = CliType("string", PrimitiveKind.STRING)
OBJECT = CliType("object", PrimitiveKind.OBJECT)

_PRIMITIVES: Dict[str, CliType] = {
    t.name: t for t in (VOID, BOOL, CHAR, INT32, INT64, FLOAT64, STRING, OBJECT)
}


class TypeRegistry:
    """Interns types by name so identity comparisons work across the VM.

    Class types are registered once; arrays are derived on demand.
    """

    def __init__(self) -> None:
        self._types: Dict[str, CliType] = dict(_PRIMITIVES)

    def primitive(self, name: str) -> CliType:
        """Look up a built-in by name (``"int32"``, ``"string"``, ...)."""
        try:
            t = self._types[name]
        except KeyError:
            raise CliError(f"unknown primitive type {name!r}") from None
        if not t.is_primitive:
            raise TypeMismatch(f"{name!r} is not a primitive")
        return t

    def register_class(self, name: str) -> CliType:
        """Register (or fetch) a class type."""
        existing = self._types.get(name)
        if existing is not None:
            if existing.is_primitive or existing.is_array:
                raise CliError(f"type name collision on {name!r}")
            return existing
        t = CliType(name)
        self._types[name] = t
        return t

    def array_of(self, element: CliType) -> CliType:
        """The single-dimensional array type over ``element``."""
        name = element.name + "[]"
        existing = self._types.get(name)
        if existing is not None:
            return existing
        t = CliType(name, element=element)
        self._types[name] = t
        return t

    def resolve(self, name: str) -> CliType:
        """Resolve any registered type name (arrays created on demand)."""
        if name.endswith("[]"):
            return self.array_of(self.resolve(name[:-2]))
        try:
            return self._types[name]
        except KeyError:
            raise CliError(f"unresolved type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types or (name.endswith("[]") and name[:-2] in self)

    def __len__(self) -> int:
        return len(self._types)

"""Template compilation of CIL bodies to native Python closures.

"When a program is running, its bytecode is compiled on the fly into
the native code recognized by the machine architecture" (paper §1).
The cost side of that statement lives in :mod:`repro.cli.jit`; this
module supplies the *code* side: after the simulated compile delay is
charged, an eligible method body is template-compiled into one Python
generator function — the wall-clock analogue of the real JIT's
native-code emission.  The interpreter dispatches warm calls to the
compiled closure instead of re-decoding one opcode at a time.

Compilation strategy (classic template JIT, one tier):

* the verified body is split into **basic blocks**; the generated
  function is a block-dispatch loop (``while 1: if _b == 0: ...``)
  whose per-block code is straight-line Python;
* evaluation-stack values live in **fixed slot variables**
  (``s0..s{max_stack-1}``) — slot indices are static because the
  verifier proves the stack depth at every pc is path-independent;
* straight-line **arithmetic is fused** into single Python
  expressions at compile time (``ldloc i; ldloc i; mul`` becomes
  ``(l0 * l0)``), so a fused run of CIL instructions costs one
  Python statement instead of one dispatch round-trip each;
* locals and arguments are plain Python locals (``l0..``, ``a0..``).

Simulated-time semantics are **bit-identical** to the interpreter
tier.  The generated code carries the same ``since_yield`` accrual the
interpreter maintains per instruction, flushed as the same sequence of
``engine.timeout`` events: quantum flushes of exactly
``instruction_cost × dispatch_quantum``, partial flushes before every
call / allocation / return / managed-exception unwind.  Because pure
arithmetic neither reads the clock nor schedules events, deferring the
accrual bookkeeping to fusion boundaries produces the *same* event
sequence at the *same* simulated times — differential tests in
``tests/cli/test_jitcompile.py`` assert equality of results, simulated
durations, instruction counts and event interleavings on every
``ext_cil`` kernel.

Protected regions (``try/catch``) and ``throw`` are compiled too: the
block-dispatch loop runs inside a host ``try``, a ``_pc`` shadow
variable records the pc of every statement that can raise a managed
exception, and the ``except`` arm replays the interpreter's unwind
protocol (``handler_for`` lookup, caught-counter, partial flush,
``exception_overhead`` charge, stack reset to the exception object).
Only methods with an unknown ``conv`` kind or malformed call operands
fall back to the interpreter tier — the simulation's analogue of
methods a real JIT refuses and leaves to the fallback engine.
"""

from __future__ import annotations

import linecache
import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cli.cil import Instruction, Op, STACK_EFFECTS
from repro.cli.metadata import MethodDef
from repro.cli.verifier import _call_effect, _well_formed_call_tuple

__all__ = ["GATES", "native_eligible", "compile_native", "native_source"]


#: Opcodes the template compiler knows how to emit (all of them).
_SUPPORTED = frozenset(Op)

_CONV_KINDS = {"i4", "int32", "i8", "int64", "r8", "float64"}

_I32_MASK = 0xFFFFFFFF
_I64_MASK = 0xFFFFFFFFFFFFFFFF


#: Recognized values for the eligibility ``gate`` parameter.
GATES = ("syntactic", "analysis")


def _pc_eligible(ins: Instruction) -> bool:
    """Can the template compiler emit code for this one instruction?"""
    op = ins.op
    if op not in _SUPPORTED:
        return False
    if op is Op.CONV and ins.operand not in _CONV_KINDS:
        return False
    if op in (Op.CALL, Op.CALLINTRINSIC):
        operand = ins.operand
        if op is Op.CALL and isinstance(operand, MethodDef):
            return True
        if not _well_formed_call_tuple(operand):
            return False
    if op is Op.LDSTR and not isinstance(ins.operand, str):
        return False
    return True


def native_eligible(method: MethodDef, gate: str = "syntactic") -> bool:
    """True when ``method`` can be template-compiled.

    Requirements: verified (``max_stack`` recorded), statically
    well-formed call operands, and known ``conv`` kinds.

    ``gate`` selects how much of the body those requirements cover:

    * ``"syntactic"`` (default) — every instruction must pass, even
      unreachable ones.  Cheap, and the historical behavior.
    * ``"analysis"`` — only instructions the abstract interpreter in
      :mod:`repro.analysis.typeflow` proves reachable must pass.  The
      analyzer's reachability mirrors :func:`_entry_depths` exactly
      (same successor relation, same unconditional handler seeding),
      so every pc the template compiler would emit is still checked —
      the analysis gate accepts a strict superset of the syntactic
      gate (it additionally admits methods whose only problematic
      instructions are dead code the compiler skips).
    """
    if gate not in GATES:
        raise ValueError(f"unknown gate {gate!r}; choices: {list(GATES)}")
    if method.max_stack is None:
        return False
    body = method.body
    if gate == "analysis":
        from repro.analysis.typeflow import analyze_types  # lazy: no cycle

        pcs = analyze_types(method).reachable_pcs()
    else:
        pcs = range(len(body))
    return all(_pc_eligible(body[pc]) for pc in pcs)


# ---------------------------------------------------------------------------
# Dataflow: entry stack depth per pc (the verifier proved consistency).
# ---------------------------------------------------------------------------

def _entry_depths(method: MethodDef) -> List[Optional[int]]:
    body = method.body
    depths: List[Optional[int]] = [None] * len(body)
    depths[0] = 0
    worklist: List[Tuple[int, int]] = [(0, 0)]
    # Handlers are entered with the stack cleared and the exception
    # pushed — depth 1, exactly as the verifier seeds them.
    for h in method.handlers:
        if depths[h.handler_start] is None:
            depths[h.handler_start] = 1
            worklist.append((h.handler_start, 1))
    while worklist:
        pc, depth = worklist.pop()
        ins = body[pc]
        op = ins.op
        if op is Op.RET or op is Op.THROW:
            continue
        if op in (Op.CALL, Op.CALLINTRINSIC):
            pops, pushes = _call_effect(ins)
        else:
            pops, pushes = STACK_EFFECTS[op]
        depth = depth - pops + pushes
        targets = []
        if op is Op.BR:
            targets = [ins.operand]
        elif op in (Op.BRTRUE, Op.BRFALSE):
            targets = [ins.operand, pc + 1]
        else:
            targets = [pc + 1]
        for t in targets:
            if depths[t] is None:
                depths[t] = depth
                worklist.append((t, depth))
    return depths


def _block_leaders(method: MethodDef, depths: List[Optional[int]]) -> List[int]:
    body = method.body
    leaders = {0}
    for h in method.handlers:
        leaders.add(h.handler_start)
    for pc, ins in enumerate(body):
        if depths[pc] is None:
            continue  # unreachable
        op = ins.op
        if op is Op.BR:
            leaders.add(ins.operand)
        elif op in (Op.BRTRUE, Op.BRFALSE):
            leaders.add(ins.operand)
            if pc + 1 < len(body):
                leaders.add(pc + 1)
    return sorted(pc for pc in leaders if depths[pc] is not None)


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)


class _Ctx:
    """Per-method compile context: const pool + temp counter."""

    def __init__(self, method: MethodDef) -> None:
        self.method = method
        self.consts: List[Any] = []
        self._const_index: Dict[int, int] = {}
        self.ntemp = 0

    def const(self, value: Any) -> str:
        """Name of a closure constant holding ``value``."""
        key = id(value)
        idx = self._const_index.get(key)
        if idx is None:
            idx = len(self.consts)
            self.consts.append(value)
            self._const_index[key] = idx
        return f"_k{idx}"

    def temp(self) -> str:
        self.ntemp += 1
        return f"_t{self.ntemp}"


def _lit(value: Any, ctx: _Ctx) -> str:
    """Literal source for an LDC operand (const pool for exotica)."""
    if value is None or value is True or value is False:
        return repr(value)
    if isinstance(value, (int, float, str)):
        return repr(value)
    return ctx.const(value)


_WORD = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")


def _mentions(expr: str, name: str) -> bool:
    return name in _WORD.findall(expr)


class _Stack:
    """Compile-time model of the evaluation stack.

    Entries are ``('expr', code)`` — a pure Python expression over
    slots/locals/args/consts — or ``('cmp', cond)`` — an un-materialized
    comparison usable directly in a branch condition.
    """

    def __init__(self, depth: int) -> None:
        self.entries: List[Tuple[str, str]] = [
            ("expr", f"s{i}") for i in range(depth)
        ]

    def __len__(self) -> int:
        return len(self.entries)

    def push(self, kind: str, code: str) -> None:
        self.entries.append((kind, code))

    def pop(self) -> Tuple[str, str]:
        return self.entries.pop()

    def materialize(self, entry: Tuple[str, str]) -> str:
        kind, code = entry
        if kind == "cmp":
            return f"(1 if {code} else 0)"
        return code

    def spill_all(self, out: _Writer) -> None:
        """Park every entry in its canonical slot (tuple assignment)."""
        targets, values = [], []
        for i, entry in enumerate(self.entries):
            code = self.materialize(entry)
            if code != f"s{i}":
                targets.append(f"s{i}")
                values.append(code)
                self.entries[i] = ("expr", f"s{i}")
        if targets:
            out.w(f"{', '.join(targets)} = {', '.join(values)}")

    def spill_mentioning(self, name: str, out: _Writer) -> None:
        """Park entries whose expression reads ``name`` (about to be
        reassigned)."""
        targets, values = [], []
        for i, entry in enumerate(self.entries):
            code = self.materialize(entry)
            if code != f"s{i}" and _mentions(code, name):
                targets.append(f"s{i}")
                values.append(code)
                self.entries[i] = ("expr", f"s{i}")
        if targets:
            out.w(f"{', '.join(targets)} = {', '.join(values)}")


def _is_nonzero_number(entry: Tuple[str, str]) -> bool:
    """True when the entry is a literal numeric constant != 0 (lets the
    compiler drop the divide-by-zero guard)."""
    kind, code = entry
    if kind != "expr":
        return False
    try:
        value = eval(code, {"__builtins__": {}})  # literals only
    except Exception:
        return False
    return isinstance(value, (int, float)) and value != 0


_BINOPS = {
    Op.ADD: "+", Op.SUB: "-", Op.MUL: "*", Op.AND: "&", Op.OR: "|",
    Op.XOR: "^", Op.SHL: "<<", Op.SHR: ">>",
}
_CMPOPS = {Op.CEQ: "==", Op.CGT: ">", Op.CLT: "<"}


def _generate(method: MethodDef, params) -> Tuple[str, _Ctx]:
    """Python source for ``method`` under interpreter ``params``."""
    ctx = _Ctx(method)
    body = method.body
    depths = _entry_depths(method)
    leaders = _block_leaders(method, depths)
    block_of = {pc: i for i, pc in enumerate(leaders)}
    name = method.full_name

    out = _Writer()
    out.w("def _compiled(interp, args, _depth):")
    out.indent += 1
    out.w("_timeout = interp.engine.timeout")
    out.w("_statics = interp.statics")
    out.w("_heap_allocate = interp.heap.allocate")
    out.w("_intrinsics = interp.intrinsics")
    for i in range(method.param_count):
        out.w(f"a{i} = args[{i}]")
    if method.local_count:
        out.w(" = ".join(f"l{i}" for i in range(method.local_count)) + " = 0")
    if method.max_stack:
        out.w(" = ".join(f"s{i}" for i in range(method.max_stack)) + " = None")
    out.w("_sy = 0")
    out.w("_ex = 0")
    out.w("_b = 0")
    out.w("_incall = False")
    has_handlers = bool(method.handlers)
    if has_handlers:
        out.w("_pc = 0")
    out.w("try:")
    out.indent += 1
    out.w("while True:")
    out.indent += 1
    if has_handlers:
        # Handler dispatch needs the faulting pc: the block bodies keep
        # a ``_pc`` shadow current at every potentially-throwing
        # statement, and the except arm below replays the interpreter's
        # catch protocol.
        out.w("try:")
        out.indent += 1

    def track_pc(pc: int) -> None:
        if has_handlers:
            out.w(f"_pc = {pc}")

    def emit_sync(pending: int) -> None:
        """Accrue ``pending`` instructions; flush whole quanta exactly
        as the interpreter's per-instruction check would."""
        if not pending:
            return
        out.w(f"_sy += {pending}; _ex += {pending}")
        out.w("while _sy >= _Q:")
        out.indent += 1
        out.w("yield _timeout(_ICQ)")
        out.w("_sy -= _Q")
        out.indent -= 1

    def emit_partial_flush() -> None:
        """The interpreter's ``if since_yield: timeout(...)`` flush."""
        out.w("if _sy:")
        out.indent += 1
        out.w("yield _timeout(_IC * _sy)")
        out.w("_sy = 0")
        out.indent -= 1

    for bi, leader in enumerate(leaders):
        out.w(f"{'if' if bi == 0 else 'elif'} _b == {bi}:")
        out.indent += 1
        stack = _Stack(depths[leader])
        pending = 0
        pc = leader
        end = leaders[bi + 1] if bi + 1 < len(leaders) else len(body)
        closed = False  # block emitted its terminator
        while pc < end:
            ins = body[pc]
            op = ins.op
            pending += 1

            if op is Op.NOP:
                pass
            elif op is Op.LDC:
                stack.push("expr", _lit(ins.operand, ctx))
            elif op is Op.LDLOC:
                stack.push("expr", f"l{ins.operand}")
            elif op is Op.STLOC:
                entry = stack.pop()
                stack.spill_mentioning(f"l{ins.operand}", out)
                out.w(f"l{ins.operand} = {stack.materialize(entry)}")
            elif op is Op.LDARG:
                stack.push("expr", f"a{ins.operand}")
            elif op is Op.STARG:
                entry = stack.pop()
                stack.spill_mentioning(f"a{ins.operand}", out)
                out.w(f"a{ins.operand} = {stack.materialize(entry)}")
            elif op is Op.LDSFLD:
                # Statics are shared mutable state: read eagerly into
                # the slot rather than fusing a stale read.
                d = len(stack)
                out.w(f"s{d} = _statics.get({ins.operand!r}, 0)")
                stack.push("expr", f"s{d}")
            elif op is Op.STSFLD:
                entry = stack.pop()
                out.w(f"_statics[{ins.operand!r}] = {stack.materialize(entry)}")
            elif op is Op.DUP:
                entry = stack.pop()
                d = len(stack)
                code = stack.materialize(entry)
                if code != f"s{d}":
                    out.w(f"s{d} = {code}")
                stack.push("expr", f"s{d}")
                stack.push("expr", f"s{d}")
            elif op is Op.POP:
                entry = stack.pop()
                code = stack.materialize(entry)
                # Force evaluation of fused expressions so a type
                # fault inside them still surfaces (atoms are dropped).
                if not _WORD.fullmatch(code):
                    out.w(f"_ = {code}")
            elif op in _BINOPS:
                b = stack.materialize(stack.pop())
                a = stack.materialize(stack.pop())
                stack.push("expr", f"({a} {_BINOPS[op]} {b})")
            elif op in (Op.DIV, Op.REM):
                fn = "_truncdiv" if op is Op.DIV else "_truncrem"
                bent = stack.pop()
                aent = stack.pop()
                if _is_nonzero_number(bent):
                    stack.push("expr", (
                        f"{fn}({stack.materialize(aent)}, "
                        f"{stack.materialize(bent)})"
                    ))
                else:
                    # Mirrors the interpreter: the zero check (and the
                    # unwind accounting) happens with the div counted.
                    emit_sync(pending)
                    pending = 0
                    track_pc(pc)
                    ta, tb = ctx.temp(), ctx.temp()
                    out.w(f"{ta} = {stack.materialize(aent)}")
                    out.w(f"{tb} = {stack.materialize(bent)}")
                    out.w(f"if {tb} == 0 and isinstance({tb}, int):")
                    out.indent += 1
                    out.w(
                        "raise ManagedException("
                        f"'System.DivideByZeroException', '{name}@{pc}')"
                    )
                    out.indent -= 1
                    d = len(stack)
                    out.w(f"s{d} = {fn}({ta}, {tb})")
                    stack.push("expr", f"s{d}")
            elif op is Op.NEG:
                a = stack.materialize(stack.pop())
                stack.push("expr", f"(- {a})")
            elif op is Op.NOT:
                entry = stack.pop()
                t = ctx.temp()
                out.w(f"{t} = {stack.materialize(entry)}")
                out.w(f"if not isinstance({t}, int):")
                out.indent += 1
                out.w(
                    "raise TypeMismatch("
                    f"'{name}@{pc}: not on ' + type({t}).__name__)"
                )
                out.indent -= 1
                d = len(stack)
                out.w(f"s{d} = ~{t}")
                stack.push("expr", f"s{d}")
            elif op in _CMPOPS:
                b = stack.materialize(stack.pop())
                a = stack.materialize(stack.pop())
                stack.push("cmp", f"{a} {_CMPOPS[op]} {b}")
            elif op is Op.CONV:
                a = stack.materialize(stack.pop())
                kind = ins.operand
                if kind in ("i4", "int32"):
                    stack.push(
                        "expr",
                        f"_wrap_signed(int({a}), {_I32_MASK}, {0x80000000})",
                    )
                elif kind in ("i8", "int64"):
                    stack.push(
                        "expr",
                        f"_wrap_signed(int({a}), {_I64_MASK}, {1 << 63})",
                    )
                else:  # r8 / float64 (eligibility filtered the rest)
                    stack.push("expr", f"float({a})")
            elif op is Op.LDLEN:
                emit_sync(pending)
                pending = 0
                track_pc(pc)
                entry = stack.pop()
                t = ctx.temp()
                out.w(f"{t} = {stack.materialize(entry)}")
                out.w(f"if {t} is None:")
                out.indent += 1
                out.w(
                    "raise ManagedException('System.NullReferenceException', "
                    f"'{name}@{pc}: ldlen on null')"
                )
                out.indent -= 1
                out.w(f"if not isinstance({t}, ManagedArray):")
                out.indent += 1
                out.w(
                    "raise TypeMismatch("
                    f"'{name}@{pc}: ldlen on ' + type({t}).__name__)"
                )
                out.indent -= 1
                d = len(stack)
                out.w(f"s{d} = {t}.length")
                stack.push("expr", f"s{d}")
            elif op is Op.LDSTR:
                s = ins.operand
                emit_sync(pending)
                pending = 0
                emit_partial_flush()
                out.w(f"yield from _heap_allocate({2 * len(s)})")
                stack.push("expr", _lit(s, ctx))
            elif op is Op.NEWARR:
                entry = stack.pop()
                t = ctx.temp()
                out.w(f"{t} = {stack.materialize(entry)}")
                out.w(f"if not isinstance({t}, int):")
                out.indent += 1
                out.w(
                    "raise TypeMismatch("
                    f"'{name}@{pc}: newarr length is ' + type({t}).__name__)"
                )
                out.indent -= 1
                elem = ins.operand if isinstance(ins.operand, int) else 8
                arr = ctx.temp()
                out.w(f"{arr} = ManagedArray({t}, {elem})")
                emit_sync(pending)
                pending = 0
                emit_partial_flush()
                out.w(f"yield from _heap_allocate({arr}.byte_size)")
                d = len(stack)
                out.w(f"s{d} = {arr}")
                stack.push("expr", f"s{d}")
            elif op is Op.CALL:
                operand = ins.operand
                if isinstance(operand, MethodDef):
                    argc = operand.param_count
                    returns = operand.returns
                    callee = ctx.const(operand)
                else:
                    _cname, argc, returns = operand
                    callee = ctx.temp()
                arg_entries = [stack.pop() for _ in range(argc)][::-1]
                call_args = ", ".join(
                    stack.materialize(e) for e in arg_entries
                )
                if not isinstance(operand, MethodDef):
                    out.w(
                        f"{callee} = interp._resolve_call("
                        f"{ctx.const(operand)}, _method, {pc})"
                    )
                emit_sync(pending)
                pending = 0
                track_pc(pc)
                emit_partial_flush()
                out.w("yield _timeout(_CO)")
                out.w("_incall = True")
                out.w(
                    f"_r = yield from interp.invoke("
                    f"{callee}, ({call_args}{',' if argc else ''}), _depth + 1)"
                )
                out.w("_incall = False")
                if returns:
                    d = len(stack)
                    out.w(f"s{d} = _r")
                    stack.push("expr", f"s{d}")
            elif op is Op.CALLINTRINSIC:
                iname, argc, returns = ins.operand
                arg_entries = [stack.pop() for _ in range(argc)][::-1]
                call_args = ", ".join(
                    stack.materialize(e) for e in arg_entries
                )
                fn = ctx.temp()
                out.w(f"{fn} = _intrinsics.get({iname!r})")
                out.w(f"if {fn} is None:")
                out.indent += 1
                out.w(
                    "raise ExecutionFault("
                    f"{(name + '@' + str(pc) + ': unknown intrinsic ' + repr(iname))!r})"
                )
                out.indent -= 1
                emit_sync(pending)
                pending = 0
                track_pc(pc)
                emit_partial_flush()
                out.w("yield _timeout(_CO)")
                out.w("_incall = True")
                out.w(f"_r = {fn}({call_args})")
                out.w("if hasattr(_r, 'send') and hasattr(_r, 'throw'):")
                out.indent += 1
                out.w("_r = yield from _r")
                out.indent -= 1
                out.w("_incall = False")
                if returns:
                    d = len(stack)
                    out.w(f"s{d} = _r")
                    stack.push("expr", f"s{d}")
            elif op is Op.RET:
                emit_sync(pending)
                pending = 0
                emit_partial_flush()
                out.w("interp.instructions_executed.add(_ex)")
                if method.returns:
                    out.w(f"return {stack.materialize(stack.pop())}")
                else:
                    out.w("return None")
                closed = True
                break
            elif op is Op.THROW:
                entry = stack.pop()
                emit_sync(pending)
                pending = 0
                track_pc(pc)
                t = ctx.temp()
                out.w(f"{t} = {stack.materialize(entry)}")
                out.w("interp.exceptions_thrown.add()")
                emit_partial_flush()
                out.w("yield _timeout(_EO)")
                out.w(f"if isinstance({t}, ManagedException):")
                out.indent += 1
                out.w(f"raise {t}")
                out.indent -= 1
                out.w(
                    "raise ManagedException('System.Exception', "
                    f"str({t}), payload={t})"
                )
                closed = True
                break
            elif op is Op.BR:
                emit_sync(pending)
                pending = 0
                stack.spill_all(out)
                out.w(f"_b = {block_of[ins.operand]}")
                out.w("continue")
                closed = True
                break
            elif op in (Op.BRTRUE, Op.BRFALSE):
                entry = stack.pop()
                kind, code = entry
                cond = code if kind == "cmp" else stack.materialize(entry)
                if op is Op.BRFALSE:
                    cond = f"not ({cond})"
                emit_sync(pending)
                pending = 0
                stack.spill_all(out)
                out.w(f"if {cond}:")
                out.indent += 1
                out.w(f"_b = {block_of[ins.operand]}")
                out.w("continue")
                out.indent -= 1
                out.w(f"_b = {block_of[pc + 1]}")
                out.w("continue")
                closed = True
                break
            else:  # pragma: no cover - eligibility filtered these out
                raise AssertionError(f"unsupported opcode {op!r}")
            pc += 1

        if not closed:
            # Fall through into the next leader.
            emit_sync(pending)
            stack.spill_all(out)
            out.w(f"_b = {bi + 1}")
            out.w("continue")
        out.indent -= 1

    if has_handlers:
        out.indent -= 1  # inner try
        out.w("except ManagedException as _exc:")
        out.indent += 1
        # The interpreter's catch protocol: innermost matching handler,
        # caught-counter, partial flush, exception_overhead, stack
        # cleared to just the exception, transfer to the handler block.
        out.w("_h = _method.handler_for(_pc, _exc.type_name)")
        out.w("if _h is None:")
        out.indent += 1
        out.w("raise")
        out.indent -= 1
        out.w("interp.exceptions_caught.add()")
        out.w("_incall = False")
        out.w("if _sy:")
        out.indent += 1
        out.w("yield _timeout(_IC * _sy)")
        out.w("_sy = 0")
        out.indent -= 1
        out.w("yield _timeout(_EO)")
        out.w("s0 = _exc")
        hb = {
            h.handler_start: block_of[h.handler_start]
            for h in method.handlers
        }
        out.w(f"_b = {ctx.const(hb)}[_h.handler_start]")
        out.w("continue")
        out.indent -= 1

    out.indent -= 1  # while
    out.indent -= 1  # try
    out.w("except ManagedException:")
    out.indent += 1
    out.w("if _sy:")
    out.indent += 1
    out.w("yield _timeout(_IC * _sy)")
    out.indent -= 1
    out.w("interp.instructions_executed.add(_ex)")
    out.w("raise")
    out.indent -= 1
    out.w("except TypeError:")
    out.indent += 1
    out.w("if _incall:")
    out.indent += 1
    out.w("raise")
    out.indent -= 1
    out.w(
        "raise TypeMismatch("
        f"'{name}: operand type mismatch in compiled code') from None"
    )
    out.indent -= 1
    return "\n".join(out.lines) + "\n", ctx


def native_source(method: MethodDef, params, gate: str = "syntactic") -> Optional[str]:
    """The generated Python source (None when ineligible) — for tests
    and the disassembler."""
    if not native_eligible(method, gate=gate):
        return None
    source, _ctx = _generate(method, params)
    return source


def compile_native(method: MethodDef, params, gate: str = "syntactic") -> Optional[Callable]:
    """Compile ``method`` into a Python generator function.

    Returns ``fn(interp, args, depth)`` or None when the method is not
    eligible for the template tier (under ``gate`` — see
    :func:`native_eligible`).  ``params`` is the interpreter's
    :class:`~repro.cli.interpreter.InterpreterParams`; its cost
    constants are baked into the generated code.
    """
    if not native_eligible(method, gate=gate):
        return None
    from repro.cli.interpreter import (  # local import: avoids a cycle
        ManagedArray,
        ManagedException,
        _truncdiv,
        _truncrem,
        _wrap_signed,
    )
    from repro.errors import ExecutionFault, TypeMismatch

    source, ctx = _generate(method, params)
    filename = f"<cil-native:{method.full_name}#{method.token:#x}>"
    # Register with linecache so tracebacks through compiled frames
    # show the generated source.
    linecache.cache[filename] = (
        len(source), None, source.splitlines(True), filename,
    )
    namespace: Dict[str, Any] = {
        "_Q": params.dispatch_quantum,
        "_IC": params.instruction_cost,
        "_ICQ": params.instruction_cost * params.dispatch_quantum,
        "_CO": params.call_overhead,
        "_EO": params.exception_overhead,
        "_method": method,
        "ManagedException": ManagedException,
        "ManagedArray": ManagedArray,
        "ExecutionFault": ExecutionFault,
        "TypeMismatch": TypeMismatch,
        "_truncdiv": _truncdiv,
        "_truncrem": _truncrem,
        "_wrap_signed": _wrap_signed,
        "isinstance": isinstance,
        "hasattr": hasattr,
        "int": int,
        "float": float,
        "str": str,
        "type": type,
    }
    for i, value in enumerate(ctx.consts):
        namespace[f"_k{i}"] = value
    exec(compile(source, filename, "exec"), namespace)
    fn = namespace["_compiled"]
    fn.__name__ = f"cil_native_{method.name}"
    fn.__qualname__ = fn.__name__
    fn.__cil_source__ = source
    return fn

"""JIT compilation cost model.

"When a program is running, its bytecode is compiled on the fly into
the native code recognized by the machine architecture" (paper §1).
The observable consequence the paper measures (§4.2, Table 6 reason 2)
is that *the first* invocation of each method pays a compile delay:
"functions are compiled only when they are required".

The model: first call to a method charges
``base_cost + per_instruction_cost × body size`` of simulated time;
subsequent calls are free.  Concurrent first-calls from several
managed threads serialize on a per-method compile event, as in the
real runtime.

Since the fast-execution-core pass, "compiling" also has a wall-clock
side: once the simulated compile delay has been paid, eligible method
bodies are template-compiled into Python closures by
:mod:`repro.cli.jitcompile` and the interpreter dispatches warm calls
to the compiled code.  Simulated times and charged costs are
unchanged — the native tier only makes the *simulator* faster.  Set
``REPRO_JIT_NATIVE=0`` (or pass ``native_enabled=False``) to force
the pure interpreter tier, e.g. for differential testing or
before/after wall-clock measurements.

Eligibility is decided by a *gate* (see
:func:`repro.cli.jitcompile.native_eligible`): the default
``syntactic`` gate scans the whole body; the ``analysis`` gate uses
:mod:`repro.analysis` reachability to also admit methods whose only
unsupported instructions are dead code.  Select it with
``REPRO_JIT_GATE=analysis`` or the ``gate=`` constructor argument.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.cli.metadata import MethodDef
from repro.errors import JitError
from repro.sim import Counter, Engine, Tally
from repro.sim.event import Event

__all__ = ["JitParams", "JitCompiler"]


@dataclass(frozen=True)
class JitParams:
    """Compile-time cost coefficients (seconds).

    Defaults land first-call penalties in the hundreds of
    microseconds to low milliseconds for kernel-sized methods,
    matching the magnitude of the warm-up the paper reports.
    """

    base_cost: float = 150e-6
    per_instruction_cost: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.base_cost < 0 or self.per_instruction_cost < 0:
            raise JitError("JIT costs must be >= 0")


class JitCompiler:
    """Tracks which methods are compiled and charges compile time."""

    def __init__(
        self,
        engine: Engine,
        params: JitParams | None = None,
        native_enabled: Optional[bool] = None,
        gate: Optional[str] = None,
    ) -> None:
        self.engine = engine
        self.params = params or JitParams()
        self._compiled: Set[int] = set()
        self._in_progress: Dict[int, Event] = {}
        if native_enabled is None:
            native_enabled = os.environ.get("REPRO_JIT_NATIVE", "1") != "0"
        self.native_enabled = native_enabled
        if gate is None:
            gate = os.environ.get("REPRO_JIT_GATE", "syntactic")
        from repro.cli.jitcompile import GATES

        if gate not in GATES:
            raise JitError(
                f"unknown JIT gate {gate!r}; choices: {list(GATES)} "
                "(set REPRO_JIT_GATE or the gate= argument)"
            )
        self.gate = gate
        #: (method token, InterpreterParams, gate) → compiled closure,
        #: or None when the method fell back to the interpreter tier.
        self._native: Dict[Tuple[int, Any, str], Optional[Callable]] = {}
        self.methods_compiled = Counter("jit.methods")
        self.compile_times = Tally("jit.time")
        engine.metrics.register(self.methods_compiled.name, self.methods_compiled)
        engine.metrics.register(self.compile_times.name, self.compile_times)

    def is_compiled(self, method: MethodDef) -> bool:
        return method.token in self._compiled

    def compile_cost(self, method: MethodDef) -> float:
        """Pure cost for compiling ``method`` (no state change)."""
        return self.params.base_cost + self.params.per_instruction_cost * method.size

    def ensure_compiled(self, method: MethodDef):
        """Generator: charge compile time on the first call; wait if
        another thread is already compiling; free afterwards.

        Returns True if *this* call performed the compilation.
        """
        token = method.token
        if token in self._compiled:
            return False
        pending = self._in_progress.get(token)
        if pending is not None:
            # Another thread is compiling: wait for it.
            yield pending
            return False
        done = self.engine.event()
        self._in_progress[token] = done
        cost = self.compile_cost(method)
        started = self.engine.now
        yield self.engine.timeout(cost)
        self._compiled.add(token)
        del self._in_progress[token]
        self.methods_compiled.add()
        self.compile_times.record(cost)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.complete("jit.compile", "jit", started,
                            method=method.name, size=method.size)
        done.succeed()
        return True

    def native_for(self, method: MethodDef, interp_params) -> Optional[Callable]:
        """The template-compiled closure for ``method`` under
        ``interp_params``, or None when the method is ineligible (it
        then stays on the interpreter tier).

        Compilation is cached per (method, cost parameters); the cache
        is a wall-clock artifact and deliberately survives
        :meth:`reset` — a simulated cold start re-charges compile
        *time* but need not redo the host-side codegen.
        """
        if not self.native_enabled:
            return None
        key = (method.token, interp_params, self.gate)
        try:
            return self._native[key]
        except KeyError:
            from repro.cli.jitcompile import compile_native

            fn = compile_native(method, interp_params, gate=self.gate)
            self._native[key] = fn
            return fn

    def reset(self) -> None:
        """Forget all compilations (simulate a cold VM start)."""
        if self._in_progress:
            raise JitError("cannot reset while compilations are in progress")
        self._compiled.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JitCompiler compiled={len(self._compiled)}>"

"""Named virtual-machine cost profiles.

The paper's §5 future work proposes "compar[ing] the performance of
the benchmarks on different CLI-based virtual machines".  The
simulation makes that possible today: a profile bundles JIT and
interpreter cost parameters describing one implementation style.

* ``sscli`` — the Shared Source CLI the paper measures: a fast,
  non-optimizing JIT and slow generated code (modeled as slow
  dispatch).
* ``commercial`` — an optimizing commercial CLR: compilation costs
  several times more per method, but steady-state code runs an order
  of magnitude faster.
* ``interpreter`` — a pure interpreter (e.g. an early Mono ``mint``):
  no compile-on-first-call delay at all, slowest steady state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cli.interpreter import InterpreterParams
from repro.cli.jit import JitParams
from repro.errors import CliError

__all__ = ["VmProfile", "VM_PROFILES", "get_profile"]


@dataclass(frozen=True)
class VmProfile:
    """One CLI implementation's cost parameters."""

    name: str
    description: str
    jit: JitParams
    interp: InterpreterParams


VM_PROFILES: Dict[str, VmProfile] = {
    "sscli": VmProfile(
        name="sscli",
        description="Shared Source CLI (Rotor): quick non-optimizing JIT, slow code",
        jit=JitParams(base_cost=150e-6, per_instruction_cost=1.5e-6),
        interp=InterpreterParams(instruction_cost=60e-9),
    ),
    "commercial": VmProfile(
        name="commercial",
        description="Optimizing commercial CLR: expensive JIT, fast code",
        jit=JitParams(base_cost=600e-6, per_instruction_cost=6e-6),
        interp=InterpreterParams(instruction_cost=6e-9),
    ),
    "interpreter": VmProfile(
        name="interpreter",
        description="Pure interpreter: no JIT delay, slowest steady state",
        jit=JitParams(base_cost=0.0, per_instruction_cost=0.0),
        interp=InterpreterParams(instruction_cost=300e-9),
    ),
}


def get_profile(name: str) -> VmProfile:
    """Look up a profile by name."""
    try:
        return VM_PROFILES[name.lower()]
    except KeyError:
        raise CliError(
            f"unknown VM profile {name!r}; choices: {sorted(VM_PROFILES)}"
        ) from None

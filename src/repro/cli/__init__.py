"""Simulated Common Language Infrastructure (CLI) virtual machine.

The paper's §1 lists the CLI's four main areas; each maps to a module
here:

1. **Common type system** → :mod:`repro.cli.typesystem`
2. **Common language specification** (usage conventions enforced when
   building components) → the checks in :mod:`repro.cli.assembly`
3. **Virtual execution system** (loads, verifies, JIT-compiles and
   runs programs) → :mod:`repro.cli.verifier`,
   :mod:`repro.cli.jit`, :mod:`repro.cli.interpreter`
4. **Metadata** → :mod:`repro.cli.metadata`

The benchmarks in :mod:`repro.traces` and :mod:`repro.webserver` write
their kernels as CIL method bodies and execute them through this VM,
so compile-on-first-call JIT latency, managed-thread scheduling and
managed I/O calls follow the same structural path as on the SSCLI.

Quick tour::

    from repro.cli import CliRuntime, MethodBuilder, Op

    rt = CliRuntime(engine)
    m = (MethodBuilder("add2")
         .arg("x").ldarg("x").ldc(2).add().ret())
    result = yield from rt.invoke(m.build(), [40])   # → 42
"""

from repro.cli.typesystem import CliType, PrimitiveKind, TypeRegistry
from repro.cli.metadata import (
    AssemblyDef,
    ExceptionHandler,
    FieldDef,
    MethodDef,
    TypeDef,
)
from repro.cli.cil import Instruction, Op
from repro.cli.assembly import AssemblyBuilder, MethodBuilder
from repro.cli.verifier import verify_method
from repro.cli.jit import JitCompiler, JitParams
from repro.cli.gc import GcParams, ManagedHeap
from repro.cli.interpreter import (
    Interpreter,
    InterpreterParams,
    ManagedArray,
    ManagedException,
)
from repro.cli.threads import ManagedThread
from repro.cli.perfcounter import PerformanceCounter, Stopwatch
from repro.cli.runtime import CliRuntime, RuntimeParams

__all__ = [
    "CliType",
    "PrimitiveKind",
    "TypeRegistry",
    "AssemblyDef",
    "TypeDef",
    "MethodDef",
    "FieldDef",
    "Op",
    "Instruction",
    "AssemblyBuilder",
    "MethodBuilder",
    "verify_method",
    "JitCompiler",
    "JitParams",
    "ManagedHeap",
    "GcParams",
    "Interpreter",
    "InterpreterParams",
    "ManagedArray",
    "ManagedException",
    "ExceptionHandler",
    "ManagedThread",
    "PerformanceCounter",
    "Stopwatch",
    "CliRuntime",
    "RuntimeParams",
]

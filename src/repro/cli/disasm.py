"""CIL disassembler and textual assembler.

``disassemble`` renders a method body as ILASM-flavoured text with
labels, protected-region markers and signature summary; ``parse_cil``
assembles the same dialect back into a verified method.  Round-trip
stability is tested property-style.

Dialect::

    .method sum_to_n(n) returns
    .locals i acc
        ldc 0
        stloc acc
    top:
        ldloc i
        ldarg n
        clt
        brfalse done
        ...
        br top
    done:
        ldloc acc
        ret

Protected regions use ``.try`` / ``.endtry <handler-label> [prefix]``
directives at the matching positions.

Run as a CLI — ``python -m repro.cli.disasm <bundled-assembly>
[Type::Method] [--cfg]`` — to list any bundled benchmark method;
``--cfg`` appends the basic-block graph from :mod:`repro.analysis.cfg`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cli.assembly import MethodBuilder
from repro.cli.cil import Instruction, Op
from repro.cli.metadata import MethodDef
from repro.errors import CliError

__all__ = ["disassemble", "parse_cil", "format_cfg", "main"]

_BRANCHES = (Op.BR, Op.BRTRUE, Op.BRFALSE)


def _operand_text(ins: Instruction, labels: Dict[int, str]) -> str:
    if ins.op in _BRANCHES:
        return labels[ins.operand]
    if ins.op is Op.CALL:
        target = ins.operand
        if isinstance(target, MethodDef):
            return f"{target.full_name}/{target.param_count}" + (
                "/ret" if target.returns else ""
            )
        name, argc, returns = target
        return f"{name}/{argc}" + ("/ret" if returns else "")
    if ins.op is Op.CALLINTRINSIC:
        name, argc, returns = ins.operand
        return f"{name}/{argc}" + ("/ret" if returns else "")
    if ins.operand is None:
        return ""
    return repr(ins.operand)


def disassemble(method: MethodDef) -> str:
    """Readable listing of ``method``."""
    # Label every branch target and handler entry.
    targets = set()
    for ins in method.body:
        if ins.op in _BRANCHES:
            targets.add(ins.operand)
    for h in method.handlers:
        targets.add(h.handler_start)
    labels = {pc: f"L{pc}" for pc in sorted(targets)}

    try_starts: Dict[int, int] = {}
    try_ends: Dict[int, List] = {}
    for h in method.handlers:
        try_starts[h.try_start] = try_starts.get(h.try_start, 0) + 1
        try_ends.setdefault(h.try_end, []).append(h)

    header = f".method {method.name}({', '.join(method.param_names)})"
    if method.returns:
        header += " returns"
    lines = [header]
    if method.local_count:
        lines.append(f".locals {' '.join(f'v{i}' for i in range(method.local_count))}")
    for pc, ins in enumerate(method.body):
        for h in try_ends.get(pc, ()):
            lines.append(f"    .endtry {labels[h.handler_start]} {h.catches}")
        for _ in range(try_starts.get(pc, 0)):
            lines.append("    .try")
        if pc in labels:
            lines.append(f"{labels[pc]}:")
        text = f"    {ins.op.value}"
        operand = _operand_text(ins, labels)
        if operand:
            text += f" {operand}"
        lines.append(text)
    for h in try_ends.get(len(method.body), ()):
        lines.append(f"    .endtry {labels[h.handler_start]} {h.catches}")
    return "\n".join(lines)


def _parse_operand(op: Op, text: str) -> Tuple[Op, object]:
    if op in (Op.CALL, Op.CALLINTRINSIC):
        parts = text.split("/")
        if len(parts) < 2:
            raise CliError(f"{op.value} operand needs name/argc[/ret]: {text!r}")
        name = parts[0]
        try:
            argc = int(parts[1])
        except ValueError:
            raise CliError(f"bad argc in {text!r}") from None
        returns = len(parts) > 2 and parts[2] == "ret"
        return op, (name, argc, returns)
    if op in _BRANCHES:
        return op, text  # label, resolved by the builder
    if op is Op.CONV:
        return op, text
    if op in (Op.LDSFLD, Op.STSFLD):
        return op, text
    # Literals (ints, floats, strings) use Python literal syntax.
    try:
        return op, ast.literal_eval(text)
    except (ValueError, SyntaxError):
        raise CliError(f"cannot parse operand {text!r} for {op.value}") from None


def parse_cil(source: str, verify: bool = True) -> MethodDef:
    """Assemble the textual dialect back into a verified method."""
    builder: Optional[MethodBuilder] = None
    ops_by_name = {op.value: op for op in Op}
    for raw in source.splitlines():
        line = raw.split(";", 1)[0].strip()  # ';' starts a comment
        if not line:
            continue
        if line.startswith(".method"):
            if builder is not None:
                raise CliError("only one .method per source")
            rest = line[len(".method"):].strip()
            returns = rest.endswith("returns")
            if returns:
                rest = rest[: -len("returns")].strip()
            if "(" not in rest or not rest.endswith(")"):
                raise CliError(f"malformed .method line: {raw!r}")
            name, params = rest[:-1].split("(", 1)
            builder = MethodBuilder(name.strip(), returns=returns)
            for param in filter(None, (p.strip() for p in params.split(","))):
                builder.arg(param)
            continue
        if builder is None:
            raise CliError("source must start with a .method directive")
        if line.startswith(".locals"):
            for local in line[len(".locals"):].split():
                builder.local(local)
            continue
        if line == ".try":
            builder.begin_try()
            continue
        if line.startswith(".endtry"):
            parts = line.split()
            if len(parts) < 2:
                raise CliError(".endtry needs a handler label")
            catches = parts[2] if len(parts) > 2 else "System."
            builder.end_try(parts[1], catches=catches)
            continue
        if line.endswith(":"):
            builder.label(line[:-1].strip())
            continue
        mnemonic, _, operand_text = line.partition(" ")
        op = ops_by_name.get(mnemonic)
        if op is None:
            raise CliError(f"unknown mnemonic {mnemonic!r}")
        operand_text = operand_text.strip()
        if not operand_text:
            if op in (Op.LDLOC, Op.STLOC, Op.LDARG, Op.STARG, Op.LDC,
                      Op.CALL, Op.CALLINTRINSIC, *_BRANCHES):
                raise CliError(f"{mnemonic} requires an operand")
            builder.emit(op)
            continue
        if op in (Op.LDLOC, Op.STLOC):
            getattr(builder, op.value)(operand_text if not operand_text.isdigit()
                                       else int(operand_text))
            continue
        if op in (Op.LDARG, Op.STARG):
            getattr(builder, op.value)(operand_text if not operand_text.isdigit()
                                       else int(operand_text))
            continue
        op, operand = _parse_operand(op, operand_text)
        builder.emit(op, operand)
    if builder is None:
        raise CliError("empty CIL source")
    return builder.build(verify=verify)


def format_cfg(method: MethodDef) -> str:
    """The method's basic-block graph as deterministic text (the
    ``--cfg`` rendering): blocks with pc ranges, handler/unreachable
    flags, and fall/branch/exception edges."""
    from repro.analysis.cfg import build_cfg  # lazy: keep cli→analysis soft

    return build_cfg(method).format()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: disassemble bundled benchmark methods."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli.disasm",
        description="Disassemble bundled benchmark CIL methods.",
    )
    parser.add_argument(
        "assembly",
        help="bundled assembly name (microbench, trace_replay, "
        "webserver, qcrd_cil)",
    )
    parser.add_argument(
        "method",
        nargs="?",
        help="qualified method name (Type::Method); default: all methods",
    )
    parser.add_argument(
        "--cfg",
        action="store_true",
        help="also print the basic-block graph of each method",
    )
    args = parser.parse_args(argv)

    from repro.analysis.targets import bundled_assembly

    try:
        assembly = bundled_assembly(args.assembly)
        if args.method is not None:
            methods = [assembly.find_method(args.method)]
        else:
            methods = [
                assembly.types[t].methods[m]
                for t in sorted(assembly.types)
                for m in sorted(assembly.types[t].methods)
            ]
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    chunks = []
    for method in methods:
        text = disassemble(method)
        if args.cfg:
            text += "\n\n" + format_cfg(method)
        chunks.append(text)
    print("\n\n".join(chunks))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""Managed threads.

The paper's web server creates "a separate thread to handle each
client connection", starting it with ``Start()``.  A
:class:`ManagedThread` wraps a simulation process running a managed
method (or a raw coroutine) with a start-up overhead, mirroring CLR
thread creation cost.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Sequence, TYPE_CHECKING

from repro.cli.metadata import MethodDef
from repro.errors import CliError
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.cli.runtime import CliRuntime

__all__ = ["ManagedThread"]

_thread_ids = itertools.count(1)


class ManagedThread:
    """A thread executing one managed entry point.

    Usage (inside a simulation process)::

        t = runtime.create_thread(handler_method, [arg])
        t.start()
        ...
        result = yield from t.join()
    """

    def __init__(
        self,
        runtime: "CliRuntime",
        entry: "MethodDef | Any",
        args: Sequence[Any] = (),
        name: Optional[str] = None,
    ) -> None:
        self.thread_id = next(_thread_ids)
        self.runtime = runtime
        self.entry = entry
        self.args = list(args)
        self.name = name or f"thread-{self.thread_id}"
        self._process: Optional[Process] = None

    def start(self) -> "ManagedThread":
        """Begin execution (the paper's ``Start()``); idempotence is an
        error, as in the CLR."""
        if self._process is not None:
            raise CliError(f"{self.name}: thread already started")
        self._process = self.runtime.engine.process(self._run(), name=self.name)
        self.runtime.threads_started.add()
        return self

    def _run(self):
        # Thread creation cost lands on the new thread, not the spawner.
        yield self.runtime.engine.timeout(self.runtime.params.thread_start_overhead)
        if isinstance(self.entry, MethodDef):
            result = yield from self.runtime.interpreter.invoke(self.entry, self.args)
        else:
            # A raw simulation coroutine (for class-library-side helpers).
            result = yield from self.entry
        return result

    @property
    def started(self) -> bool:
        return self._process is not None

    @property
    def is_alive(self) -> bool:
        return self._process is not None and self._process.is_alive

    def join(self):
        """Generator: wait for completion; returns the entry's result
        (re-raising its exception)."""
        if self._process is None:
            raise CliError(f"{self.name}: join before start")
        result = yield self._process
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "unstarted" if not self.started else ("alive" if self.is_alive else "done")
        return f"<ManagedThread {self.name} {state}>"

"""Assembly metadata.

Metadata "is used to describe and reference types defined by the
common type system" (paper §1, item 4).  The simulation's metadata is
the structural description the loader, verifier and JIT consume:
assemblies contain types, types contain fields and methods, methods
carry signatures and CIL bodies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cli.cil import Instruction
from repro.cli.typesystem import CliType, TypeRegistry, VOID
from repro.errors import CliError

__all__ = ["FieldDef", "MethodDef", "TypeDef", "AssemblyDef", "ExceptionHandler"]

_tokens = itertools.count(0x06000001)  # MethodDef token space, ECMA-335 style


@dataclass
class FieldDef:
    """A named, typed field of a class."""

    name: str
    field_type: CliType


@dataclass(frozen=True)
class ExceptionHandler:
    """One protected region: instructions in ``[try_start, try_end)``
    are guarded; a managed exception raised there transfers control to
    ``handler_start`` with the evaluation stack cleared and the
    exception object pushed.

    ``catches`` is the exception type-name prefix this handler accepts;
    the default ``"System."`` catches every built-in managed exception
    (a catch-all in this simulation's type universe).
    """

    try_start: int
    try_end: int
    handler_start: int
    catches: str = "System."

    def covers(self, pc: int) -> bool:
        return self.try_start <= pc < self.try_end

    def matches(self, type_name: str) -> bool:
        return type_name.startswith(self.catches)


class MethodDef:
    """A method: signature + CIL body.

    ``param_names`` gives the argument order; ``local_count`` sizes the
    local-variable frame.  ``body`` is a flat instruction list with
    branch operands already resolved to indices (the
    :class:`~repro.cli.assembly.MethodBuilder` does this).
    """

    def __init__(
        self,
        name: str,
        body: Sequence[Instruction],
        param_names: Sequence[str] = (),
        local_count: int = 0,
        returns: bool = False,
        return_type: Optional[CliType] = None,
        declaring_type: Optional["TypeDef"] = None,
        handlers: Sequence["ExceptionHandler"] = (),
    ) -> None:
        if local_count < 0:
            raise CliError(f"negative local count: {local_count}")
        self.token = next(_tokens)
        self.name = name
        self.body: List[Instruction] = list(body)
        self.param_names: List[str] = list(param_names)
        self.local_count = local_count
        self.returns = returns
        self.return_type = return_type if return_type is not None else VOID
        self.declaring_type = declaring_type
        self.handlers: List[ExceptionHandler] = list(handlers)
        self.max_stack: Optional[int] = None  # filled in by the verifier
        #: Per-pc entry stack types from ``verify_method(...,
        #: record_types=True)`` (None per pc = unreachable); consumed
        #: by the interpreter's debug mode.
        self.entry_types: Optional[List] = None

    def handler_for(self, pc: int, type_name: str) -> Optional["ExceptionHandler"]:
        """Innermost matching handler guarding ``pc`` (ties broken by
        declaration order, matching lexical-nesting emission order)."""
        best: Optional[ExceptionHandler] = None
        for h in self.handlers:
            if h.covers(pc) and h.matches(type_name):
                if best is None or (
                    h.try_end - h.try_start < best.try_end - best.try_start
                ):
                    best = h
        return best

    @property
    def param_count(self) -> int:
        return len(self.param_names)

    @property
    def full_name(self) -> str:
        if self.declaring_type is not None:
            return f"{self.declaring_type.name}::{self.name}"
        return self.name

    @property
    def size(self) -> int:
        """Body length in instructions (drives the JIT cost model)."""
        return len(self.body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MethodDef {self.full_name} {self.size} instrs>"


class TypeDef:
    """A class: named container of fields and methods."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.fields: Dict[str, FieldDef] = {}
        self.methods: Dict[str, MethodDef] = {}

    def add_field(self, name: str, field_type: CliType) -> FieldDef:
        if name in self.fields:
            raise CliError(f"duplicate field {self.name}.{name}")
        f = FieldDef(name, field_type)
        self.fields[name] = f
        return f

    def add_method(self, method: MethodDef) -> MethodDef:
        if method.name in self.methods:
            raise CliError(f"duplicate method {self.name}::{method.name}")
        method.declaring_type = self
        self.methods[method.name] = method
        return method

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TypeDef {self.name} methods={len(self.methods)}>"


class AssemblyDef:
    """A loadable unit: named collection of types plus a type registry."""

    def __init__(self, name: str, version: str = "1.0.0.0") -> None:
        self.name = name
        self.version = version
        self.types: Dict[str, TypeDef] = {}
        self.registry = TypeRegistry()

    def add_type(self, type_def: TypeDef) -> TypeDef:
        if type_def.name in self.types:
            raise CliError(f"duplicate type {type_def.name} in {self.name}")
        self.types[type_def.name] = type_def
        self.registry.register_class(type_def.name)
        return type_def

    def find_method(self, qualified: str) -> MethodDef:
        """Resolve ``"Type::Method"`` (or bare ``"Method"`` searched
        across all types)."""
        if "::" in qualified:
            type_name, method_name = qualified.split("::", 1)
            tdef = self.types.get(type_name)
            if tdef is None or method_name not in tdef.methods:
                raise CliError(f"method {qualified!r} not found in {self.name}")
            return tdef.methods[method_name]
        matches = [
            t.methods[qualified] for t in self.types.values() if qualified in t.methods
        ]
        if not matches:
            raise CliError(f"method {qualified!r} not found in {self.name}")
        if len(matches) > 1:
            raise CliError(f"method {qualified!r} is ambiguous in {self.name}")
        return matches[0]

    @property
    def method_count(self) -> int:
        return sum(len(t.methods) for t in self.types.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AssemblyDef {self.name} v{self.version} types={len(self.types)}>"

"""CIL microbenchmark kernels.

A small kernel suite characterizing the simulated execution engine
itself — the kind of harness a CLI implementation ships alongside its
I/O benchmarks.  Each kernel is a verified CIL method whose result is
independently computable in Python, so correctness is asserted, not
assumed.

Kernels:

* ``arith``  — tight integer arithmetic loop;
* ``branch`` — data-dependent branching (count multiples of 3 xor 5);
* ``call``   — method-call-dominated loop (one callee call/iteration);
* ``alloc``  — allocation churn (one array per iteration; exercises
  the GC's gen-0 threshold and pause accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cli.assembly import AssemblyBuilder, MethodBuilder
from repro.cli.metadata import MethodDef
from repro.cli.profiles import VM_PROFILES, VmProfile, get_profile
from repro.cli.runtime import CliRuntime
from repro.errors import CliError
from repro.sim import Engine

__all__ = ["KernelResult", "KERNELS", "build_kernel", "run_kernel", "run_suite"]


@dataclass(frozen=True)
class KernelResult:
    """Outcome of one kernel run."""

    kernel: str
    profile: str
    n: int
    result: int
    expected: int
    first_call_time: float
    warm_call_time: float
    instructions: int
    gc_collections: int

    @property
    def correct(self) -> bool:
        return self.result == self.expected

    @property
    def warmup_ratio(self) -> float:
        return self.first_call_time / self.warm_call_time if self.warm_call_time else 0.0


# -- kernel builders ----------------------------------------------------------

def _arith() -> Tuple[MethodDef, Callable[[int], int]]:
    """sum of (i*i + 3i) for i in [0, n)."""
    m = (
        MethodBuilder("arith", returns=True)
        .arg("n").local("i").local("acc")
        .ldc(0).stloc("acc").ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("n").clt().brfalse("done")
        .ldloc("acc")
        .ldloc("i").ldloc("i").mul()
        .ldloc("i").ldc(3).mul()
        .add().add().stloc("acc")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done").ldloc("acc").ret()
        .build()
    )
    return m, lambda n: sum(i * i + 3 * i for i in range(n))


def _branch() -> Tuple[MethodDef, Callable[[int], int]]:
    """count i in [0,n) divisible by exactly one of 3 and 5."""
    m = (
        MethodBuilder("branch", returns=True)
        .arg("n").local("i").local("acc").local("t")
        .ldc(0).stloc("acc").ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("n").clt().brfalse("done")
        .ldloc("i").ldc(3).rem().ldc(0).ceq().stloc("t")
        .ldloc("i").ldc(5).rem().ldc(0).ceq()
        .ldloc("t").xor().brfalse("skip")
        .ldloc("acc").ldc(1).add().stloc("acc")
        .label("skip")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done").ldloc("acc").ret()
        .build()
    )
    return m, lambda n: sum(
        1 for i in range(n) if (i % 3 == 0) != (i % 5 == 0)
    )


def _call() -> Tuple[MethodDef, Callable[[int], int]]:
    """sum of helper(i) = 2i + 1 over [0, n), via a real method call."""
    helper = (
        MethodBuilder("twice_plus_one", returns=True)
        .arg("x").ldarg("x").ldc(2).mul().ldc(1).add().ret()
        .build()
    )
    m = (
        MethodBuilder("call_loop", returns=True)
        .arg("n").local("i").local("acc")
        .ldc(0).stloc("acc").ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("n").clt().brfalse("done")
        .ldloc("acc").ldloc("i").call(helper).add().stloc("acc")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done").ldloc("acc").ret()
        .build()
    )
    return m, lambda n: sum(2 * i + 1 for i in range(n))


def _alloc() -> Tuple[MethodDef, Callable[[int], int]]:
    """allocate an i-element array per iteration; sum the lengths."""
    m = (
        MethodBuilder("alloc_churn", returns=True)
        .arg("n").local("i").local("acc")
        .ldc(0).stloc("acc").ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("n").clt().brfalse("done")
        .ldloc("i").newarr().ldlen()
        .ldloc("acc").add().stloc("acc")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done").ldloc("acc").ret()
        .build()
    )
    return m, lambda n: sum(range(n))


KERNELS: Dict[str, Callable[[], Tuple[MethodDef, Callable[[int], int]]]] = {
    "arith": _arith,
    "branch": _branch,
    "call": _call,
    "alloc": _alloc,
}


def build_kernel(name: str) -> Tuple[MethodDef, Callable[[int], int]]:
    """Fresh (method, expected-fn) pair for kernel ``name``."""
    try:
        factory = KERNELS[name]
    except KeyError:
        raise CliError(f"unknown kernel {name!r}; choices: {sorted(KERNELS)}") from None
    return factory()


def run_kernel(
    name: str, n: int = 500, profile: "str | VmProfile" = "sscli"
) -> KernelResult:
    """Run one kernel twice (cold then warm) on a fresh VM."""
    if n < 1:
        raise CliError(f"n must be >= 1, got {n}")
    if isinstance(profile, str):
        profile = get_profile(profile)
    method, expected_fn = build_kernel(name)
    engine = Engine()
    runtime = CliRuntime(engine, jit_params=profile.jit, interp_params=profile.interp)

    def scenario():
        t0 = engine.now
        first = yield from runtime.invoke(method, [n])
        first_time = engine.now - t0
        t1 = engine.now
        second = yield from runtime.invoke(method, [n])
        warm_time = engine.now - t1
        assert first == second
        return first, first_time, warm_time

    result, first_time, warm_time = engine.run_process(scenario())
    return KernelResult(
        kernel=name,
        profile=profile.name,
        n=n,
        result=result,
        expected=expected_fn(n),
        first_call_time=first_time,
        warm_call_time=warm_time,
        instructions=runtime.interpreter.instructions_executed.value,
        gc_collections=runtime.heap.collections.value,
    )


def run_suite(
    n: int = 500, profiles: Optional[List[str]] = None
) -> List[KernelResult]:
    """Run every kernel under every profile (default: all three)."""
    names = profiles if profiles is not None else sorted(VM_PROFILES)
    out = []
    for profile in names:
        for kernel in sorted(KERNELS):
            out.append(run_kernel(kernel, n=n, profile=profile))
    return out

"""The CLI runtime facade.

Glues together the pieces a hosted benchmark needs: assembly loading,
the JIT, the managed heap, the interpreter, intrinsic registration
(the class-library boundary where managed code reaches the simulated
OS), managed threads, and the performance counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.cli.gc import GcParams, ManagedHeap
from repro.cli.interpreter import Interpreter, InterpreterParams
from repro.cli.jit import JitCompiler, JitParams
from repro.cli.metadata import AssemblyDef, MethodDef
from repro.cli.perfcounter import PerformanceCounter, Stopwatch
from repro.cli.threads import ManagedThread
from repro.errors import CliError
from repro.sim import Counter, Engine

__all__ = ["RuntimeParams", "CliRuntime"]


@dataclass(frozen=True)
class RuntimeParams:
    """Whole-runtime cost knobs."""

    thread_start_overhead: float = 60e-6
    assembly_load_base: float = 500e-6
    assembly_load_per_method: float = 10e-6

    def __post_init__(self) -> None:
        if min(
            self.thread_start_overhead,
            self.assembly_load_base,
            self.assembly_load_per_method,
        ) < 0:
            raise CliError("runtime costs must be >= 0")


class CliRuntime:
    """One virtual machine instance.

    Parameters allow every cost model to be swapped; defaults model
    the SSCLI's unoptimized execution engine.
    """

    def __init__(
        self,
        engine: Engine,
        params: Optional[RuntimeParams] = None,
        jit_params: Optional[JitParams] = None,
        gc_params: Optional[GcParams] = None,
        interp_params: Optional[InterpreterParams] = None,
    ) -> None:
        self.engine = engine
        self.params = params or RuntimeParams()
        self.jit = JitCompiler(engine, jit_params)
        self.heap = ManagedHeap(engine, gc_params)
        self.intrinsics: Dict[str, Callable[..., Any]] = {}
        self.assemblies: List[AssemblyDef] = []
        self.interpreter = Interpreter(
            engine,
            self.jit,
            self.heap,
            self.intrinsics,
            resolver=self.find_method,
            params=interp_params,
        )
        self.perf = PerformanceCounter(engine)
        self.threads_started = Counter("runtime.threads")

    # -- class library boundary ------------------------------------------------

    def register_intrinsic(self, name: str, fn: Callable[..., Any]) -> None:
        """Expose a class-library entry point to managed code.

        ``fn`` may be a plain function or a simulation coroutine
        factory; its return value is pushed when the intrinsic's
        declared signature says it returns.
        """
        if name in self.intrinsics:
            raise CliError(f"intrinsic {name!r} already registered")
        self.intrinsics[name] = fn

    def register_intrinsics(self, table: Dict[str, Callable[..., Any]]) -> None:
        for name, fn in table.items():
            self.register_intrinsic(name, fn)

    # -- assemblies ------------------------------------------------------------

    def load_assembly(self, assembly: AssemblyDef):
        """Generator: load an assembly (metadata parsing cost scales
        with method count)."""
        if any(a.name == assembly.name for a in self.assemblies):
            raise CliError(f"assembly {assembly.name!r} already loaded")
        cost = (
            self.params.assembly_load_base
            + self.params.assembly_load_per_method * assembly.method_count
        )
        yield self.engine.timeout(cost)
        self.assemblies.append(assembly)
        return assembly

    def find_method(self, qualified: str) -> MethodDef:
        """Resolve ``Type::Method`` (or a unique bare name) across
        loaded assemblies."""
        errors = []
        for assembly in self.assemblies:
            try:
                return assembly.find_method(qualified)
            except CliError as exc:
                errors.append(str(exc))
        raise CliError(
            f"method {qualified!r} not found in any loaded assembly"
        )

    # -- execution ----------------------------------------------------------------

    def invoke(self, method: Union[MethodDef, str], args: Sequence[Any] = ()):
        """Generator: execute a managed method by def or qualified name."""
        if isinstance(method, str):
            method = self.find_method(method)
        result = yield from self.interpreter.invoke(method, args)
        return result

    def create_thread(
        self, entry: Union[MethodDef, Any], args: Sequence[Any] = (), name: Optional[str] = None
    ) -> ManagedThread:
        """Create (not start) a managed thread."""
        return ManagedThread(self, entry, args, name)

    def stopwatch(self) -> Stopwatch:
        """A fresh ``QueryPerformanceCounter``-backed stopwatch."""
        return Stopwatch(self.perf)

    def cold_restart(self) -> None:
        """Forget JIT state (new process, cold start)."""
        self.jit.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CliRuntime assemblies={len(self.assemblies)} "
            f"intrinsics={len(self.intrinsics)}>"
        )

"""Bytecode verifier.

Part of the virtual execution system (paper §1, item 3): before a
method may be JIT-compiled, the VES proves its CIL body is safe.  The
simulation's verifier checks the properties that matter for our
interpreter:

* every branch target is a valid instruction index;
* the evaluation-stack depth is consistent along all control paths and
  never goes negative;
* ``ret`` leaves exactly the depth the signature promises (1 value for
  value-returning methods, 0 otherwise);
* local and argument indices are in range;
* execution cannot fall off the end of the body;
* protected regions are well-formed and every handler entry point is
  reachable with exactly the exception object on the stack.

On success the method's ``max_stack`` is recorded (as a real JIT
would); on failure :class:`~repro.errors.VerificationError` is raised.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cli.cil import Instruction, Op, STACK_EFFECTS
from repro.cli.metadata import MethodDef
from repro.errors import VerificationError

__all__ = ["verify_method"]


def _well_formed_call_tuple(operand: object) -> bool:
    """``(name, argc, returns)`` with a non-negative int argc — the
    shape both the interpreter and the template compiler assume."""
    return (
        isinstance(operand, tuple)
        and len(operand) == 3
        and isinstance(operand[0], str)
        and isinstance(operand[1], int)
        and not isinstance(operand[1], bool)
        and operand[1] >= 0
        and isinstance(operand[2], bool)
    )


def _call_effect(
    ins: Instruction,
    method: Optional[MethodDef] = None,
    pc: Optional[int] = None,
) -> Tuple[int, int]:
    """(pops, pushes) for a call-like instruction, from its operand.

    ``method`` and ``pc`` locate the failing instruction in the error
    message when given (the verifier always passes them; other callers
    only reach this for already-verified bodies).
    """
    where = (
        f"{method.full_name}@{pc}: {ins.op.value}: "
        if method is not None and pc is not None
        else ""
    )
    operand = ins.operand
    if ins.op is Op.CALL:
        if isinstance(operand, MethodDef):
            return operand.param_count, 1 if operand.returns else 0
        if _well_formed_call_tuple(operand):
            _name, argc, returns = operand
            return argc, 1 if returns else 0
        raise VerificationError(f"{where}malformed call operand: {operand!r}")
    if ins.op is Op.CALLINTRINSIC:
        if _well_formed_call_tuple(operand):
            _name, argc, returns = operand
            return argc, 1 if returns else 0
        raise VerificationError(
            f"{where}malformed intrinsic operand: {operand!r}"
        )
    raise AssertionError("not a call instruction")  # pragma: no cover


def verify_method(method: MethodDef, record_types: bool = False) -> int:
    """Verify ``method``; returns (and records) its max stack depth.

    With ``record_types=True`` the typed abstract interpreter from
    :mod:`repro.analysis.typeflow` also runs on success and the per-pc
    entry stack types are attached as ``method.entry_types`` — the
    interpreter's debug mode checks the runtime stack against them.

    Every failure raises :class:`VerificationError` whose message names
    the method, the failing pc and the opcode at that pc.
    """
    body = method.body
    n = len(body)
    if n == 0:
        raise VerificationError(f"{method.full_name}: empty body")

    ret_depth = 1 if method.returns else 0

    # Per-instruction entry depth; None = not yet visited.
    entry_depth: List[Optional[int]] = [None] * n
    max_stack = 0
    worklist: List[Tuple[int, int]] = [(0, 0)]

    def flow_to(target: int, depth: int, src_pc: int, src_op: Op) -> None:
        nonlocal max_stack
        if not (0 <= target < n):
            raise VerificationError(
                f"{method.full_name}@{src_pc}: {src_op.value}: "
                f"branch target {target} out of range [0,{n})"
            )
        known = entry_depth[target]
        if known is None:
            entry_depth[target] = depth
            worklist.append((target, depth))
        elif known != depth:
            raise VerificationError(
                f"{method.full_name}@{src_pc}: {src_op.value}: "
                f"inconsistent stack depth at {target} "
                f"({known} vs {depth})"
            )

    entry_depth[0] = 0

    # Protected regions: validate bounds and seed each handler's entry
    # with depth 1 (the runtime clears the stack and pushes the
    # exception object before transferring control).
    for h in method.handlers:
        if not (0 <= h.try_start < h.try_end <= n):
            raise VerificationError(
                f"{method.full_name}: malformed protected region "
                f"[{h.try_start}, {h.try_end})"
            )
        if not (0 <= h.handler_start < n):
            raise VerificationError(
                f"{method.full_name}: handler start {h.handler_start} out of range"
            )
        if entry_depth[h.handler_start] is None:
            entry_depth[h.handler_start] = 1
            worklist.append((h.handler_start, 1))
        elif entry_depth[h.handler_start] != 1:
            raise VerificationError(
                f"{method.full_name}: handler at {h.handler_start} entered "
                f"with inconsistent stack depth"
            )
        if max_stack < 1:
            max_stack = 1

    while worklist:
        pc, depth = worklist.pop()
        ins = body[pc]
        op = ins.op

        # Operand validity.
        if op in (Op.LDLOC, Op.STLOC):
            if not isinstance(ins.operand, int) or not (
                0 <= ins.operand < method.local_count
            ):
                raise VerificationError(
                    f"{method.full_name}@{pc}: {op.value}: "
                    f"local index {ins.operand!r} "
                    f"out of range [0,{method.local_count})"
                )
        elif op in (Op.LDARG, Op.STARG):
            if not isinstance(ins.operand, int) or not (
                0 <= ins.operand < method.param_count
            ):
                raise VerificationError(
                    f"{method.full_name}@{pc}: {op.value}: "
                    f"argument index {ins.operand!r} "
                    f"out of range [0,{method.param_count})"
                )
        elif op in (Op.BR, Op.BRTRUE, Op.BRFALSE):
            if not isinstance(ins.operand, int):
                raise VerificationError(
                    f"{method.full_name}@{pc}: {op.value}: "
                    f"unresolved branch label {ins.operand!r}"
                )

        # Stack effect.
        if op is Op.RET:
            if depth != ret_depth:
                raise VerificationError(
                    f"{method.full_name}@{pc}: ret with stack depth {depth}, "
                    f"signature requires {ret_depth}"
                )
            continue
        if op is Op.THROW:
            if depth < 1:
                raise VerificationError(
                    f"{method.full_name}@{pc}: throw with empty stack"
                )
            continue  # control never falls through a throw
        if op in (Op.CALL, Op.CALLINTRINSIC):
            pops, pushes = _call_effect(ins, method, pc)
        else:
            effect = STACK_EFFECTS[op]
            assert effect is not None
            pops, pushes = effect

        if depth < pops:
            raise VerificationError(
                f"{method.full_name}@{pc}: {op.value} pops {pops} "
                f"but stack depth is {depth}"
            )
        depth = depth - pops + pushes
        if depth > max_stack:
            max_stack = depth

        # Successors.
        if op is Op.BR:
            flow_to(ins.operand, depth, pc, op)
            continue
        if op in (Op.BRTRUE, Op.BRFALSE):
            flow_to(ins.operand, depth, pc, op)
        if pc + 1 >= n:
            raise VerificationError(
                f"{method.full_name}@{pc}: {op.value}: "
                "execution falls off the end of the body"
            )
        flow_to(pc + 1, depth, pc, op)

    method.max_stack = max_stack
    if record_types:
        from repro.analysis.typeflow import analyze_types  # lazy: no cycle

        method.entry_types = analyze_types(method).stack_kinds()
    return max_stack

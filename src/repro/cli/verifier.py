"""Bytecode verifier.

Part of the virtual execution system (paper §1, item 3): before a
method may be JIT-compiled, the VES proves its CIL body is safe.  The
simulation's verifier checks the properties that matter for our
interpreter:

* every branch target is a valid instruction index;
* the evaluation-stack depth is consistent along all control paths and
  never goes negative;
* ``ret`` leaves exactly the depth the signature promises (1 value for
  value-returning methods, 0 otherwise);
* local and argument indices are in range;
* execution cannot fall off the end of the body;
* protected regions are well-formed and every handler entry point is
  reachable with exactly the exception object on the stack.

On success the method's ``max_stack`` is recorded (as a real JIT
would); on failure :class:`~repro.errors.VerificationError` is raised.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cli.cil import Instruction, Op, STACK_EFFECTS
from repro.cli.metadata import MethodDef
from repro.errors import VerificationError

__all__ = ["verify_method"]


def _call_effect(ins: Instruction) -> Tuple[int, int]:
    """(pops, pushes) for a call-like instruction, from its operand."""
    operand = ins.operand
    if ins.op is Op.CALL:
        if isinstance(operand, MethodDef):
            return operand.param_count, 1 if operand.returns else 0
        if isinstance(operand, tuple) and len(operand) == 3:
            _name, argc, returns = operand
            return argc, 1 if returns else 0
        raise VerificationError(f"malformed call operand: {operand!r}")
    if ins.op is Op.CALLINTRINSIC:
        if isinstance(operand, tuple) and len(operand) == 3:
            _name, argc, returns = operand
            return argc, 1 if returns else 0
        raise VerificationError(f"malformed intrinsic operand: {operand!r}")
    raise AssertionError("not a call instruction")  # pragma: no cover


def verify_method(method: MethodDef) -> int:
    """Verify ``method``; returns (and records) its max stack depth."""
    body = method.body
    n = len(body)
    if n == 0:
        raise VerificationError(f"{method.full_name}: empty body")

    ret_depth = 1 if method.returns else 0

    # Per-instruction entry depth; None = not yet visited.
    entry_depth: List[Optional[int]] = [None] * n
    max_stack = 0
    worklist: List[Tuple[int, int]] = [(0, 0)]

    def flow_to(target: int, depth: int) -> None:
        nonlocal max_stack
        if not (0 <= target < n):
            raise VerificationError(
                f"{method.full_name}: branch target {target} out of range [0,{n})"
            )
        known = entry_depth[target]
        if known is None:
            entry_depth[target] = depth
            worklist.append((target, depth))
        elif known != depth:
            raise VerificationError(
                f"{method.full_name}: inconsistent stack depth at {target} "
                f"({known} vs {depth})"
            )

    entry_depth[0] = 0

    # Protected regions: validate bounds and seed each handler's entry
    # with depth 1 (the runtime clears the stack and pushes the
    # exception object before transferring control).
    for h in method.handlers:
        if not (0 <= h.try_start < h.try_end <= n):
            raise VerificationError(
                f"{method.full_name}: malformed protected region "
                f"[{h.try_start}, {h.try_end})"
            )
        if not (0 <= h.handler_start < n):
            raise VerificationError(
                f"{method.full_name}: handler start {h.handler_start} out of range"
            )
        if entry_depth[h.handler_start] is None:
            entry_depth[h.handler_start] = 1
            worklist.append((h.handler_start, 1))
        elif entry_depth[h.handler_start] != 1:
            raise VerificationError(
                f"{method.full_name}: handler at {h.handler_start} entered "
                f"with inconsistent stack depth"
            )
        if max_stack < 1:
            max_stack = 1

    while worklist:
        pc, depth = worklist.pop()
        ins = body[pc]
        op = ins.op

        # Operand validity.
        if op in (Op.LDLOC, Op.STLOC):
            if not isinstance(ins.operand, int) or not (
                0 <= ins.operand < method.local_count
            ):
                raise VerificationError(
                    f"{method.full_name}@{pc}: local index {ins.operand!r} "
                    f"out of range [0,{method.local_count})"
                )
        elif op in (Op.LDARG, Op.STARG):
            if not isinstance(ins.operand, int) or not (
                0 <= ins.operand < method.param_count
            ):
                raise VerificationError(
                    f"{method.full_name}@{pc}: argument index {ins.operand!r} "
                    f"out of range [0,{method.param_count})"
                )
        elif op in (Op.BR, Op.BRTRUE, Op.BRFALSE):
            if not isinstance(ins.operand, int):
                raise VerificationError(
                    f"{method.full_name}@{pc}: unresolved branch label "
                    f"{ins.operand!r}"
                )

        # Stack effect.
        if op is Op.RET:
            if depth != ret_depth:
                raise VerificationError(
                    f"{method.full_name}@{pc}: ret with stack depth {depth}, "
                    f"signature requires {ret_depth}"
                )
            continue
        if op is Op.THROW:
            if depth < 1:
                raise VerificationError(
                    f"{method.full_name}@{pc}: throw with empty stack"
                )
            continue  # control never falls through a throw
        if op in (Op.CALL, Op.CALLINTRINSIC):
            pops, pushes = _call_effect(ins)
        else:
            effect = STACK_EFFECTS[op]
            assert effect is not None
            pops, pushes = effect

        if depth < pops:
            raise VerificationError(
                f"{method.full_name}@{pc}: {op.value} pops {pops} "
                f"but stack depth is {depth}"
            )
        depth = depth - pops + pushes
        if depth > max_stack:
            max_stack = depth

        # Successors.
        if op is Op.BR:
            flow_to(ins.operand, depth)
            continue
        if op in (Op.BRTRUE, Op.BRFALSE):
            flow_to(ins.operand, depth)
        if pc + 1 >= n:
            raise VerificationError(
                f"{method.full_name}@{pc}: execution falls off the end of the body"
            )
        flow_to(pc + 1, depth)

    method.max_stack = max_stack
    return max_stack

"""The execution engine: a CIL stack-machine interpreter.

"The virtual execution system enforces the common type system by
loading and running programs written for the CLI" (paper §1, item 3).
Our VES runs verified method bodies as simulation coroutines:

* first call to a method goes through the :class:`JitCompiler` and
  pays the compile delay (the paper's warm-up effect);
* interpretation charges ``instruction_cost`` per instruction,
  batched into timeouts every ``dispatch_quantum`` instructions so the
  event queue is not flooded;
* ``call`` recurses into managed methods; ``callintrinsic`` enters the
  class library (managed I/O, sockets, timers) whose implementations
  are simulation coroutines registered with the runtime;
* allocations (``ldstr``, ``newarr``) go through the managed heap and
  can trigger GC pauses;
* managed exceptions (``throw``, divide-by-zero, null dereference, or
  a :class:`ManagedException` raised by an intrinsic) unwind through
  protected regions: the innermost matching handler gets control with
  the stack cleared and the exception pushed; unhandled exceptions
  propagate to the caller's frame, exactly as in ECMA-335 II.19.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cli.cil import Instruction, Op
from repro.cli.gc import ManagedHeap
from repro.cli.jit import JitCompiler
from repro.cli.metadata import MethodDef
from repro.errors import ExecutionFault, NullReference, StackUnderflow, TypeMismatch
from repro.sim import Counter, Engine

__all__ = [
    "InterpreterParams",
    "Interpreter",
    "ManagedArray",
    "ManagedException",
]


@dataclass(frozen=True)
class InterpreterParams:
    """Execution cost coefficients.

    ``instruction_cost`` of 60 ns reflects the SSCLI's unoptimizing
    JIT/interpretive performance on paper-era hardware;
    ``exception_overhead`` is the cost of building and dispatching one
    managed exception (they are expensive on the CLR).
    """

    instruction_cost: float = 60e-9
    dispatch_quantum: int = 64
    call_overhead: float = 120e-9
    exception_overhead: float = 2e-6
    max_call_depth: int = 512

    def __post_init__(self) -> None:
        if self.instruction_cost < 0 or self.call_overhead < 0:
            raise ExecutionFault("costs must be >= 0")
        if self.exception_overhead < 0:
            raise ExecutionFault("exception_overhead must be >= 0")
        if self.dispatch_quantum < 1:
            raise ExecutionFault("dispatch_quantum must be >= 1")
        if self.max_call_depth < 1:
            raise ExecutionFault("max_call_depth must be >= 1")


class ManagedArray:
    """A length-only managed array (the simulation carries sizes, not
    element values)."""

    __slots__ = ("length", "element_size")

    def __init__(self, length: int, element_size: int = 8) -> None:
        if length < 0:
            raise ExecutionFault(f"negative array length: {length}")
        self.length = length
        self.element_size = element_size

    @property
    def byte_size(self) -> int:
        return self.length * self.element_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ManagedArray[{self.length}]>"


class ManagedException(ExecutionFault):
    """A catchable managed exception flowing through protected regions.

    Carries a CLR-style type name (``System.DivideByZeroException``,
    ``System.Net.ProtocolViolationException``, ...) and an optional
    payload object for intrinsic ↔ managed-code communication.
    Deriving from :class:`ExecutionFault` keeps *uncaught* managed
    exceptions visible to hosts as ordinary execution faults.
    """

    def __init__(self, type_name: str, message: str = "", payload: Any = None) -> None:
        super().__init__(f"{type_name}: {message}" if message else type_name)
        self.type_name = type_name
        self.message_text = message
        self.payload = payload


def _truncdiv(a, b):
    """C#-style division: truncation toward zero for integers."""
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    return a / b


def _truncrem(a, b):
    """C#-style remainder: sign of the dividend."""
    if isinstance(a, int) and isinstance(b, int):
        r = abs(a) % abs(b)
        return -r if a < 0 else r
    import math

    return math.fmod(a, b)


_I32_MASK = 0xFFFFFFFF
_I64_MASK = 0xFFFFFFFFFFFFFFFF


def _wrap_signed(value: int, mask: int, sign_bit: int) -> int:
    value &= mask
    return value - (mask + 1) if value & sign_bit else value


class Interpreter:
    """Executes verified CIL method bodies on the simulation engine."""

    def __init__(
        self,
        engine: Engine,
        jit: JitCompiler,
        heap: ManagedHeap,
        intrinsics: Dict[str, Callable[..., Any]],
        resolver: Optional[Callable[[str], MethodDef]] = None,
        params: Optional[InterpreterParams] = None,
        debug: Optional[bool] = None,
    ) -> None:
        self.engine = engine
        self.jit = jit
        self.heap = heap
        self.intrinsics = intrinsics
        self.resolver = resolver
        self.params = params or InterpreterParams()
        if debug is None:
            debug = os.environ.get("REPRO_INTERP_DEBUG", "0") != "0"
        #: Debug mode: on methods verified with ``record_types=True``,
        #: check the runtime evaluation stack against the abstract
        #: entry types at every dispatched pc (interpreter tier only).
        self.debug = debug
        self.statics: Dict[str, Any] = {}
        self.instructions_executed = Counter("interp.instructions")
        self.calls = Counter("interp.calls")
        self.exceptions_thrown = Counter("interp.exceptions")
        self.exceptions_caught = Counter("interp.caught")

    # -- public entry ----------------------------------------------------------

    def invoke(self, method: MethodDef, args: Sequence[Any] = (), _depth: int = 0):
        """Run ``method`` with ``args``: returns the simulation
        generator to drive (``yield from`` it, or hand it to
        ``engine.run_process``); its result is the method's return
        value (None for void methods).  Uncaught managed exceptions
        propagate as :class:`ManagedException`.

        This is a plain dispatcher, not a generator function, so each
        warm call costs one generator frame regardless of tier —
        nested ``yield from`` chains stay within Python's recursion
        limit at ``max_call_depth``.
        """
        if _depth > self.params.max_call_depth:
            raise ExecutionFault(
                f"call depth exceeded ({self.params.max_call_depth}) "
                f"invoking {method.full_name}"
            )
        if len(args) != method.param_count:
            raise ExecutionFault(
                f"{method.full_name} expects {method.param_count} args, "
                f"got {len(args)}"
            )
        if method.max_stack is None:
            raise ExecutionFault(
                f"{method.full_name} was not verified before execution"
            )
        jit = self.jit
        if method.token not in jit._compiled:
            return self._first_call(method, args, _depth)
        self.calls.add()
        if jit.native_enabled:
            native = jit.native_for(method, self.params)
            if native is not None:
                # Template-compiled tier: same simulated-time semantics,
                # executed as generated Python instead of opcode dispatch.
                return native(self, args, _depth)
        return self._interpret(method, args, _depth)

    def _first_call(self, method: MethodDef, args: Sequence[Any], _depth: int):
        """Cold path: charge the simulated compile delay, then run."""
        yield from self.jit.ensure_compiled(method)
        self.calls.add()
        jit = self.jit
        if jit.native_enabled:
            native = jit.native_for(method, self.params)
            if native is not None:
                return (yield from native(self, args, _depth))
        return (yield from self._interpret(method, args, _depth))

    def _interpret(self, method: MethodDef, args: Sequence[Any], _depth: int):
        """The opcode-dispatch tier (also the fallback for methods the
        template compiler declines)."""
        p = self.params
        body = method.body
        arguments: List[Any] = list(args)
        locals_: List[Any] = [0] * method.local_count
        stack: List[Any] = []
        pc = 0
        since_yield = 0
        executed = 0

        def pop():
            try:
                return stack.pop()
            except IndexError:
                raise StackUnderflow(f"{method.full_name}@{pc}") from None

        check_types = self.debug and method.entry_types is not None

        while True:
            ins = body[pc]
            op = ins.op
            if check_types:
                self._check_entry_types(method, pc, stack)
            executed += 1
            since_yield += 1
            if since_yield >= p.dispatch_quantum:
                yield self.engine.timeout(p.instruction_cost * since_yield)
                since_yield = 0
            next_pc = pc + 1

            try:
                if op is Op.NOP:
                    pass
                elif op is Op.LDC:
                    stack.append(ins.operand)
                elif op is Op.LDSTR:
                    s = ins.operand
                    # Flush accrued time, then charge the allocation.
                    if since_yield:
                        yield self.engine.timeout(p.instruction_cost * since_yield)
                        since_yield = 0
                    yield from self.heap.allocate(2 * len(s))  # UTF-16
                    stack.append(s)
                elif op is Op.LDLOC:
                    stack.append(locals_[ins.operand])
                elif op is Op.STLOC:
                    locals_[ins.operand] = pop()
                elif op is Op.LDARG:
                    stack.append(arguments[ins.operand])
                elif op is Op.STARG:
                    arguments[ins.operand] = pop()
                elif op is Op.LDSFLD:
                    stack.append(self.statics.get(ins.operand, 0))
                elif op is Op.STSFLD:
                    self.statics[ins.operand] = pop()
                elif op is Op.DUP:
                    v = pop()
                    stack.append(v)
                    stack.append(v)
                elif op is Op.POP:
                    pop()
                elif op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM,
                            Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR):
                    b = pop()
                    a = pop()
                    try:
                        if op is Op.ADD:
                            stack.append(a + b)
                        elif op is Op.SUB:
                            stack.append(a - b)
                        elif op is Op.MUL:
                            stack.append(a * b)
                        elif op is Op.DIV:
                            if b == 0 and isinstance(b, int):
                                raise ManagedException(
                                    "System.DivideByZeroException",
                                    f"{method.full_name}@{pc}",
                                )
                            stack.append(_truncdiv(a, b))
                        elif op is Op.REM:
                            if b == 0 and isinstance(b, int):
                                raise ManagedException(
                                    "System.DivideByZeroException",
                                    f"{method.full_name}@{pc}",
                                )
                            stack.append(_truncrem(a, b))
                        elif op is Op.AND:
                            stack.append(a & b)
                        elif op is Op.OR:
                            stack.append(a | b)
                        elif op is Op.XOR:
                            stack.append(a ^ b)
                        elif op is Op.SHL:
                            stack.append(a << b)
                        else:
                            stack.append(a >> b)
                    except TypeError:
                        raise TypeMismatch(
                            f"{method.full_name}@{pc}: {op.value} on "
                            f"{type(a).__name__}, {type(b).__name__}"
                        ) from None
                elif op is Op.NEG:
                    stack.append(-pop())
                elif op is Op.NOT:
                    v = pop()
                    if not isinstance(v, int):
                        raise TypeMismatch(
                            f"{method.full_name}@{pc}: not on {type(v).__name__}"
                        )
                    stack.append(~v)
                elif op is Op.CEQ:
                    b = pop()
                    a = pop()
                    stack.append(1 if a == b else 0)
                elif op is Op.CGT:
                    b = pop()
                    a = pop()
                    stack.append(1 if a > b else 0)
                elif op is Op.CLT:
                    b = pop()
                    a = pop()
                    stack.append(1 if a < b else 0)
                elif op is Op.BR:
                    next_pc = ins.operand
                elif op is Op.BRTRUE:
                    if pop():
                        next_pc = ins.operand
                elif op is Op.BRFALSE:
                    if not pop():
                        next_pc = ins.operand
                elif op is Op.RET:
                    if since_yield:
                        yield self.engine.timeout(p.instruction_cost * since_yield)
                    self.instructions_executed.add(executed)
                    return pop() if method.returns else None
                elif op is Op.THROW:
                    value = pop()
                    self.exceptions_thrown.add()
                    if since_yield:
                        yield self.engine.timeout(p.instruction_cost * since_yield)
                        since_yield = 0
                    yield self.engine.timeout(p.exception_overhead)
                    if isinstance(value, ManagedException):
                        raise value
                    raise ManagedException("System.Exception", str(value), payload=value)
                elif op is Op.CALL:
                    callee = self._resolve_call(ins.operand, method, pc)
                    call_args = [pop() for _ in range(callee.param_count)][::-1]
                    if since_yield:
                        yield self.engine.timeout(p.instruction_cost * since_yield)
                        since_yield = 0
                    yield self.engine.timeout(p.call_overhead)
                    result = yield from self.invoke(callee, call_args, _depth + 1)
                    if callee.returns:
                        stack.append(result)
                elif op is Op.CALLINTRINSIC:
                    name, argc, returns = ins.operand
                    fn = self.intrinsics.get(name)
                    if fn is None:
                        raise ExecutionFault(
                            f"{method.full_name}@{pc}: unknown intrinsic {name!r}"
                        )
                    call_args = [pop() for _ in range(argc)][::-1]
                    if since_yield:
                        yield self.engine.timeout(p.instruction_cost * since_yield)
                        since_yield = 0
                    yield self.engine.timeout(p.call_overhead)
                    result = fn(*call_args)
                    if hasattr(result, "send") and hasattr(result, "throw"):
                        result = yield from result
                    if returns:
                        stack.append(result)
                elif op is Op.NEWARR:
                    length = pop()
                    if not isinstance(length, int):
                        raise TypeMismatch(
                            f"{method.full_name}@{pc}: newarr length is "
                            f"{type(length).__name__}"
                        )
                    elem = ins.operand if isinstance(ins.operand, int) else 8
                    arr = ManagedArray(length, elem)
                    if since_yield:
                        yield self.engine.timeout(p.instruction_cost * since_yield)
                        since_yield = 0
                    yield from self.heap.allocate(arr.byte_size)
                    stack.append(arr)
                elif op is Op.LDLEN:
                    arr = pop()
                    if arr is None:
                        raise ManagedException(
                            "System.NullReferenceException",
                            f"{method.full_name}@{pc}: ldlen on null",
                        )
                    if not isinstance(arr, ManagedArray):
                        raise TypeMismatch(
                            f"{method.full_name}@{pc}: ldlen on {type(arr).__name__}"
                        )
                    stack.append(arr.length)
                elif op is Op.CONV:
                    v = pop()
                    kind = ins.operand
                    if kind in ("i4", "int32"):
                        stack.append(_wrap_signed(int(v), _I32_MASK, 0x80000000))
                    elif kind in ("i8", "int64"):
                        stack.append(_wrap_signed(int(v), _I64_MASK, 1 << 63))
                    elif kind in ("r8", "float64"):
                        stack.append(float(v))
                    else:
                        raise ExecutionFault(
                            f"{method.full_name}@{pc}: unknown conversion {kind!r}"
                        )
                else:  # pragma: no cover - exhaustive over opcode set
                    raise ExecutionFault(f"unimplemented opcode {op!r}")
            except ManagedException as exc:
                handler = method.handler_for(pc, exc.type_name)
                if handler is None:
                    # Unwind to the caller; account for work done here.
                    if since_yield:
                        yield self.engine.timeout(p.instruction_cost * since_yield)
                    self.instructions_executed.add(executed)
                    raise
                # Transfer: clear the evaluation stack, push the
                # exception, continue at the handler.
                self.exceptions_caught.add()
                if since_yield:
                    yield self.engine.timeout(p.instruction_cost * since_yield)
                    since_yield = 0
                yield self.engine.timeout(p.exception_overhead)
                stack.clear()
                stack.append(exc)
                next_pc = handler.handler_start

            pc = next_pc

    # -- helpers --------------------------------------------------------------

    def _check_entry_types(self, method: MethodDef, pc: int, stack: List[Any]) -> None:
        """Debug mode: the runtime evaluation stack must match the
        abstract entry types ``verify_method(..., record_types=True)``
        recorded for this pc (⊤ and object entries match anything)."""
        kinds = method.entry_types[pc]
        if kinds is None:
            raise ExecutionFault(
                f"{method.full_name}@{pc}: debug: executing a pc the "
                "static analysis proved unreachable"
            )
        if len(stack) != len(kinds):
            raise ExecutionFault(
                f"{method.full_name}@{pc}: debug: runtime stack depth "
                f"{len(stack)} != analyzed depth {len(kinds)}"
            )
        for i, (value, kind) in enumerate(zip(stack, kinds)):
            name = kind.name
            if name in ("INT32", "INT64"):
                ok = isinstance(value, int)
            elif name == "FLOAT64":
                ok = isinstance(value, float)
            elif name == "STRING":
                ok = isinstance(value, str)
            else:  # TOP / OBJECT / BOTTOM: no runtime commitment
                ok = True
            if not ok:
                raise ExecutionFault(
                    f"{method.full_name}@{pc}: debug: stack[{i}] is "
                    f"{type(value).__name__}, analysis says {name.lower()}"
                )

    def _resolve_call(self, operand, method: MethodDef, pc: int) -> MethodDef:
        if isinstance(operand, MethodDef):
            return operand
        name = operand[0]
        if self.resolver is None:
            raise ExecutionFault(
                f"{method.full_name}@{pc}: no resolver for call to {name!r}"
            )
        callee = self.resolver(name)
        expected_argc, expected_returns = operand[1], operand[2]
        if callee.param_count != expected_argc or callee.returns != expected_returns:
            raise ExecutionFault(
                f"{method.full_name}@{pc}: signature mismatch calling {name!r}"
            )
        return callee

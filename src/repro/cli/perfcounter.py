"""``QueryPerformanceCounter`` equivalent.

The paper's timings come from ``QueryPerformanceCounter``; on the 2004
Windows XP test machine that is the ACPI PM timer at 3 579 545 Hz.
The simulated counter exposes the same tick-based interface over the
engine's clock, plus a convenience :class:`Stopwatch`.
"""

from __future__ import annotations

from repro.errors import CliError
from repro.sim import Engine

__all__ = ["PerformanceCounter", "Stopwatch"]

#: The classic ACPI PM timer frequency (ticks per second).
DEFAULT_FREQUENCY = 3_579_545


class PerformanceCounter:
    """Tick counter over simulated time."""

    def __init__(self, engine: Engine, frequency: int = DEFAULT_FREQUENCY) -> None:
        if frequency < 1:
            raise CliError(f"frequency must be >= 1, got {frequency}")
        self.engine = engine
        self.frequency = frequency

    def query(self) -> int:
        """Current counter value in ticks (``QueryPerformanceCounter``)."""
        return int(self.engine.now * self.frequency)

    def ticks_to_seconds(self, ticks: int) -> float:
        return ticks / self.frequency

    def ticks_to_ms(self, ticks: int) -> float:
        """Milliseconds, the unit every table in the paper reports."""
        return ticks * 1e3 / self.frequency


class Stopwatch:
    """Start/stop latency measurement in simulated time."""

    def __init__(self, counter: PerformanceCounter) -> None:
        self.counter = counter
        self._start_ticks: int | None = None
        self._elapsed_ticks = 0

    def start(self) -> None:
        if self._start_ticks is not None:
            raise CliError("stopwatch already running")
        self._start_ticks = self.counter.query()

    def stop(self) -> None:
        if self._start_ticks is None:
            raise CliError("stopwatch not running")
        self._elapsed_ticks += self.counter.query() - self._start_ticks
        self._start_ticks = None

    def reset(self) -> None:
        self._start_ticks = None
        self._elapsed_ticks = 0

    @property
    def running(self) -> bool:
        return self._start_ticks is not None

    @property
    def elapsed_ticks(self) -> int:
        ticks = self._elapsed_ticks
        if self._start_ticks is not None:
            ticks += self.counter.query() - self._start_ticks
        return ticks

    @property
    def elapsed_seconds(self) -> float:
        return self.counter.ticks_to_seconds(self.elapsed_ticks)

    @property
    def elapsed_ms(self) -> float:
        return self.counter.ticks_to_ms(self.elapsed_ticks)

"""Managed heap with a generational-flavoured GC pause model.

The execution engine "manages components, isolation model, and several
run-time services" (paper §1) — allocation and collection are the
run-time service that perturbs I/O latencies, so the model charges:

* a small per-allocation cost (pointer-bump + zeroing), and
* a stop-the-world pause whenever gen-0 allocation since the last
  collection crosses a threshold, proportional to the bytes examined.

No object graph is kept — the simulation tracks byte volumes only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import CliError
from repro.sim import Counter, Engine, Tally

__all__ = ["GcParams", "ManagedHeap"]


@dataclass(frozen=True)
class GcParams:
    """Allocation and collection cost coefficients."""

    alloc_base_cost: float = 30e-9          # per-allocation bookkeeping
    alloc_cost_per_byte: float = 0.05e-9    # zeroing at ~20 GB/s
    gen0_threshold: int = 256 * 1024        # collect after this much allocation
    pause_base: float = 50e-6
    pause_per_byte: float = 0.2e-9          # scan cost over gen-0 volume
    survival_fraction: float = 0.1          # fraction promoted per collection

    def __post_init__(self) -> None:
        if min(
            self.alloc_base_cost,
            self.alloc_cost_per_byte,
            self.pause_base,
            self.pause_per_byte,
        ) < 0:
            raise CliError("GC cost coefficients must be >= 0")
        if self.gen0_threshold < 1:
            raise CliError("gen0_threshold must be >= 1")
        if not (0.0 <= self.survival_fraction <= 1.0):
            raise CliError("survival_fraction must be in [0, 1]")


class ManagedHeap:
    """Byte-volume heap model with threshold-triggered collections."""

    def __init__(self, engine: Engine, params: Optional[GcParams] = None) -> None:
        self.engine = engine
        self.params = params or GcParams()
        self.gen0_bytes = 0
        self.promoted_bytes = 0
        self.total_allocated = Counter("heap.allocated")
        self.collections = Counter("heap.collections")
        self.pause_times = Tally("heap.pauses")

    def allocate(self, nbytes: int):
        """Generator: allocate ``nbytes``; may trigger a collection."""
        if nbytes < 0:
            raise CliError(f"negative allocation: {nbytes}")
        p = self.params
        self.gen0_bytes += nbytes
        self.total_allocated.add(nbytes)
        yield self.engine.timeout(p.alloc_base_cost + p.alloc_cost_per_byte * nbytes)
        if self.gen0_bytes >= p.gen0_threshold:
            yield from self.collect()

    def collect(self):
        """Generator: stop-the-world gen-0 collection."""
        p = self.params
        pause = p.pause_base + p.pause_per_byte * self.gen0_bytes
        survivors = int(self.gen0_bytes * p.survival_fraction)
        yield self.engine.timeout(pause)
        self.promoted_bytes += survivors
        self.gen0_bytes = 0
        self.collections.add()
        self.pause_times.record(pause)
        return pause

    @property
    def live_estimate(self) -> int:
        """Rough live-set size: current gen-0 plus everything promoted."""
        return self.gen0_bytes + self.promoted_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ManagedHeap gen0={self.gen0_bytes} promoted={self.promoted_bytes} "
            f"collections={self.collections.value}>"
        )

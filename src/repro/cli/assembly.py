"""Assembler: fluent builders for CIL method bodies.

The benchmark kernels are authored through :class:`MethodBuilder`::

    loop_sum = (
        MethodBuilder("sum_to_n", returns=True)
        .arg("n").local("i").local("acc")
        .ldc(0).stloc("acc")
        .ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("n").clt().brfalse("done")
        .ldloc("acc").ldloc("i").add().stloc("acc")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done")
        .ldloc("acc").ret()
        .build()
    )

``build()`` resolves labels to instruction indices, applies the
common-language-specification style usage checks (valid identifiers,
unique parameter names — paper §1, item 2), and runs the verifier.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.cli.cil import Instruction, Op
from repro.cli.metadata import AssemblyDef, ExceptionHandler, MethodDef, TypeDef
from repro.cli.verifier import verify_method
from repro.errors import CliError

__all__ = ["MethodBuilder", "AssemblyBuilder"]

#: A call target: a built MethodDef, or a forward signature
#: ``(qualified_name, argc, returns)`` resolved at execution time.
CallTarget = Union[MethodDef, Tuple[str, int, bool]]


def _check_identifier(name: str, what: str) -> None:
    if not name or not (name[0].isalpha() or name[0] == "_") or not all(
        c.isalnum() or c == "_" for c in name
    ):
        raise CliError(f"invalid {what} name {name!r} (CLS naming rules)")


class MethodBuilder:
    """Builds one verified :class:`MethodDef`."""

    def __init__(self, name: str, returns: bool = False) -> None:
        _check_identifier(name, "method")
        self.name = name
        self.returns = returns
        self._params: List[str] = []
        self._locals: List[str] = []
        self._code: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        # (try_start, try_end, handler_label, catches); open regions
        # carry try_end = None until end_try().
        self._handlers: List[list] = []
        self._open_trys: List[int] = []  # indices into _handlers
        self._built = False

    # -- declarations ---------------------------------------------------------

    def arg(self, name: str) -> "MethodBuilder":
        """Declare the next parameter."""
        _check_identifier(name, "parameter")
        if name in self._params:
            raise CliError(f"duplicate parameter {name!r}")
        self._params.append(name)
        return self

    def local(self, name: str) -> "MethodBuilder":
        """Declare the next local variable."""
        _check_identifier(name, "local")
        if name in self._locals:
            raise CliError(f"duplicate local {name!r}")
        self._locals.append(name)
        return self

    def label(self, name: str) -> "MethodBuilder":
        """Mark the next emitted instruction as branch target ``name``."""
        if name in self._labels:
            raise CliError(f"duplicate label {name!r}")
        self._labels[name] = len(self._code)
        return self

    # -- emission --------------------------------------------------------------

    def emit(self, op: Op, operand: Any = None) -> "MethodBuilder":
        """Append a raw instruction."""
        self._code.append(Instruction(op, operand))
        return self

    def _local_index(self, name_or_index: Union[str, int]) -> int:
        if isinstance(name_or_index, int):
            return name_or_index
        try:
            return self._locals.index(name_or_index)
        except ValueError:
            raise CliError(f"undeclared local {name_or_index!r}") from None

    def _arg_index(self, name_or_index: Union[str, int]) -> int:
        if isinstance(name_or_index, int):
            return name_or_index
        try:
            return self._params.index(name_or_index)
        except ValueError:
            raise CliError(f"undeclared parameter {name_or_index!r}") from None

    # One helper per opcode keeps kernels readable.
    def nop(self):            return self.emit(Op.NOP)
    def ldc(self, value):     return self.emit(Op.LDC, value)
    def ldstr(self, s: str):  return self.emit(Op.LDSTR, s)
    def ldloc(self, v):       return self.emit(Op.LDLOC, self._local_index(v))
    def stloc(self, v):       return self.emit(Op.STLOC, self._local_index(v))
    def ldarg(self, v):       return self.emit(Op.LDARG, self._arg_index(v))
    def starg(self, v):       return self.emit(Op.STARG, self._arg_index(v))
    def dup(self):            return self.emit(Op.DUP)
    def pop(self):            return self.emit(Op.POP)
    def add(self):            return self.emit(Op.ADD)
    def sub(self):            return self.emit(Op.SUB)
    def mul(self):            return self.emit(Op.MUL)
    def div(self):            return self.emit(Op.DIV)
    def rem(self):            return self.emit(Op.REM)
    def neg(self):            return self.emit(Op.NEG)
    def and_(self):           return self.emit(Op.AND)
    def or_(self):            return self.emit(Op.OR)
    def xor(self):            return self.emit(Op.XOR)
    def not_(self):           return self.emit(Op.NOT)
    def shl(self):            return self.emit(Op.SHL)
    def shr(self):            return self.emit(Op.SHR)
    def ceq(self):            return self.emit(Op.CEQ)
    def cgt(self):            return self.emit(Op.CGT)
    def clt(self):            return self.emit(Op.CLT)
    def br(self, label):      return self.emit(Op.BR, label)
    def brtrue(self, label):  return self.emit(Op.BRTRUE, label)
    def brfalse(self, label): return self.emit(Op.BRFALSE, label)
    def ret(self):            return self.emit(Op.RET)
    def newarr(self):         return self.emit(Op.NEWARR)
    def ldlen(self):          return self.emit(Op.LDLEN)
    def conv(self, kind):     return self.emit(Op.CONV, kind)

    def call(self, target: CallTarget) -> "MethodBuilder":
        """Call a managed method (a :class:`MethodDef` or a forward
        ``(name, argc, returns)`` signature)."""
        if not isinstance(target, MethodDef):
            if not (
                isinstance(target, tuple)
                and len(target) == 3
                and isinstance(target[0], str)
                and isinstance(target[1], int)
                and isinstance(target[2], bool)
            ):
                raise CliError(
                    "call target must be a MethodDef or (name, argc, returns)"
                )
        return self.emit(Op.CALL, target)

    def call_intrinsic(self, name: str, argc: int, returns: bool) -> "MethodBuilder":
        """Call a runtime intrinsic (managed class-library entry point:
        FileStream.Read, Socket.Send, ...)."""
        if argc < 0:
            raise CliError(f"negative intrinsic argc: {argc}")
        return self.emit(Op.CALLINTRINSIC, (name, argc, returns))

    def throw(self) -> "MethodBuilder":
        """Throw the exception object on top of the stack."""
        return self.emit(Op.THROW)

    def ldsfld(self, name: str) -> "MethodBuilder":
        """Push the value of static field ``name`` (0 if never stored)."""
        return self.emit(Op.LDSFLD, name)

    def stsfld(self, name: str) -> "MethodBuilder":
        """Pop into static field ``name``."""
        return self.emit(Op.STSFLD, name)

    # -- protected regions -------------------------------------------------------

    def begin_try(self) -> "MethodBuilder":
        """Open a protected region at the next instruction."""
        self._handlers.append([len(self._code), None, None, "System."])
        self._open_trys.append(len(self._handlers) - 1)
        return self

    def end_try(self, handler_label: str, catches: str = "System.") -> "MethodBuilder":
        """Close the innermost open region; exceptions inside it whose
        type name starts with ``catches`` transfer to
        ``handler_label`` (emit that label on a block that expects the
        exception object as the only stack entry)."""
        if not self._open_trys:
            raise CliError("end_try without a matching begin_try")
        idx = self._open_trys.pop()
        entry = self._handlers[idx]
        entry[1] = len(self._code)
        entry[2] = handler_label
        entry[3] = catches
        if entry[0] == entry[1]:
            raise CliError("empty protected region")
        return self

    # -- finalization -------------------------------------------------------------

    def build(self, verify: bool = True) -> MethodDef:
        """Resolve labels, construct the :class:`MethodDef`, verify it."""
        if self._built:
            raise CliError(f"method {self.name!r} already built")
        if self._open_trys:
            raise CliError(f"{len(self._open_trys)} unclosed protected region(s)")
        resolved: List[Instruction] = []
        for ins in self._code:
            if ins.op in (Op.BR, Op.BRTRUE, Op.BRFALSE) and isinstance(ins.operand, str):
                if ins.operand not in self._labels:
                    raise CliError(f"undefined label {ins.operand!r} in {self.name}")
                resolved.append(Instruction(ins.op, self._labels[ins.operand]))
            else:
                resolved.append(ins)
        handlers = []
        for try_start, try_end, handler_label, catches in self._handlers:
            if handler_label not in self._labels:
                raise CliError(f"undefined handler label {handler_label!r}")
            handlers.append(
                ExceptionHandler(
                    try_start=try_start,
                    try_end=try_end,
                    handler_start=self._labels[handler_label],
                    catches=catches,
                )
            )
        method = MethodDef(
            self.name,
            resolved,
            param_names=self._params,
            local_count=len(self._locals),
            returns=self.returns,
            handlers=handlers,
        )
        if verify:
            verify_method(method)
        self._built = True
        return method


class AssemblyBuilder:
    """Builds an :class:`AssemblyDef` out of types and methods."""

    def __init__(self, name: str, version: str = "1.0.0.0") -> None:
        _check_identifier(name.replace(".", "_"), "assembly")
        self.assembly = AssemblyDef(name, version)

    def add_type(self, name: str) -> TypeDef:
        _check_identifier(name, "type")
        return self.assembly.add_type(TypeDef(name))

    def add_method(self, type_name: str, method: MethodDef) -> MethodDef:
        tdef = self.assembly.types.get(type_name)
        if tdef is None:
            tdef = self.add_type(type_name)
        return tdef.add_method(method)

    def build(self) -> AssemblyDef:
        return self.assembly

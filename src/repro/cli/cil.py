"""CIL-like instruction set.

A compact stack-machine ISA modelled on ECMA-335 CIL, restricted to
what the benchmark kernels need.  Each opcode declares its *stack
effect* ``(pops, pushes)`` so the verifier can type-check bodies
without executing them; variable-effect opcodes (calls) carry ``None``
and are resolved from the call target's signature.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Tuple

__all__ = ["Op", "Instruction", "STACK_EFFECTS"]


class Op(enum.Enum):
    """Opcodes.  Names follow CIL conventions (lowercase mnemonics)."""

    NOP = "nop"
    # Constants and locals/args.
    LDC = "ldc"           # push operand constant
    LDSTR = "ldstr"       # push string literal (allocates on heap)
    LDLOC = "ldloc"       # push local[operand]
    STLOC = "stloc"       # pop into local[operand]
    LDARG = "ldarg"       # push argument[operand]
    STARG = "starg"       # pop into argument[operand]
    # Evaluation-stack shuffling.
    DUP = "dup"
    POP = "pop"
    # Arithmetic / logic (binary unless noted).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    NEG = "neg"           # unary
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"           # unary (bitwise on ints)
    SHL = "shl"
    SHR = "shr"
    # Comparisons (push 0/1).
    CEQ = "ceq"
    CGT = "cgt"
    CLT = "clt"
    # Control flow. Branch operands are instruction indices (resolved
    # from labels by the assembler).
    BR = "br"
    BRTRUE = "brtrue"
    BRFALSE = "brfalse"
    RET = "ret"
    # Calls.
    CALL = "call"         # operand: MethodDef or method name
    CALLINTRINSIC = "callintrinsic"  # operand: (intrinsic_name, argc, returns)
    # Allocation.
    NEWARR = "newarr"     # pop length, push array ref (heap allocation)
    LDLEN = "ldlen"       # pop array ref, push length
    CONV = "conv"         # numeric conversion; operand: target kind name
    # Exceptions (structured exception handling, ECMA-335 II.19).
    THROW = "throw"       # pop exception object, begin unwinding
    # Static fields. Operand: qualified field name string.
    LDSFLD = "ldsfld"     # push static field value (0 if never stored)
    STSFLD = "stsfld"     # pop into static field


# (pops, pushes); None means signature-dependent (CALL/CALLINTRINSIC).
STACK_EFFECTS: "dict[Op, Optional[Tuple[int, int]]]" = {
    Op.NOP: (0, 0),
    Op.LDC: (0, 1),
    Op.LDSTR: (0, 1),
    Op.LDLOC: (0, 1),
    Op.STLOC: (1, 0),
    Op.LDARG: (0, 1),
    Op.STARG: (1, 0),
    Op.DUP: (1, 2),
    Op.POP: (1, 0),
    Op.ADD: (2, 1),
    Op.SUB: (2, 1),
    Op.MUL: (2, 1),
    Op.DIV: (2, 1),
    Op.REM: (2, 1),
    Op.NEG: (1, 1),
    Op.AND: (2, 1),
    Op.OR: (2, 1),
    Op.XOR: (2, 1),
    Op.NOT: (1, 1),
    Op.SHL: (2, 1),
    Op.SHR: (2, 1),
    Op.CEQ: (2, 1),
    Op.CGT: (2, 1),
    Op.CLT: (2, 1),
    Op.BR: (0, 0),
    Op.BRTRUE: (1, 0),
    Op.BRFALSE: (1, 0),
    Op.RET: None,          # 0 or 1 depending on the method's return type
    Op.CALL: None,
    Op.CALLINTRINSIC: None,
    Op.NEWARR: (1, 1),
    Op.LDLEN: (1, 1),
    Op.CONV: (1, 1),
    Op.THROW: (1, 0),     # control never falls through
    Op.LDSFLD: (0, 1),
    Op.STSFLD: (1, 0),
}

assert set(STACK_EFFECTS) == set(Op), "every opcode needs a stack effect entry"


@dataclass(frozen=True)
class Instruction:
    """One CIL instruction: opcode + optional operand."""

    op: Op
    operand: Any = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.operand is None:
            return self.op.value
        return f"{self.op.value} {self.operand!r}"

"""Storage substrate: mechanical disks, request scheduling, striping.

This layer models the *device* side of the I/O path the paper's
benchmarks exercise.  The layer above (:mod:`repro.io`) adds the file
system and the buffer cache; this layer only knows about block
requests.

Components
----------
* :class:`DiskGeometry` — cylinders/heads/sectors and LBA mapping.
* :class:`DiskParams` / :class:`Disk` — a mechanical disk with seek,
  rotation and transfer costs, served by a pluggable scheduler.
* Schedulers — FCFS, SSTF, SCAN, C-SCAN, C-LOOK (the ablation study in
  DESIGN.md §6 compares them).
* :class:`StripedArray` — RAID-0 over N disks, used by the Figure 4
  disk-scaling experiment.
* :class:`MirroredArray` — RAID-1 with degraded-mode reads and
  background rebuild, the storage half of the robustness story
  (``docs/robustness.md``).
"""

from repro.storage.request import IORequest
from repro.storage.geometry import DiskGeometry
from repro.storage.scheduler import (
    FCFSScheduler,
    SSTFScheduler,
    ScanScheduler,
    CScanScheduler,
    CLookScheduler,
    make_scheduler,
    SCHEDULERS,
)
from repro.storage.disk import Disk, DiskParams
from repro.storage.raid import MirroredArray, StripedArray

__all__ = [
    "IORequest",
    "DiskGeometry",
    "DiskParams",
    "Disk",
    "FCFSScheduler",
    "SSTFScheduler",
    "ScanScheduler",
    "CScanScheduler",
    "CLookScheduler",
    "make_scheduler",
    "SCHEDULERS",
    "StripedArray",
    "MirroredArray",
]

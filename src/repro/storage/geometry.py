"""Disk geometry: cylinders, heads, sectors, and LBA mapping.

The mechanical model charges seek cost by *cylinder distance*, so the
geometry's job is to map a logical block address onto a cylinder.  We
use the classic uniform CHS layout (no zoned recording): blocks fill a
track, then the next head on the same cylinder, then the next
cylinder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import DiskError

__all__ = ["DiskGeometry"]


@dataclass(frozen=True)
class DiskGeometry:
    """Immutable CHS geometry.

    Defaults give an ~37 GB disk with 512 B blocks — a plausible 2004
    desktop drive (the paper's test machine era).
    """

    cylinders: int = 60_000
    heads: int = 4
    sectors_per_track: int = 300
    block_size: int = 512

    def __post_init__(self) -> None:
        for name in ("cylinders", "heads", "sectors_per_track", "block_size"):
            if getattr(self, name) < 1:
                raise DiskError(f"{name} must be >= 1, got {getattr(self, name)}")

    @property
    def blocks_per_cylinder(self) -> int:
        return self.heads * self.sectors_per_track

    @property
    def total_blocks(self) -> int:
        return self.cylinders * self.blocks_per_cylinder

    @property
    def capacity_bytes(self) -> int:
        return self.total_blocks * self.block_size

    def check_lba(self, lba: int) -> None:
        """Raise :class:`DiskError` unless ``0 <= lba < total_blocks``."""
        if not (0 <= lba < self.total_blocks):
            raise DiskError(f"LBA {lba} out of range [0, {self.total_blocks})")

    def cylinder_of(self, lba: int) -> int:
        """Cylinder containing ``lba``."""
        self.check_lba(lba)
        return lba // self.blocks_per_cylinder

    def chs_of(self, lba: int) -> Tuple[int, int, int]:
        """(cylinder, head, sector) triple for ``lba``."""
        self.check_lba(lba)
        cyl, rem = divmod(lba, self.blocks_per_cylinder)
        head, sector = divmod(rem, self.sectors_per_track)
        return cyl, head, sector

    def lba_of(self, cylinder: int, head: int, sector: int) -> int:
        """Inverse of :meth:`chs_of`."""
        if not (0 <= cylinder < self.cylinders):
            raise DiskError(f"cylinder {cylinder} out of range")
        if not (0 <= head < self.heads):
            raise DiskError(f"head {head} out of range")
        if not (0 <= sector < self.sectors_per_track):
            raise DiskError(f"sector {sector} out of range")
        return (cylinder * self.heads + head) * self.sectors_per_track + sector

    def blocks_for_bytes(self, nbytes: int) -> int:
        """Number of whole blocks needed to hold ``nbytes`` (>= 1)."""
        if nbytes < 0:
            raise DiskError(f"negative byte count: {nbytes}")
        return max(1, -(-nbytes // self.block_size))

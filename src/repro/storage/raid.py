"""RAID arrays: striping (RAID-0) and mirroring (RAID-1).

:class:`StripedArray` serves the Figure 4 experiment (QCRD speedup vs
number of disks): the behavioral-model executor points its I/O bursts
at the array and varies the disk count.

The address map is the standard RAID-0 layout: logical blocks are
grouped into stripe units of ``stripe_unit`` blocks; consecutive units
rotate round-robin across member disks.  A logical request splits into
at most one contiguous physical request per (disk, stripe-unit run)
and completes when every fragment has.

:class:`MirroredArray` is the resilience counterpart: every block lives
on every member, reads rotate across in-sync members and fail over when
one errors or goes offline (degraded mode), and a repaired member is
brought back with a chunked background :meth:`~MirroredArray.rebuild`
whose progress is exported as a gauge.

Both arrays validate member geometry at construction: mixing disks with
different block sizes, capacities, or cylinder/head/sector layouts
would silently mis-map blocks, so it raises :class:`DiskError` instead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import DiskError, DiskFailedError, MediaError
from repro.sim import Counter, Engine
from repro.sim.event import Event
from repro.storage.disk import Disk
from repro.storage.request import IORequest

__all__ = ["StripedArray", "MirroredArray"]


def _validate_members(disks: Sequence[Disk], kind: str) -> None:
    """Reject heterogeneous member sets (would silently mis-map blocks)."""
    if not disks:
        raise DiskError(f"{kind} needs at least one disk")
    if len({d.block_size for d in disks}) != 1:
        raise DiskError("member disks must share a block size")
    if len({d.total_blocks for d in disks}) != 1:
        raise DiskError("member disks must share a capacity")
    if len({d.geometry for d in disks}) != 1:
        raise DiskError(
            "member disks must share a geometry "
            "(cylinders/heads/sectors_per_track/block_size)"
        )


class StripedArray:
    """RAID-0 over homogeneous member disks.

    Exposes the same device interface as :class:`Disk` (``block_size``,
    ``total_blocks``, ``submit_range``) so the file-system layer can
    mount either interchangeably.
    """

    def __init__(self, engine: Engine, disks: Sequence[Disk], stripe_unit: int = 128) -> None:
        _validate_members(disks, "StripedArray")
        if stripe_unit < 1:
            raise DiskError(f"stripe unit must be >= 1 block, got {stripe_unit}")
        self.engine = engine
        self.disks: List[Disk] = list(disks)
        self.stripe_unit = stripe_unit

    # -- device interface ----------------------------------------------------

    @property
    def block_size(self) -> int:
        return self.disks[0].block_size

    @property
    def total_blocks(self) -> int:
        return self.disks[0].total_blocks * len(self.disks)

    def map_block(self, logical_block: int) -> Tuple[int, int]:
        """Map a logical block to ``(disk_index, physical_block)``."""
        if not (0 <= logical_block < self.total_blocks):
            raise DiskError(f"logical block {logical_block} out of range")
        unit_index, offset = divmod(logical_block, self.stripe_unit)
        ndisks = len(self.disks)
        disk_index = unit_index % ndisks
        physical_unit = unit_index // ndisks
        return disk_index, physical_unit * self.stripe_unit + offset

    def split(self, lba: int, nblocks: int) -> List[Tuple[int, int, int]]:
        """Split a logical range into ``(disk_index, physical_lba, nblocks)``
        fragments, each contiguous on its member disk."""
        if nblocks < 1:
            raise DiskError(f"nblocks must be >= 1, got {nblocks}")
        if lba < 0 or lba + nblocks > self.total_blocks:
            raise DiskError(f"range [{lba}, {lba + nblocks}) out of array bounds")
        fragments: List[Tuple[int, int, int]] = []
        block = lba
        remaining = nblocks
        while remaining > 0:
            disk_index, phys = self.map_block(block)
            # Run length within the current stripe unit.
            unit_remaining = self.stripe_unit - (block % self.stripe_unit)
            run = min(remaining, unit_remaining)
            # Merge with previous fragment when it continues on the same disk.
            if fragments and fragments[-1][0] == disk_index and (
                fragments[-1][1] + fragments[-1][2] == phys
            ):
                disk, start, length = fragments[-1]
                fragments[-1] = (disk, start, length + run)
            else:
                fragments.append((disk_index, phys, run))
            block += run
            remaining -= run
        return fragments

    def submit_range(self, lba: int, nblocks: int, is_write: bool = False) -> Event:
        """Submit a logical range; the event succeeds with the list of
        completed member :class:`IORequest` objects once all land."""
        fragments = self.split(lba, nblocks)
        events = [
            self.disks[disk].submit(IORequest(lba=phys, nblocks=run, is_write=is_write))
            for disk, phys, run in fragments
        ]
        done = self.engine.event()
        gather = self.engine.all_of(events)

        def _finish(ev: Event) -> None:
            if ev.ok:
                done.succeed([e.value for e in events])
            else:
                done.fail(ev.value)

        gather.add_callback(_finish)
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StripedArray disks={len(self.disks)} unit={self.stripe_unit}>"


class MirroredArray:
    """RAID-1 over homogeneous member disks.

    Same device interface as :class:`Disk` / :class:`StripedArray`
    (``block_size`` / ``total_blocks`` / ``submit_range``), so it can
    be mounted under a file system unchanged.

    Reads rotate round-robin across in-sync members and fail over to
    the next one on :class:`~repro.errors.MediaError` or
    :class:`~repro.errors.DiskFailedError`; a read served while any
    member is unavailable counts as *degraded* (``{name}.degraded_reads``).
    Writes go to every in-sync member and succeed as long as one lands;
    a member that misses a write is marked stale and excluded from
    reads until :meth:`rebuild` copies it back into sync
    (``{name}.rebuild_progress`` gauge, 0..1).
    """

    def __init__(self, engine: Engine, disks: Sequence[Disk],
                 name: str = "mirror") -> None:
        _validate_members(disks, "MirroredArray")
        if len(disks) < 2:
            raise DiskError("MirroredArray needs at least two disks")
        self.engine = engine
        self.disks: List[Disk] = list(disks)
        self.name = name
        self._stale: set = set()
        self._next_read = 0
        self._rebuild_progress = 1.0
        self.degraded_reads = Counter(f"{name}.degraded_reads")
        self.failovers = Counter(f"{name}.failovers")
        reg = engine.metrics
        for counter in (self.degraded_reads, self.failovers):
            reg.register(counter.name, counter, device=name)
        reg.gauge(f"{name}.rebuild_progress",
                  lambda: self._rebuild_progress, device=name)

    # -- device interface ----------------------------------------------------

    @property
    def block_size(self) -> int:
        return self.disks[0].block_size

    @property
    def total_blocks(self) -> int:
        return self.disks[0].total_blocks

    def _note_failures(self) -> None:
        """An offline member is stale until rebuilt, even after repair."""
        for i, disk in enumerate(self.disks):
            if disk.failed:
                self._stale.add(i)

    def in_sync_members(self) -> List[int]:
        """Indices of members that are online and hold current data."""
        self._note_failures()
        return [i for i, d in enumerate(self.disks)
                if not d.failed and i not in self._stale]

    @property
    def degraded(self) -> bool:
        """True while any member is offline or stale."""
        return len(self.in_sync_members()) < len(self.disks)

    @property
    def rebuild_progress(self) -> float:
        """Resilver progress, 0..1 (1.0 when fully in sync)."""
        return self._rebuild_progress

    def submit_range(self, lba: int, nblocks: int, is_write: bool = False) -> Event:
        """Submit a logical range; the event succeeds with the list of
        completed member :class:`IORequest` objects (one for reads, one
        per surviving member for writes)."""
        if nblocks < 1:
            raise DiskError(f"nblocks must be >= 1, got {nblocks}")
        if lba < 0 or lba + nblocks > self.total_blocks:
            raise DiskError(f"range [{lba}, {lba + nblocks}) out of array bounds")
        done = self.engine.event()
        body = self._write(lba, nblocks, done) if is_write else \
            self._read(lba, nblocks, done)
        self.engine.process(
            body, name=f"{self.name}.{'write' if is_write else 'read'}",
            daemon=True)
        return done

    def _fail(self, done: Event, error: Exception) -> None:
        # The caller may have abandoned the event (timed-out retry
        # attempt); the sacrificial callback keeps the engine from
        # treating that as an unobserved failure.
        done.add_callback(lambda ev: None)
        done.fail(error)

    def _read(self, lba: int, nblocks: int, done: Event):
        members = self.in_sync_members()
        if not members:
            self._fail(done, DiskFailedError(
                f"array {self.name}: no in-sync member left"))
            return
        degraded = len(members) < len(self.disks)
        # Rotate the starting member so a healthy array balances reads.
        self._next_read = (self._next_read + 1) % len(members)
        order = members[self._next_read:] + members[:self._next_read]
        last_error: Optional[Exception] = None
        for attempt, index in enumerate(order):
            disk = self.disks[index]
            try:
                request = yield disk.submit(
                    IORequest(lba=lba, nblocks=nblocks))
            except (MediaError, DiskFailedError) as exc:
                last_error = exc
                self.failovers.add()
                tracer = self.engine.tracer
                if tracer.enabled:
                    tracer.instant("raid.failover", "storage",
                                   device=self.name, member=disk.name,
                                   lba=lba, error=type(exc).__name__)
                degraded = True
                continue
            if degraded:
                self.degraded_reads.add()
                tracer = self.engine.tracer
                if tracer.enabled:
                    tracer.instant("raid.degraded_read", "storage",
                                   device=self.name, member=disk.name,
                                   lba=lba, nblocks=nblocks)
            done.succeed([request])
            return
        self._fail(done, last_error or DiskFailedError(
            f"array {self.name}: all members failed"))

    def _write(self, lba: int, nblocks: int, done: Event):
        members = self.in_sync_members()
        if not members:
            self._fail(done, DiskFailedError(
                f"array {self.name}: no in-sync member left"))
            return
        pending: List[Tuple[int, Event]] = []
        for index in members:
            try:
                pending.append((index, self.disks[index].submit(
                    IORequest(lba=lba, nblocks=nblocks, is_write=True))))
            except DiskFailedError:
                self._stale.add(index)
        results = []
        last_error: Optional[Exception] = None
        for index, event in pending:
            try:
                results.append((yield event))
            except (MediaError, DiskFailedError) as exc:
                # This member missed the write: stale until rebuilt.
                last_error = exc
                self._stale.add(index)
        if results:
            done.succeed(results)
        else:
            self._fail(done, last_error or DiskFailedError(
                f"array {self.name}: write lost on every member"))

    # -- rebuild -------------------------------------------------------------

    def rebuild(self, target_index: int, chunk_blocks: int = 256):
        """Generator: copy the full address space from an in-sync member
        onto member ``target_index``, returning blocks copied.

        Run it as a process (``engine.process(array.rebuild(1))``); it
        shares the disks with foreground traffic, so rebuild time
        reflects contention.  Progress is visible while it runs via the
        ``{name}.rebuild_progress`` gauge and a ``raid.rebuild_progress``
        tracer counter series.
        """
        if not (0 <= target_index < len(self.disks)):
            raise DiskError(f"no member {target_index}")
        if chunk_blocks < 1:
            raise DiskError(f"chunk_blocks must be >= 1, got {chunk_blocks}")
        target = self.disks[target_index]
        if target.failed:
            raise DiskFailedError(
                f"member {target.name} is offline; repair it before rebuilding")
        if target_index not in self._stale:
            return 0
        started = self.engine.now
        total = self.total_blocks
        copied = 0
        self._rebuild_progress = 0.0
        for lba in range(0, total, chunk_blocks):
            run = min(chunk_blocks, total - lba)
            sources = [i for i in self.in_sync_members() if i != target_index]
            if not sources:
                raise DiskFailedError(
                    f"array {self.name}: lost the last in-sync source "
                    "mid-rebuild")
            yield self.disks[sources[0]].submit(
                IORequest(lba=lba, nblocks=run))
            yield target.submit(
                IORequest(lba=lba, nblocks=run, is_write=True))
            copied += run
            self._rebuild_progress = copied / total
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.counter(f"{self.name}.rebuild_progress", "storage",
                               self._rebuild_progress)
        self._stale.discard(target_index)
        self._rebuild_progress = 1.0
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.complete("raid.rebuild", "storage", started,
                            device=self.name, member=target.name,
                            blocks=copied)
        return copied

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MirroredArray {self.name} disks={len(self.disks)} "
                f"stale={sorted(self._stale)}>")

"""RAID-0 striping across N disks.

Used by the Figure 4 experiment (QCRD speedup vs number of disks): the
behavioral-model executor points its I/O bursts at a
:class:`StripedArray` and varies the disk count.

The address map is the standard RAID-0 layout: logical blocks are
grouped into stripe units of ``stripe_unit`` blocks; consecutive units
rotate round-robin across member disks.  A logical request splits into
at most one contiguous physical request per (disk, stripe-unit run)
and completes when every fragment has.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import DiskError
from repro.sim import Engine
from repro.sim.event import Event
from repro.storage.disk import Disk
from repro.storage.request import IORequest

__all__ = ["StripedArray"]


class StripedArray:
    """RAID-0 over homogeneous member disks.

    Exposes the same device interface as :class:`Disk` (``block_size``,
    ``total_blocks``, ``submit_range``) so the file-system layer can
    mount either interchangeably.
    """

    def __init__(self, engine: Engine, disks: Sequence[Disk], stripe_unit: int = 128) -> None:
        if not disks:
            raise DiskError("StripedArray needs at least one disk")
        if stripe_unit < 1:
            raise DiskError(f"stripe unit must be >= 1 block, got {stripe_unit}")
        block_sizes = {d.block_size for d in disks}
        if len(block_sizes) != 1:
            raise DiskError("member disks must share a block size")
        sizes = {d.total_blocks for d in disks}
        if len(sizes) != 1:
            raise DiskError("member disks must share a capacity")
        self.engine = engine
        self.disks: List[Disk] = list(disks)
        self.stripe_unit = stripe_unit

    # -- device interface ----------------------------------------------------

    @property
    def block_size(self) -> int:
        return self.disks[0].block_size

    @property
    def total_blocks(self) -> int:
        return self.disks[0].total_blocks * len(self.disks)

    def map_block(self, logical_block: int) -> Tuple[int, int]:
        """Map a logical block to ``(disk_index, physical_block)``."""
        if not (0 <= logical_block < self.total_blocks):
            raise DiskError(f"logical block {logical_block} out of range")
        unit_index, offset = divmod(logical_block, self.stripe_unit)
        ndisks = len(self.disks)
        disk_index = unit_index % ndisks
        physical_unit = unit_index // ndisks
        return disk_index, physical_unit * self.stripe_unit + offset

    def split(self, lba: int, nblocks: int) -> List[Tuple[int, int, int]]:
        """Split a logical range into ``(disk_index, physical_lba, nblocks)``
        fragments, each contiguous on its member disk."""
        if nblocks < 1:
            raise DiskError(f"nblocks must be >= 1, got {nblocks}")
        if lba < 0 or lba + nblocks > self.total_blocks:
            raise DiskError(f"range [{lba}, {lba + nblocks}) out of array bounds")
        fragments: List[Tuple[int, int, int]] = []
        block = lba
        remaining = nblocks
        while remaining > 0:
            disk_index, phys = self.map_block(block)
            # Run length within the current stripe unit.
            unit_remaining = self.stripe_unit - (block % self.stripe_unit)
            run = min(remaining, unit_remaining)
            # Merge with previous fragment when it continues on the same disk.
            if fragments and fragments[-1][0] == disk_index and (
                fragments[-1][1] + fragments[-1][2] == phys
            ):
                disk, start, length = fragments[-1]
                fragments[-1] = (disk, start, length + run)
            else:
                fragments.append((disk_index, phys, run))
            block += run
            remaining -= run
        return fragments

    def submit_range(self, lba: int, nblocks: int, is_write: bool = False) -> Event:
        """Submit a logical range; the event succeeds with the list of
        completed member :class:`IORequest` objects once all land."""
        fragments = self.split(lba, nblocks)
        events = [
            self.disks[disk].submit(IORequest(lba=phys, nblocks=run, is_write=is_write))
            for disk, phys, run in fragments
        ]
        done = self.engine.event()
        gather = self.engine.all_of(events)

        def _finish(ev: Event) -> None:
            if ev.ok:
                done.succeed([e.value for e in events])
            else:
                done.fail(ev.value)

        gather.add_callback(_finish)
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StripedArray disks={len(self.disks)} unit={self.stripe_unit}>"

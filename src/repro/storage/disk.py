"""Mechanical disk model.

Service time of a request = controller overhead + seek + rotational
latency + media transfer.  The seek cost follows the standard
square-root curve between track-to-track and full-stroke times; the
rotational latency is half a revolution in deterministic mode or
uniform(0, revolution) from a seeded stream otherwise.

Defaults approximate a 7200 rpm desktop drive of the paper's era
(2004): ~8.5 ms average seek, ~4.2 ms average rotational latency,
50 MB/s media rate.

A :class:`Disk` is an active object: its arm is a daemon process that
drains the attached scheduler.  ``submit()`` returns an event that
succeeds with the request when it completes, so callers simply::

    done = disk.submit(IORequest(lba=0, nblocks=8))
    req = yield done
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import DiskError, DiskFailedError, MediaError
from repro.sim import Counter, Engine, Tally, TimeWeighted
from repro.sim.event import Event
from repro.sim.probe import NULL_PROBE
from repro.storage.geometry import DiskGeometry
from repro.storage.request import IORequest
from repro.storage.scheduler import DiskScheduler, make_scheduler
from repro.units import MB

__all__ = ["DiskParams", "Disk"]


@dataclass(frozen=True)
class DiskParams:
    """Timing parameters of the mechanical model.

    Attributes
    ----------
    rpm:
        Spindle speed; one revolution takes ``60 / rpm`` seconds.
    seek_track_to_track / seek_full_stroke:
        Seek-time endpoints (seconds); intermediate distances follow
        ``t2t + (full - t2t) * sqrt(d / max_d)``.
    transfer_rate:
        Sustained media rate, bytes/second.
    controller_overhead:
        Fixed per-request command processing cost (seconds).
    deterministic:
        If True, rotational latency is always half a revolution; if
        False it is sampled uniformly from a seeded stream.
    """

    rpm: float = 7200.0
    seek_track_to_track: float = 0.0008
    seek_full_stroke: float = 0.018
    transfer_rate: float = 50.0 * MB
    controller_overhead: float = 0.0002
    deterministic: bool = True

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise DiskError(f"rpm must be positive, got {self.rpm}")
        if self.seek_track_to_track < 0 or self.seek_full_stroke < 0:
            raise DiskError("seek times must be >= 0")
        if self.seek_full_stroke < self.seek_track_to_track:
            raise DiskError("full-stroke seek must be >= track-to-track seek")
        if self.transfer_rate <= 0:
            raise DiskError(f"transfer rate must be positive, got {self.transfer_rate}")
        if self.controller_overhead < 0:
            raise DiskError("controller overhead must be >= 0")

    @property
    def revolution_time(self) -> float:
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency(self) -> float:
        return self.revolution_time / 2.0


class Disk:
    """One disk: geometry + mechanics + a scheduler-driven arm.

    Parameters
    ----------
    engine:
        The simulation engine.
    geometry, params:
        Physical description; defaults model a 2004 desktop drive.
    scheduler:
        Policy name (``"fcfs"``, ``"sstf"``, ``"scan"``, ``"cscan"``,
        ``"clook"``) or a ready :class:`DiskScheduler` instance.
    rng:
        numpy Generator used only when ``params.deterministic`` is
        False (rotational-latency sampling).
    injector:
        Optional :class:`~repro.faults.FaultInjector`; when given, the
        arm consults it per serviced request (media errors, slowdowns,
        stalls) and ``disk.fail`` rules targeting this device are armed.
    """

    def __init__(
        self,
        engine: Engine,
        geometry: Optional[DiskGeometry] = None,
        params: Optional[DiskParams] = None,
        scheduler: "str | DiskScheduler" = "fcfs",
        rng: Optional[np.random.Generator] = None,
        name: str = "disk",
        probe=NULL_PROBE,
        injector=None,
    ) -> None:
        self.engine = engine
        self.geometry = geometry or DiskGeometry()
        self.params = params or DiskParams()
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler, self.geometry)
        self.scheduler: DiskScheduler = scheduler
        self._rng = rng
        self.name = name
        self.probe = probe

        self._head_cylinder = 0
        self._last_end_lba: Optional[int] = None
        self._wakeup: Optional[Event] = None
        self._completions: Dict[int, Event] = {}
        self._injector = injector
        self.failed = False

        # Statistics (registered with the engine's metrics registry so
        # one snapshot covers every device on the machine).
        self.requests_completed = Counter(f"{name}.completed")
        self.bytes_read = Counter(f"{name}.bytes_read")
        self.bytes_written = Counter(f"{name}.bytes_written")
        self.media_errors = Counter(f"{name}.media_errors")
        self.service_times = Tally(f"{name}.service")
        self.response_times = Tally(f"{name}.response")
        self.busy = TimeWeighted(engine, initial=0.0)
        reg = engine.metrics
        for collector in (self.requests_completed, self.bytes_read,
                          self.bytes_written, self.media_errors,
                          self.service_times, self.response_times):
            reg.register(collector.name, collector, device=name)
        reg.register(f"{name}.busy", self.busy, device=name)
        reg.gauge(f"{name}.queue_depth", lambda: len(self.scheduler), device=name)
        reg.gauge(f"{name}.queue_max_depth",
                  lambda: self.scheduler.max_depth, device=name)

        engine.process(self._arm(), name=f"{name}.arm", daemon=True)
        if injector is not None:
            injector.register_disk(self)

    # -- device interface (shared with StripedArray) ------------------------

    @property
    def block_size(self) -> int:
        return self.geometry.block_size

    @property
    def total_blocks(self) -> int:
        return self.geometry.total_blocks

    @property
    def head_cylinder(self) -> int:
        """Current arm position (cylinder index)."""
        return self._head_cylinder

    def submit(self, request: IORequest) -> Event:
        """Queue ``request``; the returned event succeeds with it when
        the transfer completes."""
        if self.failed:
            raise DiskFailedError(f"disk {self.name} is offline")
        if request.end_lba > self.geometry.total_blocks:
            raise DiskError(
                f"request [{request.lba}, {request.end_lba}) exceeds disk "
                f"of {self.geometry.total_blocks} blocks"
            )
        if request.request_id in self._completions:
            raise DiskError(f"request {request.request_id} already submitted")
        request.submitted_at = self.engine.now
        done = self.engine.event()
        self._completions[request.request_id] = done
        if self.probe.enabled:
            self.probe.record(
                "disk", f"{self.name} submit",
                id=request.request_id, lba=request.lba,
                nblocks=request.nblocks, write=request.is_write,
            )
        self.scheduler.push(request)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.counter(f"{self.name}.queue", "storage",
                           self.scheduler.note_depth())
        else:
            self.scheduler.note_depth()
        if self._wakeup is not None:
            wake, self._wakeup = self._wakeup, None
            wake.succeed()
        return done

    def submit_range(self, lba: int, nblocks: int, is_write: bool = False) -> Event:
        """Convenience: build and submit a request for a block range."""
        return self.submit(IORequest(lba=lba, nblocks=nblocks, is_write=is_write))

    # -- failure lifecycle ---------------------------------------------------

    def fail_disk(self, reason: str = "injected failure") -> None:
        """Take the whole device offline.

        Every queued (and in-service) request fails with
        :class:`~repro.errors.DiskFailedError`; new submissions raise
        synchronously until :meth:`repair` is called.
        """
        if self.failed:
            return
        self.failed = True
        error = DiskFailedError(f"disk {self.name} failed: {reason}")
        # Drain the scheduler so the arm never services stale requests.
        while not self.scheduler.empty:
            self.scheduler.pop(self._head_cylinder)
        for done in list(self._completions.values()):
            # Guard against "failed event nobody waited on": background
            # fetchers may have been abandoned by a timed-out retry.
            done.add_callback(lambda ev: None)
            done.fail(error)
        self._completions.clear()
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("disk.failed", "storage", device=self.name,
                           reason=reason)

    def repair(self) -> None:
        """Bring a failed device back online (empty, ready for rebuild)."""
        if not self.failed:
            return
        self.failed = False
        self._last_end_lba = None
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("disk.repaired", "storage", device=self.name)

    # -- timing model --------------------------------------------------------

    def seek_time(self, from_cyl: int, to_cyl: int) -> float:
        """Arm move cost between two cylinders (0 if already there)."""
        distance = abs(to_cyl - from_cyl)
        if distance == 0:
            return 0.0
        p = self.params
        max_d = max(1, self.geometry.cylinders - 1)
        return p.seek_track_to_track + (
            p.seek_full_stroke - p.seek_track_to_track
        ) * math.sqrt(distance / max_d)

    def rotational_latency(self) -> float:
        """Rotational delay for the next request."""
        p = self.params
        if p.deterministic or self._rng is None:
            return p.avg_rotational_latency
        return float(self._rng.uniform(0.0, p.revolution_time))

    def transfer_time(self, nblocks: int) -> float:
        """Media transfer cost for ``nblocks`` consecutive blocks."""
        return nblocks * self.geometry.block_size / self.params.transfer_rate

    def is_sequential(self, request: IORequest) -> bool:
        """True when ``request`` continues exactly where the previous
        request on this disk ended (the drive keeps streaming without
        repositioning — the firmware's sequential-detection path)."""
        return self._last_end_lba is not None and request.lba == self._last_end_lba

    def service_time(self, request: IORequest) -> float:
        """Positioning + transfer cost from the current head position.

        A sequential continuation pays only controller overhead and
        media transfer; a random request adds seek + rotation.
        """
        if self.is_sequential(request):
            return self.params.controller_overhead + self.transfer_time(request.nblocks)
        target = self.geometry.cylinder_of(request.lba)
        return (
            self.params.controller_overhead
            + self.seek_time(self._head_cylinder, target)
            + self.rotational_latency()
            + self.transfer_time(request.nblocks)
        )

    # -- the arm -------------------------------------------------------------

    def _arm(self):
        while True:
            if self.scheduler.empty:
                self._wakeup = self.engine.event()
                self.busy.record(0.0)
                yield self._wakeup
            self.busy.record(1.0)
            request = self.scheduler.pop(self._head_cylinder)
            request.started_at = self.engine.now
            service = self.service_time(request)
            fault = None
            if self._injector is not None:
                fault = self._injector.disk_fault(
                    self.name, request.lba, request.nblocks)
                if fault is not None:
                    kind, spec = fault
                    if kind == "disk.slow":
                        service *= spec.slow_factor
                    elif kind == "disk.stall":
                        service += spec.delay
            yield self.engine.timeout(service)
            # Head ends at the cylinder holding the request's last block.
            self._head_cylinder = self.geometry.cylinder_of(request.end_lba - 1)
            self._last_end_lba = request.end_lba
            request.completed_at = self.engine.now

            # fail_disk() may have claimed the completion mid-service.
            done = self._completions.pop(request.request_id, None)
            if done is None:
                continue

            if fault is not None and fault[0] == "disk.media_error":
                self.media_errors.add()
                self._last_end_lba = None  # the stream broke; reposition
                tracer = self.engine.tracer
                if tracer.enabled:
                    tracer.complete(
                        f"disk.{'write' if request.is_write else 'read'}",
                        "storage", request.started_at,
                        device=self.name, lba=request.lba,
                        nblocks=request.nblocks, error="MediaError",
                    )
                done.add_callback(lambda ev: None)
                done.fail(MediaError(
                    f"disk {self.name}: unrecoverable read at lba "
                    f"{request.lba}+{request.nblocks}"
                ))
                continue

            nbytes = request.nblocks * self.geometry.block_size
            self.requests_completed.add()
            if request.is_write:
                self.bytes_written.add(nbytes)
            else:
                self.bytes_read.add(nbytes)
            self.service_times.record(request.service_time)
            self.response_times.record(request.response_time)
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.complete(
                    f"disk.{'write' if request.is_write else 'read'}",
                    "storage", request.started_at,
                    device=self.name, lba=request.lba,
                    nblocks=request.nblocks,
                    wait_ms=round((request.started_at - request.submitted_at) * 1e3, 6),
                )
                tracer.counter(f"{self.name}.queue", "storage",
                               len(self.scheduler))
            if self.probe.enabled:
                self.probe.record(
                    "disk", f"{self.name} complete",
                    id=request.request_id,
                    service_ms=round(request.service_time * 1e3, 4),
                    response_ms=round(request.response_time * 1e3, 4),
                )

            done.succeed(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Disk {self.name} head@{self._head_cylinder} "
            f"queued={len(self.scheduler)}>"
        )

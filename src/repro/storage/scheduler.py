"""Disk-arm scheduling disciplines.

A scheduler holds pending :class:`~repro.storage.request.IORequest`
objects and, given the current head cylinder, picks the next one to
service.  The disk drives it; schedulers hold no timing logic.

Implemented disciplines (classic textbook set — the prefetching
discussion in the paper §3.4 motivates the ablation in DESIGN.md §6):

* FCFS   — arrival order.
* SSTF   — shortest seek time first.
* SCAN   — elevator, sweeping both directions, reversing at extremes.
* C-SCAN — one-directional sweep, wrap to cylinder 0.
* C-LOOK — one-directional sweep, wrap to the lowest pending request.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import DiskError
from repro.storage.geometry import DiskGeometry
from repro.storage.request import IORequest

__all__ = [
    "DiskScheduler",
    "FCFSScheduler",
    "SSTFScheduler",
    "ScanScheduler",
    "CScanScheduler",
    "CLookScheduler",
    "make_scheduler",
    "SCHEDULERS",
]


class DiskScheduler:
    """Abstract base: a queue of requests with a selection policy.

    Queue-depth observability: the driving disk calls
    :meth:`note_depth` after every push/pop, letting the scheduler
    keep its own high-water mark (``max_depth``) and pass/registered
    depth gauges without any timing logic of its own.
    """

    name = "abstract"

    def __init__(self, geometry: DiskGeometry) -> None:
        self.geometry = geometry
        self.max_depth = 0

    def push(self, request: IORequest) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def pop(self, head_cylinder: int) -> IORequest:  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def note_depth(self) -> int:
        """Record the current queue depth; returns it."""
        depth = len(self)
        if depth > self.max_depth:
            self.max_depth = depth
        return depth

    @property
    def empty(self) -> bool:
        return len(self) == 0


class FCFSScheduler(DiskScheduler):
    """First-come first-served."""

    name = "fcfs"

    def __init__(self, geometry: DiskGeometry) -> None:
        super().__init__(geometry)
        self._queue: Deque[IORequest] = deque()

    def push(self, request: IORequest) -> None:
        self._queue.append(request)

    def pop(self, head_cylinder: int) -> IORequest:
        if not self._queue:
            raise DiskError("pop from empty scheduler")
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class _ListScheduler(DiskScheduler):
    """Shared storage for position-aware policies (small queues; O(n)
    selection is fine and keeps the code legible per the guides'
    make-it-work-first rule)."""

    def __init__(self, geometry: DiskGeometry) -> None:
        super().__init__(geometry)
        self._pending: List[IORequest] = []

    def push(self, request: IORequest) -> None:
        self._pending.append(request)

    def __len__(self) -> int:
        return len(self._pending)

    def _take(self, idx: int) -> IORequest:
        return self._pending.pop(idx)

    def _cyl(self, request: IORequest) -> int:
        return self.geometry.cylinder_of(request.lba)


class SSTFScheduler(_ListScheduler):
    """Shortest seek time first (greedy nearest cylinder)."""

    name = "sstf"

    def pop(self, head_cylinder: int) -> IORequest:
        if not self._pending:
            raise DiskError("pop from empty scheduler")
        best = min(
            range(len(self._pending)),
            key=lambda i: (abs(self._cyl(self._pending[i]) - head_cylinder), i),
        )
        return self._take(best)


class ScanScheduler(_ListScheduler):
    """Elevator: keep sweeping in the current direction; reverse when no
    request remains ahead."""

    name = "scan"

    def __init__(self, geometry: DiskGeometry) -> None:
        super().__init__(geometry)
        self._direction = 1  # +1 toward higher cylinders

    def pop(self, head_cylinder: int) -> IORequest:
        if not self._pending:
            raise DiskError("pop from empty scheduler")
        for _ in range(2):
            ahead = [
                (i, self._cyl(r))
                for i, r in enumerate(self._pending)
                if (self._cyl(r) - head_cylinder) * self._direction >= 0
            ]
            if ahead:
                idx, _ = min(ahead, key=lambda t: (abs(t[1] - head_cylinder), t[0]))
                return self._take(idx)
            self._direction = -self._direction
        raise AssertionError("unreachable: pending requests must lie somewhere")


class CScanScheduler(_ListScheduler):
    """Circular SCAN: sweep toward higher cylinders only; after the
    highest pending request, wrap to the lowest-cylinder request."""

    name = "cscan"

    def pop(self, head_cylinder: int) -> IORequest:
        if not self._pending:
            raise DiskError("pop from empty scheduler")
        ahead = [
            (i, self._cyl(r))
            for i, r in enumerate(self._pending)
            if self._cyl(r) >= head_cylinder
        ]
        pool = ahead or [(i, self._cyl(r)) for i, r in enumerate(self._pending)]
        idx, _ = min(pool, key=lambda t: (t[1], t[0]))
        return self._take(idx)


class CLookScheduler(CScanScheduler):
    """C-LOOK behaves like C-SCAN at this abstraction level (the disk
    charges actual distance moved, so not traveling to the physical end
    is already implicit); kept as a distinct named policy for the
    ablation harness."""

    name = "clook"


SCHEDULERS: Dict[str, Callable[[DiskGeometry], DiskScheduler]] = {
    "fcfs": FCFSScheduler,
    "sstf": SSTFScheduler,
    "scan": ScanScheduler,
    "cscan": CScanScheduler,
    "clook": CLookScheduler,
}


def make_scheduler(name: str, geometry: DiskGeometry) -> DiskScheduler:
    """Factory by policy name (see :data:`SCHEDULERS` for choices)."""
    try:
        factory = SCHEDULERS[name.lower()]
    except KeyError:
        raise DiskError(
            f"unknown scheduler {name!r}; choices: {sorted(SCHEDULERS)}"
        ) from None
    return factory(geometry)

"""Block-level I/O request."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DiskError

__all__ = ["IORequest"]

_request_ids = itertools.count()


@dataclass
class IORequest:
    """One block-granular request against a disk or array.

    Attributes
    ----------
    lba:
        First logical block address.
    nblocks:
        Number of consecutive blocks (must be >= 1).
    is_write:
        Direction; reads and writes cost the same at the device (the
        asymmetry the paper observes comes from the cache layer above).
    submitted_at / started_at / completed_at:
        Simulated timestamps filled in by the disk as the request moves
        through the queue; ``None`` until reached.
    """

    lba: int
    nblocks: int
    is_write: bool = False
    request_id: int = field(default_factory=lambda: next(_request_ids))
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    completed_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lba < 0:
            raise DiskError(f"negative LBA: {self.lba}")
        if self.nblocks < 1:
            raise DiskError(f"request must cover >= 1 block, got {self.nblocks}")

    @property
    def end_lba(self) -> int:
        """One past the last block touched."""
        return self.lba + self.nblocks

    @property
    def service_time(self) -> float:
        """Time from start of service to completion (after both set)."""
        if self.started_at is None or self.completed_at is None:
            raise DiskError("request not yet serviced")
        return self.completed_at - self.started_at

    @property
    def response_time(self) -> float:
        """Time from submission to completion, including queueing."""
        if self.submitted_at is None or self.completed_at is None:
            raise DiskError("request not yet completed")
        return self.completed_at - self.submitted_at

"""Distributed execution fabrics (paper §5 future work).

"Furthermore, we intend to develop benchmarks for I/O-intensive
computing in a widely distributed environment."  This module supplies
the communication substrate for that study: instead of the default
single shared switch channel, nodes exchange their communication
bursts over a **point-to-point fabric** with a configurable topology
pattern and per-link parameters:

* ``ring``   — each node sends its burst to its successor;
* ``all``    — the burst is split evenly across all peers
  (all-to-all exchange), transfers proceeding in parallel;
* ``master`` — workers send to node 0; node 0 broadcasts to workers.

Latency/bandwidth defaults distinguish a ``cluster`` (LAN) from a
``wan`` (wide-area) deployment; the extension experiment compares
makespans across fabrics for a communication-intensive application.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.errors import ModelError
from repro.model.executor import MachineConfig
from repro.sim import Channel, Engine
from repro.units import KiB, MB

__all__ = [
    "FabricConfig",
    "PointToPointFabric",
    "distributed_machine",
    "CLUSTER_LINK",
    "WAN_LINK",
]

#: LAN point-to-point link: gigabit-class, 50 µs one way.
CLUSTER_LINK = (100.0 * MB, 50e-6)
#: Wide-area link: 10 MB/s, 20 ms one way.
WAN_LINK = (10.0 * MB, 20e-3)

_PATTERNS = ("ring", "all", "master")


@dataclass(frozen=True)
class FabricConfig:
    """Topology pattern and per-link parameters."""

    pattern: str = "ring"
    link_bandwidth: float = CLUSTER_LINK[0]
    link_latency: float = CLUSTER_LINK[1]
    chunk: int = 256 * KiB

    def __post_init__(self) -> None:
        if self.pattern not in _PATTERNS:
            raise ModelError(
                f"unknown pattern {self.pattern!r}; choices: {_PATTERNS}"
            )
        if self.link_bandwidth <= 0:
            raise ModelError("link_bandwidth must be positive")
        if self.link_latency < 0:
            raise ModelError("link_latency must be >= 0")
        if self.chunk < 1:
            raise ModelError("chunk must be >= 1 byte")


class PointToPointFabric:
    """Dedicated directed links between every ordered node pair,
    created lazily (only pairs that communicate get a channel)."""

    def __init__(self, engine: Engine, nnodes: int, config: FabricConfig) -> None:
        if nnodes < 1:
            raise ModelError(f"nnodes must be >= 1, got {nnodes}")
        self.engine = engine
        self.nnodes = nnodes
        self.config = config
        self._links: Dict[Tuple[int, int], Channel] = {}

    def link(self, src: int, dst: int) -> Channel:
        """The directed channel src → dst (lazily constructed)."""
        if not (0 <= src < self.nnodes and 0 <= dst < self.nnodes):
            raise ModelError(f"link ({src}, {dst}) outside fabric of {self.nnodes}")
        if src == dst:
            raise ModelError("no self-links in the fabric")
        key = (src, dst)
        channel = self._links.get(key)
        if channel is None:
            channel = Channel(
                self.engine,
                self.config.link_bandwidth,
                self.config.link_latency,
                name=f"link{src}->{dst}",
            )
            self._links[key] = channel
        return channel

    @property
    def links_created(self) -> int:
        return len(self._links)

    # -- transmission --------------------------------------------------------

    def _send_over(self, channel: Channel, nbytes: int):
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.config.chunk, remaining)
            yield from channel.send(chunk)
            remaining -= chunk

    def transmit(self, node_index: int, nbytes: int):
        """Generator: perform one node's communication burst of
        ``nbytes`` according to the fabric pattern."""
        if self.nnodes == 1:
            # Nothing to talk to; the burst degenerates to local copy
            # time at link bandwidth (loopback).
            yield self.engine.timeout(nbytes / self.config.link_bandwidth)
            return
        pattern = self.config.pattern
        if pattern == "ring":
            dst = (node_index + 1) % self.nnodes
            yield from self._send_over(self.link(node_index, dst), nbytes)
            return
        if pattern == "all":
            peers = [i for i in range(self.nnodes) if i != node_index]
            share = max(1, nbytes // len(peers))
            procs = [
                self.engine.process(
                    self._send_over(self.link(node_index, dst), share),
                    name=f"xfer{node_index}->{dst}",
                )
                for dst in peers
            ]
            yield self.engine.all_of(procs)
            return
        # master/worker
        if node_index == 0:
            # Broadcast: send the full burst to every worker in parallel.
            procs = [
                self.engine.process(
                    self._send_over(self.link(0, dst), nbytes),
                    name=f"bcast->{dst}",
                )
                for dst in range(1, self.nnodes)
            ]
            yield self.engine.all_of(procs)
        else:
            yield from self._send_over(self.link(node_index, 0), nbytes)


def distributed_machine(
    base: MachineConfig = None,
    pattern: str = "ring",
    link: Tuple[float, float] = CLUSTER_LINK,
    chunk: int = 256 * KiB,
) -> MachineConfig:
    """A :class:`MachineConfig` whose communication runs on a
    point-to-point fabric.

    >>> machine = distributed_machine(pattern="all", link=WAN_LINK)
    >>> ApplicationExecutor(app, machine).run()
    """
    config = FabricConfig(
        pattern=pattern, link_bandwidth=link[0], link_latency=link[1], chunk=chunk
    )

    def factory(engine: Engine, nnodes: int, _machine: MachineConfig):
        return PointToPointFabric(engine, nnodes, config)

    base = base if base is not None else MachineConfig()
    return replace(base, fabric_factory=factory)

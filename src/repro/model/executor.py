"""Machine executor: runs a modeled application on simulated hardware.

Each program becomes a simulation process stepping through its phase
sequence; within a phase:

1. the **I/O burst** reads its demand (burst seconds × the baseline
   device rate) from the program's own region of a striped disk array,
   in large sequential chunks — raw device access, as out-of-core
   codes "explicitly handle data movement in and out of core memory
   avoiding the use of virtual memory" (paper §1);
2. the **computation burst** splits its work evenly over the machine's
   CPUs, contending with the other programs on a shared CPU pool;
3. the **communication burst** (if any) pushes its demand through a
   shared interconnect channel.

The result records per-program busy times and the application
makespan; Figures 2–5 are all derived from these runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ModelError
from repro.model.application import Application
from repro.model.program import Program
from repro.sim import Channel, Engine, Resource
from repro.storage import Disk, DiskGeometry, DiskParams, StripedArray
from repro.units import KiB, MB, MiB

__all__ = [
    "MachineConfig",
    "ProgramResult",
    "ExecutionResult",
    "ApplicationExecutor",
    "SharedChannelFabric",
]


class SharedChannelFabric:
    """The default interconnect: one shared channel (a cluster switch
    uplink) that every node's communication bursts serialize on."""

    def __init__(self, engine: Engine, machine: "MachineConfig") -> None:
        self.machine = machine
        self.channel = Channel(
            engine, machine.net_bandwidth, machine.net_latency, name="interconnect"
        )

    def transmit(self, node_index: int, nbytes: int):
        """Generator: push ``nbytes`` through the shared link in
        ``comm_chunk`` pieces."""
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.machine.comm_chunk, remaining)
            yield from self.channel.send(chunk)
            remaining -= chunk


@dataclass(frozen=True)
class MachineConfig:
    """The simulated machine the application runs on.

    ``io_rate`` converts model I/O-burst seconds into bytes: one
    second of I/O demand equals one second of a single baseline disk's
    streaming throughput.  More disks then genuinely shorten bursts;
    fewer leave them at model duration.
    """

    cpus: int = 1                    # CPUs per node (each program owns a node)
    disks: int = 1                   # disks per node (local striped scratch)
    stripe_unit: int = 128           # blocks (64 KiB at 512 B blocks)
    io_chunk: int = 4 * MiB          # bytes per device request
    io_rate: float = 50.0 * MB       # bytes/s of demand per burst-second
    net_bandwidth: float = 100.0 * MB
    net_latency: float = 50e-6
    comm_chunk: int = 256 * KiB
    disk_geometry: DiskGeometry = field(default_factory=DiskGeometry)
    disk_params: DiskParams = field(default_factory=DiskParams)
    # Optional fabric factory: (engine, nnodes, config) -> fabric with a
    # ``transmit(node_index, nbytes)`` coroutine.  None = one shared
    # interconnect channel (the default cluster switch).  See
    # repro.model.distributed for point-to-point topologies.
    fabric_factory: Optional[object] = None

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ModelError(f"cpus must be >= 1, got {self.cpus}")
        if self.disks < 1:
            raise ModelError(f"disks must be >= 1, got {self.disks}")
        if self.io_chunk < 1 or self.comm_chunk < 1:
            raise ModelError("chunk sizes must be >= 1 byte")
        if self.io_rate <= 0 or self.net_bandwidth <= 0:
            raise ModelError("rates must be positive")


@dataclass
class ProgramResult:
    """Measured outcome for one program."""

    name: str
    finish_time: float = 0.0
    cpu_busy: float = 0.0
    io_busy: float = 0.0
    comm_busy: float = 0.0
    phases_run: int = 0
    bytes_read: int = 0
    bytes_sent: int = 0

    @property
    def total_busy(self) -> float:
        return self.cpu_busy + self.io_busy + self.comm_busy

    @property
    def io_percentage(self) -> float:
        return 100.0 * self.io_busy / self.total_busy if self.total_busy else 0.0

    @property
    def cpu_percentage(self) -> float:
        return 100.0 * self.cpu_busy / self.total_busy if self.total_busy else 0.0


@dataclass
class ExecutionResult:
    """Outcome of one application run."""

    application: str
    machine: MachineConfig
    makespan: float
    programs: Dict[str, ProgramResult]

    @property
    def cpu_busy(self) -> float:
        """Aggregate CPU time across programs (Figure 2's app bar)."""
        return sum(p.cpu_busy for p in self.programs.values())

    @property
    def io_busy(self) -> float:
        return sum(p.io_busy for p in self.programs.values())

    @property
    def comm_busy(self) -> float:
        return sum(p.comm_busy for p in self.programs.values())

    @property
    def total_busy(self) -> float:
        return self.cpu_busy + self.io_busy + self.comm_busy

    @property
    def io_percentage(self) -> float:
        return 100.0 * self.io_busy / self.total_busy if self.total_busy else 0.0

    @property
    def cpu_percentage(self) -> float:
        return 100.0 * self.cpu_busy / self.total_busy if self.total_busy else 0.0


class ApplicationExecutor:
    """Runs one :class:`Application` on one :class:`MachineConfig`.

    Each call to :meth:`run` builds a fresh engine and hardware, so
    runs are independent and deterministic.
    """

    def __init__(self, application: Application, machine: Optional[MachineConfig] = None) -> None:
        self.application = application
        self.machine = machine or MachineConfig()

    def run(self) -> ExecutionResult:
        m = self.machine
        engine = Engine()
        nprogs = len(self.application.programs)
        if m.fabric_factory is not None:
            fabric = m.fabric_factory(engine, nprogs, m)
        else:
            fabric = SharedChannelFabric(engine, m)

        results = {p.name: ProgramResult(p.name) for p in self.application.programs}

        for idx, program in enumerate(self.application.programs):
            # One node per program: private CPUs and private local
            # striped scratch disks; only the interconnect is shared.
            # This matches the model's framing ("a program ... running
            # on a node") and the paper's speedup reasoning, where the
            # application time is dominated by the longest program.
            node_disks = [
                Disk(
                    engine,
                    geometry=m.disk_geometry,
                    params=m.disk_params,
                    name=f"node{idx}.disk{i}",
                )
                for i in range(m.disks)
            ]
            array = StripedArray(engine, node_disks, stripe_unit=m.stripe_unit)
            cpu_pool = Resource(engine, capacity=m.cpus, name=f"cpus:{program.name}")
            engine.process(
                self._run_program(
                    engine, program, results[program.name],
                    array, cpu_pool, fabric,
                    node_index=idx,
                    region_start=0,
                    region_blocks=array.total_blocks,
                ),
                name=f"program:{program.name}",
            )
        makespan = engine.run()
        return ExecutionResult(
            application=self.application.name,
            machine=m,
            makespan=makespan,
            programs=results,
        )

    # -- one program ------------------------------------------------------------

    def _run_program(
        self,
        engine: Engine,
        program: Program,
        result: ProgramResult,
        array: StripedArray,
        cpu_pool: Resource,
        fabric,
        node_index: int,
        region_start: int,
        region_blocks: int,
    ):
        m = self.machine
        block_size = array.block_size
        chunk_blocks = max(1, m.io_chunk // block_size)
        cursor = 0  # block offset within the region, wraps around

        for phase in program.phases():
            # ---- I/O burst (first, per the paper's phase structure) ----
            io_bytes = int(phase.io_time * m.io_rate)
            if io_bytes > 0:
                t0 = engine.now
                remaining_blocks = max(1, io_bytes // block_size)
                while remaining_blocks > 0:
                    run_len = min(chunk_blocks, remaining_blocks, region_blocks - cursor)
                    done = array.submit_range(region_start + cursor, run_len)
                    yield done
                    cursor += run_len
                    if cursor >= region_blocks:
                        cursor = 0
                    remaining_blocks -= run_len
                result.io_busy += engine.now - t0
                result.bytes_read += io_bytes

            # ---- computation burst, split across the CPU pool ----
            if phase.cpu_time > 0:
                t0 = engine.now
                share = phase.cpu_time / m.cpus

                def cpu_worker(work=share):
                    grant = cpu_pool.acquire()
                    yield grant
                    try:
                        yield engine.timeout(work)
                    finally:
                        cpu_pool.release(grant)

                workers = [
                    engine.process(cpu_worker(), name=f"{program.name}.cpu")
                    for _ in range(m.cpus)
                ]
                yield engine.all_of(workers)
                result.cpu_busy += engine.now - t0

            # ---- communication burst (through the fabric) ----
            comm_bytes = int(phase.comm_time * m.net_bandwidth)
            if comm_bytes > 0:
                t0 = engine.now
                yield from fabric.transmit(node_index, comm_bytes)
                result.comm_busy += engine.now - t0
                result.bytes_sent += comm_bytes

            result.phases_run += 1

        result.finish_time = engine.now

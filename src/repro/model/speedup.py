"""Scaling studies: speedup vs disk count (Figure 4) and vs CPU count
(Figure 5).

Speedup(k) = makespan(baseline machine) / makespan(machine with k of
the varied resource); everything else is held fixed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.errors import ModelError
from repro.model.application import Application
from repro.model.executor import ApplicationExecutor, ExecutionResult, MachineConfig

__all__ = ["disk_speedup_study", "cpu_speedup_study", "speedup_study"]

#: The x-axis the paper sweeps in both figures.
PAPER_COUNTS = (2, 4, 8, 16, 32)


def speedup_study(
    application: Application,
    resource: str,
    counts: Sequence[int] = PAPER_COUNTS,
    baseline: int = 1,
    machine: Optional[MachineConfig] = None,
) -> Dict[int, float]:
    """Generic sweep over ``resource`` ∈ {"disks", "cpus"}.

    Returns ``{count: speedup}`` including the baseline (speedup 1.0).
    """
    if resource not in ("disks", "cpus"):
        raise ModelError(f"resource must be 'disks' or 'cpus', got {resource!r}")
    if baseline < 1 or any(c < 1 for c in counts):
        raise ModelError("resource counts must be >= 1")
    base_machine = machine or MachineConfig()

    def run_with(count: int) -> ExecutionResult:
        cfg = replace(base_machine, **{resource: count})
        return ApplicationExecutor(application, cfg).run()

    base = run_with(baseline)
    if base.makespan <= 0:
        raise ModelError("baseline run has zero makespan")
    out: Dict[int, float] = {baseline: 1.0}
    for count in counts:
        if count == baseline:
            continue
        out[count] = base.makespan / run_with(count).makespan
    return out


def disk_speedup_study(
    application: Application,
    counts: Sequence[int] = PAPER_COUNTS,
    baseline: int = 1,
    machine: Optional[MachineConfig] = None,
) -> Dict[int, float]:
    """Figure 4: speedup as a function of the number of disks."""
    return speedup_study(application, "disks", counts, baseline, machine)


def cpu_speedup_study(
    application: Application,
    counts: Sequence[int] = PAPER_COUNTS,
    baseline: int = 1,
    machine: Optional[MachineConfig] = None,
) -> Dict[int, float]:
    """Figure 5: speedup as a function of the number of CPUs."""
    return speedup_study(application, "cpus", counts, baseline, machine)

"""A concrete phase: one I/O burst + computation burst + optional
communication burst, with an absolute duration (Eq. 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

__all__ = ["Phase"]


@dataclass(frozen=True)
class Phase:
    """One disjoint execution interval of a program.

    ``io_fraction`` (φ) and ``comm_fraction`` (γ) give the share of
    ``duration`` spent in the I/O and communication bursts; the
    remainder is the computation burst.
    """

    io_fraction: float
    comm_fraction: float
    duration: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.io_fraction <= 1.0):
            raise ModelError(f"I/O fraction out of [0,1]: {self.io_fraction}")
        if not (0.0 <= self.comm_fraction <= 1.0):
            raise ModelError(f"comm fraction out of [0,1]: {self.comm_fraction}")
        if self.io_fraction + self.comm_fraction > 1.0 + 1e-12:
            raise ModelError(
                f"φ + γ = {self.io_fraction + self.comm_fraction} exceeds 1"
            )
        if self.duration <= 0.0:
            raise ModelError(f"phase duration must be positive: {self.duration}")

    @property
    def cpu_fraction(self) -> float:
        """Computation share: ``1 - φ - γ``."""
        return max(0.0, 1.0 - self.io_fraction - self.comm_fraction)

    # Eq. 1 decomposition: T = T_CPU + T_COM + T_Disk.

    @property
    def io_time(self) -> float:
        """``T_Disk`` for this phase."""
        return self.io_fraction * self.duration

    @property
    def comm_time(self) -> float:
        """``T_COM`` for this phase."""
        return self.comm_fraction * self.duration

    @property
    def cpu_time(self) -> float:
        """``T_CPU`` for this phase."""
        return self.cpu_fraction * self.duration

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Phase(φ={self.io_fraction:g}, γ={self.comm_fraction:g}, "
            f"T={self.duration:g}s)"
        )

"""Application behavioral model (paper §2).

The model extends Rosti et al.'s parallel-program model with
communication requirements:

* a parallel **application** is a set of programs executing in a
  coordinated manner;
* a **program** is a vector of working sets
  ``Γ = [Γ1, ..., ΓM]``;
* a **working set** ``Γi = (φi, γi, ρi, τi)`` gives the I/O fraction,
  communication fraction, per-phase relative execution time, and the
  number of statistically identical phases;
* a **phase** is an I/O burst, then a computation burst, then possibly
  a communication burst (Eq. 1: ``Ti = Ti_CPU + Ti_COM + Ti_Disk``).

:mod:`repro.model.qcrd` instantiates the paper's QCRD application
(Eqs. 8–10); :mod:`repro.model.executor` runs a modeled application on
a simulated machine (CPUs + striped disks + network);
:mod:`repro.model.speedup` produces the Figure 4/5 scaling studies.
"""

from repro.model.phase import Phase
from repro.model.workingset import WorkingSet
from repro.model.program import Program
from repro.model.application import Application
from repro.model.qcrd import build_qcrd, QCRD_P1_TOTAL_TIME, QCRD_P2_TOTAL_TIME
from repro.model.synthetic import SyntheticAppParams, generate_application
from repro.model.executor import (
    ApplicationExecutor,
    ExecutionResult,
    MachineConfig,
    ProgramResult,
)
from repro.model.speedup import cpu_speedup_study, disk_speedup_study
from repro.model.analysis import (
    predict_application_time,
    predict_program_time,
    predict_speedup,
    speedup_bound,
)
from repro.model.inference import infer_working_sets, program_from_phases
from repro.model.distributed import (
    CLUSTER_LINK,
    FabricConfig,
    PointToPointFabric,
    WAN_LINK,
    distributed_machine,
)

__all__ = [
    "Phase",
    "WorkingSet",
    "Program",
    "Application",
    "build_qcrd",
    "QCRD_P1_TOTAL_TIME",
    "QCRD_P2_TOTAL_TIME",
    "SyntheticAppParams",
    "generate_application",
    "MachineConfig",
    "ApplicationExecutor",
    "ExecutionResult",
    "ProgramResult",
    "cpu_speedup_study",
    "disk_speedup_study",
    "predict_program_time",
    "predict_application_time",
    "predict_speedup",
    "speedup_bound",
    "infer_working_sets",
    "program_from_phases",
    "FabricConfig",
    "PointToPointFabric",
    "distributed_machine",
    "CLUSTER_LINK",
    "WAN_LINK",
]

"""Program: a vector of working sets Γ = [Γ1, ..., ΓM] (Eq. 6) plus an
absolute total execution time, giving Eqs. 2–5 analytically."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ModelError
from repro.model.phase import Phase
from repro.model.workingset import WorkingSet

__all__ = ["Program"]


class Program:
    """One program (task) of a parallel application.

    Parameters
    ----------
    name:
        Identifier used in reports.
    working_sets:
        The Γ vector.
    total_time:
        The program's total (single-resource, uncontended) execution
        time ``T`` in seconds — Eq. 2's left-hand side.
    normalize:
        The paper's published Γ vectors do not always satisfy
        ``Σ ρi·τi = 1`` exactly (QCRD's sum to 0.89 and 0.39).  With
        ``normalize=True`` (default) ρ values are rescaled so the
        expanded phases exactly tile ``total_time``; with False the
        vector is used as printed and ``total_time`` is interpreted as
        the reference time ρ is measured against.
    """

    def __init__(
        self,
        name: str,
        working_sets: Sequence[WorkingSet],
        total_time: float,
        normalize: bool = True,
    ) -> None:
        if not working_sets:
            raise ModelError(f"program {name!r} needs at least one working set")
        if total_time <= 0:
            raise ModelError(f"program {name!r}: total time must be positive")
        self.name = name
        self.working_sets: List[WorkingSet] = list(working_sets)
        self.total_time = float(total_time)
        self.normalize = normalize
        rel = sum(ws.relative_time for ws in self.working_sets)
        if rel <= 0:
            raise ModelError(f"program {name!r}: zero total relative time")
        self._scale = (1.0 / rel) if normalize else 1.0

    # -- expansion -------------------------------------------------------------

    @property
    def phase_count(self) -> int:
        """N — the number of phases (Σ τi)."""
        return sum(ws.tau for ws in self.working_sets)

    def phases(self) -> List[Phase]:
        """The concrete phase sequence with absolute durations."""
        out: List[Phase] = []
        for ws in self.working_sets:
            out.extend(ws.phases(self.total_time, self._scale))
        return out

    # -- Eqs. 2–5 ----------------------------------------------------------------

    @property
    def execution_time(self) -> float:
        """Eq. 2: T = Σ Ti."""
        return sum(p.duration for p in self.phases())

    @property
    def cpu_requirement(self) -> float:
        """Eq. 3: R_CPU = Σ Ti_CPU."""
        return sum(p.cpu_time for p in self.phases())

    @property
    def disk_requirement(self) -> float:
        """Eq. 4: R_Disk = Σ Ti_Disk."""
        return sum(p.io_time for p in self.phases())

    @property
    def comm_requirement(self) -> float:
        """Eq. 5: R_COM = Σ Ti_COM."""
        return sum(p.comm_time for p in self.phases())

    @property
    def io_percentage(self) -> float:
        """Share of execution time spent on disk I/O, in percent."""
        return 100.0 * self.disk_requirement / self.execution_time

    @property
    def cpu_percentage(self) -> float:
        return 100.0 * self.cpu_requirement / self.execution_time

    @property
    def comm_percentage(self) -> float:
        return 100.0 * self.comm_requirement / self.execution_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Program {self.name} M={len(self.working_sets)} "
            f"N={self.phase_count} T={self.total_time:g}s>"
        )

"""Working-set inference: from phase observations back to Γ vectors.

The paper defines a working set as "a sequence of consecutive phases
that are statistically identical".  Profiling a real application
yields a *phase* sequence (per-phase φ, γ and duration); this module
performs the inverse mapping — collapsing statistically-identical
consecutive phases into working sets — so measured behaviour can be
turned into a :class:`~repro.model.program.Program` and re-simulated.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ModelError
from repro.model.phase import Phase
from repro.model.program import Program
from repro.model.workingset import WorkingSet

__all__ = ["infer_working_sets", "program_from_phases"]


def _similar(a: Phase, b: Phase, tolerance: float) -> bool:
    """Statistically identical under a relative/absolute tolerance."""
    def close(x: float, y: float) -> bool:
        return abs(x - y) <= tolerance * max(abs(x), abs(y), 1e-12)

    return (
        close(a.io_fraction, b.io_fraction)
        and close(a.comm_fraction, b.comm_fraction)
        and close(a.duration, b.duration)
    )


def infer_working_sets(
    phases: Sequence[Phase],
    total_time: float,
    tolerance: float = 0.02,
) -> List[WorkingSet]:
    """Collapse consecutive similar phases into working sets.

    ``total_time`` is the reference the per-phase relative execution
    times (ρ) are measured against — normally the sum of the phase
    durations.  Within a collapsed group, parameters are averaged.
    """
    if not phases:
        raise ModelError("cannot infer working sets from zero phases")
    if total_time <= 0:
        raise ModelError(f"total_time must be positive, got {total_time}")
    if tolerance < 0:
        raise ModelError(f"tolerance must be >= 0, got {tolerance}")

    groups: List[List[Phase]] = [[phases[0]]]
    for phase in phases[1:]:
        if _similar(groups[-1][0], phase, tolerance):
            groups[-1].append(phase)
        else:
            groups.append([phase])

    sets: List[WorkingSet] = []
    for group in groups:
        n = len(group)
        phi = sum(p.io_fraction for p in group) / n
        gamma = sum(p.comm_fraction for p in group) / n
        duration = sum(p.duration for p in group) / n
        sets.append(
            WorkingSet(
                phi=min(1.0, phi),
                gamma=min(1.0 - min(1.0, phi), gamma),
                rho=duration / total_time,
                tau=n,
            )
        )
    return sets


def program_from_phases(
    name: str,
    phases: Sequence[Phase],
    tolerance: float = 0.02,
) -> Program:
    """Build a runnable :class:`Program` from observed phases.

    The program's ``total_time`` is the observed sum of durations, so
    the reconstructed program reproduces the observation exactly (up
    to within-group averaging).
    """
    total = sum(p.duration for p in phases) if phases else 0.0
    if total <= 0:
        raise ModelError("phases must have positive total duration")
    sets = infer_working_sets(phases, total_time=total, tolerance=tolerance)
    return Program(name, sets, total_time=total)

"""The QCRD application (paper §2.2, Eqs. 8–10).

QCRD solves the Schrödinger equation for atom–diatomic-molecule
scattering cross sections; its I/O is bursty and cyclic.  The paper
describes it as two independent programs:

* **Program 1** (Eq. 9): a CPU/I/O-alternating cycle repeated 12
  times — ``Γ1,i = (0.14, 0, 0.066, 1)`` for odd i and
  ``Γ1,i = (0.97, 0, 0.0082, 1)`` for even i, 24 working sets total.
* **Program 2** (Eq. 10): 13 identical I/O-heavy phases —
  ``Γ2 = [(0.92, 0, 0.03, 13)]``.

Absolute program durations are not printed in the paper; the defaults
below are chosen so the Figure 2 bars land at the published scale
(tens to ~170 s) while preserving the stated structure: Program 1
runs longer than Program 2 and is CPU-dominated; Program 2 is
I/O-dominated.
"""

from __future__ import annotations

from typing import List

from repro.model.application import Application
from repro.model.program import Program
from repro.model.workingset import WorkingSet

__all__ = ["build_qcrd", "QCRD_P1_TOTAL_TIME", "QCRD_P2_TOTAL_TIME"]

#: Default absolute total execution times (seconds); see module note.
QCRD_P1_TOTAL_TIME = 120.0
QCRD_P2_TOTAL_TIME = 55.0

#: Eq. 9 parameters.
P1_ODD = WorkingSet(phi=0.14, gamma=0.0, rho=0.066, tau=1)
P1_EVEN = WorkingSet(phi=0.97, gamma=0.0, rho=0.0082, tau=1)
P1_REPEATS = 12

#: Eq. 10 parameters.
P2 = WorkingSet(phi=0.92, gamma=0.0, rho=0.03, tau=13)


def _program1(total_time: float) -> Program:
    sets: List[WorkingSet] = []
    for _ in range(P1_REPEATS):
        sets.append(P1_ODD)
        sets.append(P1_EVEN)
    return Program("Program1", sets, total_time)


def _program2(total_time: float) -> Program:
    return Program("Program2", [P2], total_time)


def build_qcrd(
    p1_total_time: float = QCRD_P1_TOTAL_TIME,
    p2_total_time: float = QCRD_P2_TOTAL_TIME,
) -> Application:
    """Construct the QCRD application: ``Γ = [Γ1, Γ2]`` (Eq. 8)."""
    return Application("QCRD", [_program1(p1_total_time), _program2(p2_total_time)])

"""Working set Γi = (φi, γi, ρi, τi) — Eq. 7."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ModelError
from repro.model.phase import Phase

__all__ = ["WorkingSet"]


@dataclass(frozen=True)
class WorkingSet:
    """A run of ``tau`` statistically identical consecutive phases.

    Attributes (paper notation in parentheses):

    * ``phi`` (φ): I/O fraction of each phase;
    * ``gamma`` (γ): communication fraction of each phase;
    * ``rho`` (ρ): relative execution time of *each* phase — the ratio
      of one phase's duration to the program's total execution time;
    * ``tau`` (τ): number of phases in the working set.
    """

    phi: float
    gamma: float
    rho: float
    tau: int = 1

    def __post_init__(self) -> None:
        if not (0.0 <= self.phi <= 1.0):
            raise ModelError(f"φ out of [0,1]: {self.phi}")
        if not (0.0 <= self.gamma <= 1.0):
            raise ModelError(f"γ out of [0,1]: {self.gamma}")
        if self.phi + self.gamma > 1.0 + 1e-12:
            raise ModelError(f"φ + γ = {self.phi + self.gamma} exceeds 1")
        if self.rho <= 0.0:
            raise ModelError(f"ρ must be positive: {self.rho}")
        if not isinstance(self.tau, int) or self.tau < 1:
            raise ModelError(f"τ must be a positive integer: {self.tau!r}")

    @property
    def relative_time(self) -> float:
        """Total relative time contributed by this working set: ρ·τ."""
        return self.rho * self.tau

    def phases(self, program_total_time: float, scale: float = 1.0) -> List[Phase]:
        """Expand into ``tau`` concrete phases for a program whose total
        execution time is ``program_total_time`` (ρ optionally rescaled
        by ``scale`` to renormalize the program's Γ vector)."""
        if program_total_time <= 0:
            raise ModelError(f"program time must be positive: {program_total_time}")
        duration = self.rho * scale * program_total_time
        return [Phase(self.phi, self.gamma, duration) for _ in range(self.tau)]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Γ(φ={self.phi:g}, γ={self.gamma:g}, ρ={self.rho:g}, τ={self.tau})"

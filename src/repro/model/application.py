"""Application: a set of interdependent programs (Eq. 8)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ModelError
from repro.model.program import Program

__all__ = ["Application"]


class Application:
    """A parallel application — programs that execute concurrently in a
    coordinated manner.  Aggregate requirements are the sums of the
    member programs' requirements (how Figure 2's "Application" bars
    are computed)."""

    def __init__(self, name: str, programs: Sequence[Program]) -> None:
        if not programs:
            raise ModelError(f"application {name!r} needs at least one program")
        names = [p.name for p in programs]
        if len(set(names)) != len(names):
            raise ModelError(f"application {name!r}: duplicate program names")
        self.name = name
        self.programs: List[Program] = list(programs)

    def program(self, name: str) -> Program:
        for p in self.programs:
            if p.name == name:
                return p
        raise ModelError(f"no program {name!r} in application {self.name!r}")

    # -- aggregate requirements ---------------------------------------------------

    @property
    def execution_time(self) -> float:
        """Aggregate demand: Σ over programs of Eq. 2."""
        return sum(p.execution_time for p in self.programs)

    @property
    def cpu_requirement(self) -> float:
        return sum(p.cpu_requirement for p in self.programs)

    @property
    def disk_requirement(self) -> float:
        return sum(p.disk_requirement for p in self.programs)

    @property
    def comm_requirement(self) -> float:
        return sum(p.comm_requirement for p in self.programs)

    @property
    def io_percentage(self) -> float:
        return 100.0 * self.disk_requirement / self.execution_time

    @property
    def cpu_percentage(self) -> float:
        return 100.0 * self.cpu_requirement / self.execution_time

    @property
    def comm_percentage(self) -> float:
        return 100.0 * self.comm_requirement / self.execution_time

    def requirements_table(self) -> Dict[str, Dict[str, float]]:
        """Per-program and aggregate CPU/IO/COM requirement summary."""
        rows: Dict[str, Dict[str, float]] = {}
        for p in self.programs:
            rows[p.name] = {
                "cpu": p.cpu_requirement,
                "io": p.disk_requirement,
                "comm": p.comm_requirement,
                "total": p.execution_time,
            }
        rows[self.name] = {
            "cpu": self.cpu_requirement,
            "io": self.disk_requirement,
            "comm": self.comm_requirement,
            "total": self.execution_time,
        }
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Application {self.name} programs={len(self.programs)}>"

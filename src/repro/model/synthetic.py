"""Synthetic application generator.

The paper notes that "application developers can leverage the model
... to evaluate the performance of I/O- and communication-intensive
applications without spending a huge amount of time implementing the
applications", and defers other simulated applications to future work.
This generator produces random-but-reproducible applications in the
same model, for exploring the executor beyond QCRD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ModelError
from repro.model.application import Application
from repro.model.program import Program
from repro.model.workingset import WorkingSet
from repro.rng import SeededStreams

__all__ = ["SyntheticAppParams", "generate_application"]


@dataclass(frozen=True)
class SyntheticAppParams:
    """Ranges the generator draws from (uniformly)."""

    programs: Tuple[int, int] = (2, 4)
    working_sets: Tuple[int, int] = (2, 8)
    tau: Tuple[int, int] = (1, 6)
    io_fraction: Tuple[float, float] = (0.0, 0.9)
    comm_fraction: Tuple[float, float] = (0.0, 0.5)
    total_time: Tuple[float, float] = (20.0, 200.0)

    def __post_init__(self) -> None:
        for name in ("programs", "working_sets", "tau"):
            lo, hi = getattr(self, name)
            if lo < 1 or hi < lo:
                raise ModelError(f"bad range for {name}: ({lo}, {hi})")
        for name in ("io_fraction", "comm_fraction"):
            lo, hi = getattr(self, name)
            if not (0.0 <= lo <= hi <= 1.0):
                raise ModelError(f"bad range for {name}: ({lo}, {hi})")
        lo, hi = self.total_time
        if lo <= 0 or hi < lo:
            raise ModelError(f"bad range for total_time: ({lo}, {hi})")


def generate_application(
    name: str = "synthetic",
    params: SyntheticAppParams | None = None,
    seed: int = 0,
) -> Application:
    """Generate a reproducible random application.

    The same ``(params, seed)`` pair always yields the identical
    application; φ + γ never exceeds 1 (γ is scaled into the slack
    left by φ)."""
    p = params or SyntheticAppParams()
    rng = SeededStreams(seed).get("synthetic-app")

    def randint(lo: int, hi: int) -> int:
        return int(rng.integers(lo, hi + 1))

    def uniform(lo: float, hi: float) -> float:
        return float(rng.uniform(lo, hi))

    programs: List[Program] = []
    nprogs = randint(*p.programs)
    for pi in range(nprogs):
        nsets = randint(*p.working_sets)
        sets: List[WorkingSet] = []
        for _ in range(nsets):
            phi = uniform(*p.io_fraction)
            slack = 1.0 - phi
            gamma = min(uniform(*p.comm_fraction), slack)
            tau = randint(*p.tau)
            # ρ drawn freely; Program normalizes so phases tile the total.
            rho = uniform(0.01, 1.0)
            sets.append(WorkingSet(phi=phi, gamma=gamma, rho=rho, tau=tau))
        total = uniform(*p.total_time)
        programs.append(Program(f"{name}-p{pi}", sets, total))
    return Application(name, programs)

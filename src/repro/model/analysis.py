"""Closed-form predictions from the behavioral model.

The executor *simulates* an application on hardware; this module
*predicts* the same quantities analytically from Eqs. 2–5, assuming
per-node resources and perfect burst-level scaling:

    T(program; P CPUs, D disks) = R_CPU/P + R_Disk/D + R_COM
    T(application)              = max over programs   (concurrent nodes)

The predictions give the Amdahl-style envelopes behind Figures 4–5:
disk speedup is bounded by the longest program's non-I/O share, CPU
speedup by its non-CPU share.  Tests verify the simulation tracks the
prediction within a small tolerance, which is exactly the validation
the paper performs against the real QCRD ("the error rate is less
than 10%").
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ModelError
from repro.model.application import Application
from repro.model.program import Program

__all__ = [
    "predict_program_time",
    "predict_application_time",
    "predict_speedup",
    "speedup_bound",
]


def predict_program_time(program: Program, cpus: int = 1, disks: int = 1) -> float:
    """Predicted completion time of one program on its node."""
    if cpus < 1 or disks < 1:
        raise ModelError("resource counts must be >= 1")
    return (
        program.cpu_requirement / cpus
        + program.disk_requirement / disks
        + program.comm_requirement
    )


def predict_application_time(
    application: Application, cpus: int = 1, disks: int = 1
) -> float:
    """Predicted makespan: programs run concurrently on their own
    nodes, so the application finishes with its slowest program."""
    return max(
        predict_program_time(p, cpus, disks) for p in application.programs
    )


def predict_speedup(
    application: Application,
    resource: str,
    counts: Sequence[int],
    baseline: int = 1,
) -> Dict[int, float]:
    """Predicted speedup curve for ``resource`` ∈ {"cpus", "disks"}."""
    if resource not in ("cpus", "disks"):
        raise ModelError(f"resource must be 'cpus' or 'disks', got {resource!r}")

    def time_at(count: int) -> float:
        kwargs = {resource: count}
        return predict_application_time(application, **kwargs)

    base = time_at(baseline)
    out = {baseline: 1.0}
    for count in counts:
        out[count] = base / time_at(count)
    return out


def speedup_bound(application: Application, resource: str) -> float:
    """The Amdahl limit: speedup as the resource count → ∞.

    With infinite CPUs, each program still pays its I/O and
    communication; with infinite disks, its CPU and communication.
    The application bound is the baseline time over the largest
    residual across programs.
    """
    if resource not in ("cpus", "disks"):
        raise ModelError(f"resource must be 'cpus' or 'disks', got {resource!r}")
    base = predict_application_time(application)
    residuals = []
    for p in application.programs:
        if resource == "cpus":
            residuals.append(p.disk_requirement + p.comm_requirement)
        else:
            residuals.append(p.cpu_requirement + p.comm_requirement)
    limit = max(residuals)
    if limit <= 0:
        raise ModelError(
            f"unbounded speedup: no program has residual work for {resource!r}"
        )
    return base / limit

"""``FileStream`` — the CLR-style stream facade over the file system.

The paper's micro-benchmark times exactly this surface: *"The time
taken for performing the read operation includes: (1) creating an
instance of filestream class, (2) reading the data from the file, and
(3) closing the filestream."*  :meth:`FileStream.open` /
:meth:`FileStream.read` / :meth:`FileStream.close` reproduce those
three components (construction charges the file-system open path).

All methods that move data are generator coroutines::

    stream = yield from FileStream.open(fs, "/www/pic.jpg", FileMode.OPEN)
    n = yield from stream.read(4096)
    yield from stream.close()
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import FileSystemError, InvalidHandle
from repro.io.filesystem import FileHandle, FileSystem

__all__ = ["FileMode", "SeekOrigin", "FileStream"]


class FileMode(enum.Enum):
    """Subset of ``System.IO.FileMode`` the benchmarks use."""

    OPEN = "open"                    # must exist, read-only by default
    CREATE = "create"                # create or truncate, writable
    OPEN_OR_CREATE = "open_or_create"  # writable
    APPEND = "append"                # writable, position at end


class SeekOrigin(enum.Enum):
    """``System.IO.SeekOrigin``."""

    BEGIN = "begin"
    CURRENT = "current"
    END = "end"


class FileStream:
    """A positioned byte stream over one open file."""

    def __init__(self, fs: FileSystem, handle: FileHandle, mode: FileMode) -> None:
        self.fs = fs
        self.handle = handle
        self.mode = mode

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def open(cls, fs: FileSystem, path: str, mode: FileMode = FileMode.OPEN):
        """Generator: construct a stream (the paper's component (1))."""
        tracer = fs.engine.tracer
        started = fs.engine.now if tracer.enabled else 0.0
        if mode is FileMode.OPEN:
            handle = yield from fs.open(path, writable=False)
        elif mode is FileMode.CREATE:
            if fs.exists(path):
                yield from fs.delete(path)
            handle = yield from fs.open(path, writable=True, create=True)
        elif mode is FileMode.OPEN_OR_CREATE:
            handle = yield from fs.open(path, writable=True, create=True)
        elif mode is FileMode.APPEND:
            handle = yield from fs.open(path, writable=True, create=True)
            handle.position = handle.inode.size_bytes
        else:  # pragma: no cover - exhaustive over enum
            raise FileSystemError(f"unsupported mode {mode!r}")
        if tracer.enabled:
            tracer.complete("stream.open", "io", started,
                            path=path, mode=mode.value)
        return cls(fs, handle, mode)

    def close(self):
        """Generator: flush and release (the paper's component (3))."""
        yield from self.fs.close(self.handle)

    @property
    def is_open(self) -> bool:
        return self.handle.open

    # -- positioned I/O ----------------------------------------------------------

    @property
    def position(self) -> int:
        return self.handle.position

    @property
    def length(self) -> int:
        """Current file size in bytes."""
        return self.handle.inode.size_bytes

    def read(self, nbytes: int):
        """Generator: read up to ``nbytes`` at the stream position
        (the paper's component (2)).  Returns bytes read (0 at EOF)."""
        count = yield from self.fs.read(self.handle, nbytes)
        return count

    def write(self, nbytes: int):
        """Generator: write ``nbytes`` at the stream position."""
        count = yield from self.fs.write(self.handle, nbytes)
        return count

    def seek(self, offset: int, origin: SeekOrigin = SeekOrigin.BEGIN):
        """Generator: reposition the stream.  Returns the new position."""
        if origin is SeekOrigin.BEGIN:
            target = offset
        elif origin is SeekOrigin.CURRENT:
            target = self.handle.position + offset
        else:
            target = self.handle.inode.size_bytes + offset
        if target < 0:
            raise FileSystemError(f"seek before start of file ({target})")
        pos = yield from self.fs.seek(self.handle, target)
        return pos

    def read_to_end(self, chunk: int = 65536):
        """Generator: read from the current position to EOF in chunks.
        Returns total bytes read."""
        if chunk < 1:
            raise FileSystemError(f"chunk must be >= 1, got {chunk}")
        tracer = self.fs.engine.tracer
        started = self.fs.engine.now if tracer.enabled else 0.0
        total = 0
        while True:
            got = yield from self.read(chunk)
            if got == 0:
                if tracer.enabled:
                    tracer.complete("stream.read_to_end", "io", started,
                                    path=self.handle.inode.path, nbytes=total)
                return total
            total += got

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.is_open else "closed"
        return f"<FileStream {self.handle.inode.path!r} {state} pos={self.position}>"

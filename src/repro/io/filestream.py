"""``FileStream`` — the CLR-style stream facade over the file system.

The paper's micro-benchmark times exactly this surface: *"The time
taken for performing the read operation includes: (1) creating an
instance of filestream class, (2) reading the data from the file, and
(3) closing the filestream."*  :meth:`FileStream.open` /
:meth:`FileStream.read` / :meth:`FileStream.close` reproduce those
three components (construction charges the file-system open path).

All methods that move data are generator coroutines::

    stream = yield from FileStream.open(fs, "/www/pic.jpg", FileMode.OPEN)
    n = yield from stream.read(4096)
    yield from stream.close()

Resilience: pass a :class:`repro.faults.Retrier` to :meth:`open` and
every ``read``/``write`` runs under its policy.  Retried attempts use
the file system's *explicit-offset* path (which never advances the
handle position), so a retry — even one racing an abandoned timed-out
attempt — cannot double-advance the stream; the position moves exactly
once, after the attempt that succeeds.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import FileSystemError, InvalidHandle
from repro.io.filesystem import FileHandle, FileSystem

__all__ = ["FileMode", "SeekOrigin", "FileStream"]


class FileMode(enum.Enum):
    """Subset of ``System.IO.FileMode`` the benchmarks use."""

    OPEN = "open"                    # must exist, read-only by default
    CREATE = "create"                # create or truncate, writable
    OPEN_OR_CREATE = "open_or_create"  # writable
    APPEND = "append"                # writable, position at end


class SeekOrigin(enum.Enum):
    """``System.IO.SeekOrigin``."""

    BEGIN = "begin"
    CURRENT = "current"
    END = "end"


class FileStream:
    """A positioned byte stream over one open file."""

    def __init__(self, fs: FileSystem, handle: FileHandle, mode: FileMode,
                 retrier=None) -> None:
        self.fs = fs
        self.handle = handle
        self.mode = mode
        self.retrier = retrier

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def open(cls, fs: FileSystem, path: str, mode: FileMode = FileMode.OPEN,
             retrier=None):
        """Generator: construct a stream (the paper's component (1)).

        ``retrier`` (a :class:`repro.faults.Retrier`) makes the open
        itself — for the idempotent read-only mode — and all subsequent
        reads/writes retry transient faults under its policy.
        """
        tracer = fs.engine.tracer
        started = fs.engine.now if tracer.enabled else 0.0
        if mode is FileMode.OPEN:
            if retrier is not None:
                handle = yield from retrier.call(
                    lambda: fs.open(path, writable=False), op="stream.open")
            else:
                handle = yield from fs.open(path, writable=False)
        elif mode is FileMode.CREATE:
            if fs.exists(path):
                yield from fs.delete(path)
            handle = yield from fs.open(path, writable=True, create=True)
        elif mode is FileMode.OPEN_OR_CREATE:
            handle = yield from fs.open(path, writable=True, create=True)
        elif mode is FileMode.APPEND:
            handle = yield from fs.open(path, writable=True, create=True)
            handle.position = handle.inode.size_bytes
        else:  # pragma: no cover - exhaustive over enum
            raise FileSystemError(f"unsupported mode {mode!r}")
        if tracer.enabled:
            tracer.complete("stream.open", "io", started,
                            path=path, mode=mode.value)
        return cls(fs, handle, mode, retrier=retrier)

    def close(self):
        """Generator: flush and release (the paper's component (3))."""
        yield from self.fs.close(self.handle)

    @property
    def is_open(self) -> bool:
        return self.handle.open

    # -- positioned I/O ----------------------------------------------------------

    @property
    def position(self) -> int:
        return self.handle.position

    @property
    def length(self) -> int:
        """Current file size in bytes."""
        return self.handle.inode.size_bytes

    def read(self, nbytes: int):
        """Generator: read up to ``nbytes`` at the stream position
        (the paper's component (2)).  Returns bytes read (0 at EOF)."""
        if self.retrier is None:
            count = yield from self.fs.read(self.handle, nbytes)
            return count
        # Explicit offset keeps each attempt idempotent; advance the
        # position once, only after an attempt lands.
        pos = self.handle.position
        count = yield from self.retrier.call(
            lambda: self.fs.read(self.handle, nbytes, offset=pos),
            op="stream.read")
        self.handle.position = pos + count
        return count

    def write(self, nbytes: int):
        """Generator: write ``nbytes`` at the stream position."""
        if self.retrier is None:
            count = yield from self.fs.write(self.handle, nbytes)
            return count
        pos = self.handle.position
        count = yield from self.retrier.call(
            lambda: self.fs.write(self.handle, nbytes, offset=pos),
            op="stream.write")
        self.handle.position = pos + count
        return count

    def seek(self, offset: int, origin: SeekOrigin = SeekOrigin.BEGIN):
        """Generator: reposition the stream.  Returns the new position."""
        if origin is SeekOrigin.BEGIN:
            target = offset
        elif origin is SeekOrigin.CURRENT:
            target = self.handle.position + offset
        else:
            target = self.handle.inode.size_bytes + offset
        if target < 0:
            raise FileSystemError(f"seek before start of file ({target})")
        pos = yield from self.fs.seek(self.handle, target)
        return pos

    def read_to_end(self, chunk: int = 65536):
        """Generator: read from the current position to EOF in chunks.
        Returns total bytes read."""
        if chunk < 1:
            raise FileSystemError(f"chunk must be >= 1, got {chunk}")
        tracer = self.fs.engine.tracer
        started = self.fs.engine.now if tracer.enabled else 0.0
        total = 0
        while True:
            got = yield from self.read(chunk)
            if got == 0:
                if tracer.enabled:
                    tracer.complete("stream.read_to_end", "io", started,
                                    path=self.handle.inode.path, nbytes=total)
                return total
            total += got

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.is_open else "closed"
        return f"<FileStream {self.handle.inode.path!r} {state} pos={self.position}>"

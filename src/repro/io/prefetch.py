"""Prefetch policies.

The paper (§3.4) attributes its latency spikes to prefetching: *"At the
time when a read, write, or seek operation is performed, a prefetch
operation will be invoked accordingly.  In case where the respective
region is not present in the buffers, the corresponding pages are
fetched from the disk"*.  The :class:`Prefetcher` implements that hook:
every file-system access notifies it, and the active policy decides how
many pages ahead to schedule asynchronously.

Policies (compared by the ablation benchmark):

* :class:`NoPrefetch` — baseline, demand paging only.
* :class:`FixedAheadPrefetch` — constant read-ahead window.
* :class:`AdaptivePrefetch` — window doubles on a sequential streak
  and collapses on a random access (Linux-readahead-style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.io.buffercache import BufferCache
    from repro.io.filesystem import Inode

__all__ = [
    "PrefetchPolicy",
    "NoPrefetch",
    "FixedAheadPrefetch",
    "AdaptivePrefetch",
    "Prefetcher",
    "make_prefetch_policy",
]


class PrefetchPolicy:
    """Decides the read-ahead window after each access."""

    name = "abstract"

    def window_after(self, state: "_FileState", first_page: int, npages: int) -> int:
        """Pages to prefetch beyond the access's last page (>= 0)."""
        raise NotImplementedError  # pragma: no cover


class NoPrefetch(PrefetchPolicy):
    """Demand paging only."""

    name = "none"

    def window_after(self, state: "_FileState", first_page: int, npages: int) -> int:
        return 0


class FixedAheadPrefetch(PrefetchPolicy):
    """Always schedule a constant number of pages ahead."""

    name = "fixed"

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise StorageError(f"prefetch window must be >= 1, got {window}")
        self.window = window

    def window_after(self, state: "_FileState", first_page: int, npages: int) -> int:
        return self.window


class AdaptivePrefetch(PrefetchPolicy):
    """Grow the window on sequential streaks, reset on random jumps."""

    name = "adaptive"

    def __init__(self, initial: int = 2, maximum: int = 32) -> None:
        if initial < 1 or maximum < initial:
            raise StorageError(
                f"need 1 <= initial <= maximum, got {initial}, {maximum}"
            )
        self.initial = initial
        self.maximum = maximum

    def window_after(self, state: "_FileState", first_page: int, npages: int) -> int:
        if state.last_end is not None and first_page == state.last_end:
            state.window = min(self.maximum, max(self.initial, state.window * 2))
        else:
            state.window = self.initial
        return state.window


@dataclass
class _FileState:
    """Per-file access-pattern memory."""

    last_end: Optional[int] = None  # one past the last page accessed
    window: int = 0


class Prefetcher:
    """Glue between the file system and the cache: receives access
    notifications, asks the policy for a window, and schedules
    asynchronous fetches."""

    def __init__(self, cache: "BufferCache", policy: Optional[PrefetchPolicy] = None) -> None:
        self.cache = cache
        self.policy = policy if policy is not None else FixedAheadPrefetch()
        self._states: Dict[int, _FileState] = {}
        self.pages_scheduled = 0
        cache.engine.metrics.gauge(
            "prefetch.pages_scheduled", lambda: self.pages_scheduled,
            policy=self.policy.name,
        )

    def _state(self, inode: "Inode") -> _FileState:
        st = self._states.get(inode.file_id)
        if st is None:
            st = _FileState()
            self._states[inode.file_id] = st
        return st

    def on_access(self, inode: "Inode", first_page: int, npages: int) -> int:
        """Called after a read/write touches pages [first, first+n).
        Returns the number of pages scheduled for prefetch."""
        state = self._state(inode)
        window = self.policy.window_after(state, first_page, npages)
        end = first_page + npages
        state.last_end = end
        if window <= 0:
            return 0
        scheduled = self.cache.prefetch(inode, end, window)
        self.pages_scheduled += scheduled
        return scheduled

    def on_seek(self, inode: "Inode", target_page: int) -> int:
        """Called on an explicit seek: warm the cache at the target
        without charging the seeker (asynchronous)."""
        state = self._state(inode)
        window = self.policy.window_after(state, target_page, 0)
        state.last_end = target_page
        if window <= 0:
            return 0
        scheduled = self.cache.prefetch(inode, target_page, window)
        self.pages_scheduled += scheduled
        return scheduled

    def forget(self, inode: "Inode") -> None:
        """Drop pattern memory (file closed/deleted)."""
        self._states.pop(inode.file_id, None)


def make_prefetch_policy(name: str, **kwargs) -> PrefetchPolicy:
    """Factory: ``"none"``, ``"fixed"`` (window=), ``"adaptive"``
    (initial=, maximum=)."""
    policies = {
        "none": NoPrefetch,
        "fixed": FixedAheadPrefetch,
        "adaptive": AdaptivePrefetch,
    }
    try:
        cls = policies[name.lower()]
    except KeyError:
        raise StorageError(
            f"unknown prefetch policy {name!r}; choices: {sorted(policies)}"
        ) from None
    return cls(**kwargs)

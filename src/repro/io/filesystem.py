"""Simulated file system: namespace, extent allocation, and the
syscall-level operations the benchmarks time.

Files are extent-mapped onto the block device; all data motion goes
through the :class:`~repro.io.buffercache.BufferCache`.  Operation
costs follow the structure the paper measures:

========  =======================================================
open      software overhead + *asynchronous* prefetch of the first
          page or two ("a page or two is placed in I/O buffers")
close     larger software overhead + issue write-back of the
          file's dirty pages → always slower than open
read      syscall overhead + cache access (misses block on disk)
write     syscall overhead + dirty-page creation (read-modify-
          write fetch for partial pages)
seek      tiny bookkeeping cost + asynchronous prefetch at target
========  =======================================================

All operations that can touch the device are generator coroutines
(``yield from fs.read(...)`` inside a simulation process).
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    FileExists,
    FileNotFound,
    FileSystemError,
    InvalidHandle,
    OutOfSpace,
)
from repro.io.buffercache import BufferCache, CacheParams
from repro.io.prefetch import Prefetcher, PrefetchPolicy
from repro.sim import Counter, Engine, Tally

__all__ = ["FsParams", "Inode", "FileHandle", "FileSystem"]

# Fallback allocators for Inode/FileHandle objects built outside a
# FileSystem (tests, ad-hoc tools).  The file system allocates from
# per-instance counters so two runs in the same interpreter produce
# identical ids — part of the determinism contract.
_file_ids = itertools.count(1)
_handle_ids = itertools.count(1)


@dataclass(frozen=True)
class FsParams:
    """Software-path costs (seconds) and layout knobs.

    Defaults are tuned so the *relative* magnitudes match the paper's
    Tables 1–4 on the SSCLI: seek ≪ open < cached read < close.
    """

    open_overhead: float = 0.6e-6
    close_overhead: float = 5.0e-6
    read_overhead: float = 0.4e-6
    write_overhead: float = 0.5e-6
    seek_overhead: float = 8.0e-8
    create_overhead: float = 2.0e-6
    delete_overhead: float = 2.0e-6
    open_prefetch_pages: int = 2
    allocation_unit_pages: int = 256  # extent growth granularity (1 MiB @4 KiB)

    def __post_init__(self) -> None:
        for name in (
            "open_overhead",
            "close_overhead",
            "read_overhead",
            "write_overhead",
            "seek_overhead",
            "create_overhead",
            "delete_overhead",
        ):
            if getattr(self, name) < 0:
                raise FileSystemError(f"{name} must be >= 0")
        if self.open_prefetch_pages < 0:
            raise FileSystemError("open_prefetch_pages must be >= 0")
        if self.allocation_unit_pages < 1:
            raise FileSystemError("allocation_unit_pages must be >= 1")


class Inode:
    """On-disk file metadata: size and extent map.

    The extent map is a list of ``(start_lba, nblocks)`` runs; a
    cumulative-offset index makes file-block → LBA translation
    O(log extents).
    """

    def __init__(self, path: str, block_size: int,
                 file_id: Optional[int] = None) -> None:
        self.file_id = next(_file_ids) if file_id is None else file_id
        self.path = path
        self.block_size = block_size
        self.size_bytes = 0
        self.extents: List[Tuple[int, int]] = []
        self._cum: List[int] = []  # cumulative block counts before each extent

    @property
    def allocated_blocks(self) -> int:
        return (self._cum[-1] + self.extents[-1][1]) if self.extents else 0

    def add_extent(self, start_lba: int, nblocks: int) -> None:
        """Append an extent (merging with the previous when contiguous)."""
        if nblocks < 1:
            raise FileSystemError(f"extent must be >= 1 block, got {nblocks}")
        if self.extents and self.extents[-1][0] + self.extents[-1][1] == start_lba:
            prev_start, prev_len = self.extents[-1]
            self.extents[-1] = (prev_start, prev_len + nblocks)
        else:
            self._cum.append(self.allocated_blocks)
            self.extents.append((start_lba, nblocks))

    def page_count(self, page_size: int) -> int:
        """Pages needed to hold the current file size."""
        return -(-self.size_bytes // page_size) if self.size_bytes else 0

    def physical_runs(self, file_block: int, nblocks: int) -> Iterator[Tuple[int, int]]:
        """Translate a file-relative block range into device LBA runs."""
        if file_block < 0 or nblocks < 1:
            raise FileSystemError(
                f"bad file-block range ({file_block}, {nblocks})"
            )
        if file_block + nblocks > self.allocated_blocks:
            # Clamp to allocation: the tail of a final partial page may
            # extend past the last allocated block only by rounding.
            nblocks = self.allocated_blocks - file_block
            if nblocks < 1:
                return
        idx = bisect.bisect_right(self._cum, file_block) - 1
        remaining = nblocks
        block = file_block
        while remaining > 0:
            ext_start, ext_len = self.extents[idx]
            offset_in_ext = block - self._cum[idx]
            run = min(remaining, ext_len - offset_in_ext)
            yield ext_start + offset_in_ext, run
            block += run
            remaining -= run
            idx += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Inode {self.path!r} id={self.file_id} size={self.size_bytes} "
            f"extents={len(self.extents)}>"
        )


class FileHandle:
    """An open-file descriptor with a stream position."""

    def __init__(self, fs: "FileSystem", inode: Inode, writable: bool) -> None:
        self.handle_id = next(getattr(fs, "_handle_ids", None) or _handle_ids)
        self.fs = fs
        self.inode = inode
        self.writable = writable
        self.position = 0
        self.open = True

    def _check(self) -> None:
        if not self.open:
            raise InvalidHandle(f"handle {self.handle_id} is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else "closed"
        return f"<FileHandle {self.handle_id} {self.inode.path!r} {state} pos={self.position}>"


class FileSystem:
    """The simulated volume: a namespace over one block device.

    Parameters
    ----------
    engine, device:
        Simulation engine and the backing :class:`Disk` /
        :class:`StripedArray`.
    params, cache_params:
        Cost/layout knobs; see :class:`FsParams`, :class:`CacheParams`.
    prefetch_policy:
        A :class:`~repro.io.prefetch.PrefetchPolicy`; default fixed
        read-ahead of 8 pages.
    """

    def __init__(
        self,
        engine: Engine,
        device,
        params: Optional[FsParams] = None,
        cache_params: Optional[CacheParams] = None,
        prefetch_policy: Optional[PrefetchPolicy] = None,
        probe=None,
    ) -> None:
        from repro.sim.probe import NULL_PROBE

        self.engine = engine
        self.device = device
        self.params = params or FsParams()
        self.probe = probe if probe is not None else NULL_PROBE
        self.cache = BufferCache(engine, device, cache_params, probe=self.probe)
        self.prefetcher = Prefetcher(self.cache, prefetch_policy)
        self._files: Dict[str, Inode] = {}
        self._by_id: Dict[int, Inode] = {}
        # Per-instance id allocators: two identically-seeded runs hand
        # out identical file/handle ids (the determinism contract).
        self._file_ids = itertools.count(1)
        self._handle_ids = itertools.count(1)
        self.cache.register_inode_resolver(self._by_id.get)

        # Allocator state: bump pointer + first-fit free list.
        self._next_free_lba = 0
        self._free_extents: List[Tuple[int, int]] = []

        # Per-op latency stats (seconds), for the benchmark harness;
        # registered so engine.metrics.snapshot() covers the fs layer.
        self.op_times: Dict[str, Tally] = {
            op: Tally(f"fs.{op}") for op in ("open", "close", "read", "write", "seek")
        }
        self.ops = Counter("fs.ops")
        for tally in self.op_times.values():
            engine.metrics.register(tally.name, tally)
        engine.metrics.register(self.ops.name, self.ops)
        engine.metrics.gauge("fs.files", lambda: len(self._files))

    # -- namespace (non-blocking helpers) ------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def stat(self, path: str) -> Inode:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def size_of(self, path: str) -> int:
        return self.stat(path).size_bytes

    def list_files(self) -> List[str]:
        return sorted(self._files)

    @property
    def page_size(self) -> int:
        return self.cache.params.page_size

    # -- allocator ------------------------------------------------------------

    def _allocate(self, nblocks: int) -> List[Tuple[int, int]]:
        """Reserve ``nblocks`` device blocks; first-fit from freed
        extents, then bump allocation."""
        got: List[Tuple[int, int]] = []
        remaining = nblocks
        # First-fit over the free list.
        i = 0
        while remaining > 0 and i < len(self._free_extents):
            start, length = self._free_extents[i]
            take = min(length, remaining)
            got.append((start, take))
            remaining -= take
            if take == length:
                self._free_extents.pop(i)
            else:
                self._free_extents[i] = (start + take, length - take)
                i += 1
        if remaining > 0:
            if self._next_free_lba + remaining > self.device.total_blocks:
                # Roll back the free-list takes before failing.
                self._free_extents.extend(got)
                raise OutOfSpace(
                    f"cannot allocate {nblocks} blocks "
                    f"({self.device.total_blocks - self._next_free_lba} free)"
                )
            got.append((self._next_free_lba, remaining))
            self._next_free_lba += remaining
        return got

    def _grow_to(self, inode: Inode, new_size: int) -> None:
        """Extend allocation so ``new_size`` bytes fit, in whole
        allocation units."""
        page = self.page_size
        unit_blocks = self.params.allocation_unit_pages * (page // self.device.block_size)
        needed_blocks = -(-new_size // self.device.block_size)
        if needed_blocks <= inode.allocated_blocks:
            return
        grow = needed_blocks - inode.allocated_blocks
        grow = -(-grow // unit_blocks) * unit_blocks  # round up to units
        for start, length in self._allocate(grow):
            inode.add_extent(start, length)

    # -- operations (generator coroutines) ------------------------------------

    def create(self, path: str, size_bytes: int = 0, exist_ok: bool = False):
        """Generator: create a file, preallocating ``size_bytes``."""
        if size_bytes < 0:
            raise FileSystemError(f"negative size: {size_bytes}")
        if path in self._files:
            if not exist_ok:
                raise FileExists(path)
            inode = self._files[path]
        else:
            inode = Inode(path, self.device.block_size,
                          file_id=next(self._file_ids))
            self._files[path] = inode
            self._by_id[inode.file_id] = inode
        if size_bytes > inode.size_bytes:
            self._grow_to(inode, size_bytes)
            inode.size_bytes = size_bytes
        yield self.engine.timeout(self.params.create_overhead)
        return inode

    def delete(self, path: str):
        """Generator: remove a file, returning its extents to the free list."""
        inode = self.stat(path)
        self.cache.invalidate_file(inode)
        self.prefetcher.forget(inode)
        self._free_extents.extend(inode.extents)
        del self._files[path]
        del self._by_id[inode.file_id]
        yield self.engine.timeout(self.params.delete_overhead)

    def open(self, path: str, writable: bool = False, create: bool = False):
        """Generator: open a file, returning a :class:`FileHandle`.

        Charges the open overhead and *asynchronously* prefetches the
        first ``open_prefetch_pages`` pages (the paper's "page or two").
        """
        start = self.engine.now
        if path not in self._files:
            if not create:
                raise FileNotFound(path)
            yield from self.create(path)
        inode = self._files[path]
        handle = FileHandle(self, inode, writable=writable)
        if self.params.open_prefetch_pages > 0 and inode.size_bytes > 0:
            self.cache.prefetch(inode, 0, self.params.open_prefetch_pages)
        yield self.engine.timeout(self.params.open_overhead)
        self._account("open", start)
        return handle

    def close(self, handle: FileHandle):
        """Generator: close a handle; issues write-back of the file's
        dirty pages (asynchronous — only the issue cost is charged,
        which still makes close reliably slower than open)."""
        handle._check()
        start = self.engine.now
        handle.open = False
        yield from self.cache.flush_file(handle.inode)
        yield self.engine.timeout(self.params.close_overhead)
        self._account("close", start)

    def read(self, handle: FileHandle, nbytes: int, offset: Optional[int] = None):
        """Generator: read ``nbytes`` at ``offset`` (or the stream
        position).  Returns the byte count actually read (clipped at
        EOF).  Misses block on the device; a prefetch for the following
        region is scheduled afterwards."""
        handle._check()
        if nbytes < 0:
            raise FileSystemError(f"negative read length: {nbytes}")
        start = self.engine.now
        inode = handle.inode
        pos = handle.position if offset is None else offset
        if pos < 0:
            raise FileSystemError(f"negative offset: {pos}")
        avail = max(0, inode.size_bytes - pos)
        count = min(nbytes, avail)
        if count > 0:
            page = self.page_size
            first_page = pos // page
            last_page = (pos + count - 1) // page
            npages = last_page - first_page + 1
            yield from self.cache.access(inode, first_page, npages)
            self.prefetcher.on_access(inode, first_page, npages)
        yield self.engine.timeout(self.params.read_overhead)
        if offset is None:
            handle.position = pos + count
        self._account("read", start)
        return count

    def write(self, handle: FileHandle, nbytes: int, offset: Optional[int] = None):
        """Generator: write ``nbytes`` at ``offset`` (or the stream
        position), extending the file as needed.  Returns the byte
        count written."""
        handle._check()
        if not handle.writable:
            raise FileSystemError(f"handle for {handle.inode.path!r} is read-only")
        if nbytes < 0:
            raise FileSystemError(f"negative write length: {nbytes}")
        start = self.engine.now
        inode = handle.inode
        pos = handle.position if offset is None else offset
        if pos < 0:
            raise FileSystemError(f"negative offset: {pos}")
        if nbytes > 0:
            new_size = max(inode.size_bytes, pos + nbytes)
            self._grow_to(inode, new_size)
            page = self.page_size
            first_page = pos // page
            last_page = (pos + nbytes - 1) // page
            npages = last_page - first_page + 1
            partial_head = pos % page != 0
            partial_tail = (pos + nbytes) % page != 0
            yield from self.cache.write_pages(
                inode, first_page, npages, partial_head, partial_tail
            )
            inode.size_bytes = new_size
            self.prefetcher.on_access(inode, first_page, npages)
        yield self.engine.timeout(self.params.write_overhead)
        if offset is None:
            handle.position = pos + nbytes
        self._account("write", start)
        return nbytes

    def seek(self, handle: FileHandle, offset: int):
        """Generator: move the stream position.  Pure bookkeeping plus
        an asynchronous prefetch at the target region — matching the
        paper's near-zero seek times with occasional downstream
        fault costs."""
        handle._check()
        if offset < 0:
            raise FileSystemError(f"negative seek target: {offset}")
        start = self.engine.now
        handle.position = offset
        if handle.inode.size_bytes > 0:
            self.prefetcher.on_seek(handle.inode, offset // self.page_size)
        yield self.engine.timeout(self.params.seek_overhead)
        self._account("seek", start)
        return offset

    def sync(self, handle: FileHandle):
        """Generator: synchronous flush of the file's dirty pages
        (waits for the device).  Returns pages written."""
        handle._check()
        result = yield from self.cache.sync_file(handle.inode)
        return result

    def rename(self, old_path: str, new_path: str):
        """Generator: move a file within the namespace (pure metadata;
        extents and cached pages are keyed by file id and unaffected)."""
        if new_path in self._files:
            raise FileExists(new_path)
        inode = self.stat(old_path)
        del self._files[old_path]
        inode.path = new_path
        self._files[new_path] = inode
        yield self.engine.timeout(self.params.create_overhead)
        return inode

    def truncate(self, handle: FileHandle, new_size: int):
        """Generator: set the file size.  Shrinking drops cached pages
        beyond the new EOF (allocation is kept, as real file systems
        commonly defer); growing allocates and zero-extends."""
        handle._check()
        if not handle.writable:
            raise FileSystemError(f"handle for {handle.inode.path!r} is read-only")
        if new_size < 0:
            raise FileSystemError(f"negative size: {new_size}")
        inode = handle.inode
        if new_size > inode.size_bytes:
            self._grow_to(inode, new_size)
        else:
            page = self.page_size
            keep_pages = -(-new_size // page) if new_size else 0
            for page_idx in self.cache.resident_pages_of(inode):
                if page_idx >= keep_pages:
                    self.cache.drop_page(inode, page_idx)
        inode.size_bytes = new_size
        if handle.position > new_size:
            handle.position = new_size
        yield self.engine.timeout(self.params.create_overhead)
        return new_size

    def glob(self, prefix: str) -> List[str]:
        """Paths starting with ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    # -- consistency -------------------------------------------------------------

    def check(self) -> None:
        """Verify volume invariants; raises :class:`FileSystemError`
        with a description of the first violation found.

        Checked invariants:

        * no two live extents (file-owned or free-listed) overlap;
        * every extent lies within the device;
        * every file's allocation covers its size;
        * no block beyond the bump pointer is referenced;
        * the cache holds pages only for live files, within their size.
        """
        claimed: List[Tuple[int, int, str]] = []
        for inode in self._files.values():
            needed = -(-inode.size_bytes // self.device.block_size)
            if inode.allocated_blocks < needed:
                raise FileSystemError(
                    f"{inode.path}: size {inode.size_bytes} needs {needed} "
                    f"blocks but only {inode.allocated_blocks} allocated"
                )
            for start, length in inode.extents:
                claimed.append((start, length, inode.path))
        for start, length in self._free_extents:
            claimed.append((start, length, "<free>"))
        for start, length, owner in claimed:
            if start < 0 or length < 1:
                raise FileSystemError(f"{owner}: malformed extent ({start},{length})")
            if start + length > self.device.total_blocks:
                raise FileSystemError(f"{owner}: extent beyond device end")
            if start + length > self._next_free_lba:
                raise FileSystemError(f"{owner}: extent beyond the bump pointer")
        claimed.sort()
        for (s1, l1, o1), (s2, l2, o2) in zip(claimed, claimed[1:]):
            if s1 + l1 > s2:
                raise FileSystemError(
                    f"extent overlap: {o1}({s1},{l1}) and {o2}({s2},{l2})"
                )
        page = self.page_size
        for (file_id, page_idx) in list(self.cache._pages):
            inode = self._by_id.get(file_id)
            if inode is None:
                raise FileSystemError(f"cache holds page for dead file {file_id}")
            if page_idx >= max(1, inode.page_count(page)):
                raise FileSystemError(
                    f"{inode.path}: cached page {page_idx} beyond EOF"
                )

    # -- accounting ------------------------------------------------------------

    def _account(self, op: str, start: float) -> None:
        elapsed = self.engine.now - start
        self.op_times[op].record(elapsed)
        self.ops.add()
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.complete(f"fs.{op}", "io", start)
        if self.probe.enabled:
            self.probe.record("fs", op, ms=round(elapsed * 1e3, 6))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FileSystem files={len(self._files)} next_lba={self._next_free_lba}>"

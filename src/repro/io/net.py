"""Simulated TCP: listener, sockets, and network streams.

The micro-benchmark's server "starts listening on port 5050 using
TcpListener class ... accepts the connection by using AcceptSocket(),
which returns a socket descriptor"; this module provides that surface
on the event engine.

Model: each established connection gets a dedicated duplex pair of
bandwidth/latency channels (a switched LAN — flows do not contend on
the wire, they contend at the endpoints).  Data is tracked as byte
counts, chunked by the sender's writes.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from repro.errors import ConnectionReset, SimulationError
from repro.sanitizer import runtime as _sanitizer
from repro.sanitizer.race import shared
from repro.sim import Channel, Engine, Store
from repro.units import MB

__all__ = ["Network", "TcpListener", "Socket", "NetworkStream"]

_EOF = object()
_RESET = object()
_socket_ids = itertools.count(1)


class Network:
    """Address registry + link parameters for one simulated LAN.

    Defaults model 100 Mb/s switched Ethernet with 100 µs one-way
    latency — the paper-era lab network.

    ``injector`` (a :class:`repro.faults.FaultInjector`) arms
    ``net.drop`` fault rules: each socket send consults it, and a
    firing tears the connection down — both endpoints observe
    :class:`~repro.errors.ConnectionReset`.
    """

    def __init__(
        self,
        engine: Engine,
        bandwidth: float = 12.5 * MB,  # 100 Mb/s in bytes/s
        latency: float = 100e-6,
        connect_overhead: float = 50e-6,
        injector=None,
        syn_timeout: float = 50e-3,
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0 or connect_overhead < 0:
            raise SimulationError("latency/connect overhead must be >= 0")
        if syn_timeout <= 0:
            raise SimulationError(f"syn_timeout must be positive, got {syn_timeout}")
        self.engine = engine
        self.bandwidth = bandwidth
        self.latency = latency
        self.connect_overhead = connect_overhead
        self.injector = injector
        #: Time a connect to a blocked (unreachable) endpoint burns
        #: before giving up — an aggressive SYN retransmission budget.
        self.syn_timeout = syn_timeout
        self._listeners: Dict[Tuple[str, int], "TcpListener"] = {}
        self._blocked: set = set()

    def _register(self, listener: "TcpListener") -> None:
        key = (listener.host, listener.port)
        if key in self._listeners:
            raise SimulationError(f"address {key} already in use")
        self._listeners[key] = listener

    def _unregister(self, listener: "TcpListener") -> None:
        self._listeners.pop((listener.host, listener.port), None)

    # -- reachability (cluster fault surface) ------------------------------

    def block(self, host: str, port: int) -> None:
        """Make an endpoint unreachable: new connects burn the SYN
        budget and fail with :class:`~repro.errors.ConnectionReset`
        (retryable).  Established connections are unaffected — tearing
        those down is the caller's decision (a crash does, a partition
        does not)."""
        self._blocked.add((host, port))

    def unblock(self, host: str, port: int) -> None:
        """Undo :meth:`block` for an endpoint."""
        self._blocked.discard((host, port))

    def reachable(self, host: str, port: int) -> bool:
        """Would a SYN reach a live listener right now?  (What a
        health probe learns without paying a full handshake.)"""
        if (host, port) in self._blocked:
            return False
        listener = self._listeners.get((host, port))
        if listener is None:
            return False
        if _sanitizer.active is not None:
            # Probes race with crash/restart by design: the balancer's
            # streak thresholds absorb a stale answer, so the read is
            # relaxed (it must not count as a data conflict).
            listener._san_state.read(self.engine, op="probe", relaxed=True)
        return listener._listening

    def connect(self, host: str, port: int):
        """Generator: open a connection to a listening endpoint.

        Pays the three-way-handshake cost (one round trip + software
        overhead) and returns the client-side :class:`Socket`.
        Connecting to a :meth:`block`-ed endpoint burns
        :attr:`syn_timeout` and raises
        :class:`~repro.errors.ConnectionReset` — retryable, unlike the
        hard error for an address nothing ever listened on.
        """
        key = (host, port)
        if key in self._blocked:
            yield self.engine.timeout(self.syn_timeout)
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant("net.unreachable", "net", host=host, port=port)
            raise ConnectionReset(f"host unreachable: no route to {key}")
        listener = self._listeners.get(key)
        if _sanitizer.active is not None and listener is not None:
            # A connect colliding with a same-instant stop/start is
            # resolved by the retry policy (the client sees a refused/
            # reset and tries again) — tolerated, hence relaxed.
            listener._san_state.read(self.engine, op="connect", relaxed=True)
        if listener is None or not listener._listening:
            raise SimulationError(f"connection refused: no listener at {key}")
        yield self.engine.timeout(2 * self.latency + self.connect_overhead)
        if (listener.backlog_limit is not None
                and listener.pending >= listener.backlog_limit):
            # SYN queue overflow: the handshake is dropped and the
            # client sees a reset (retryable under the default policy).
            listener.refused += 1
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant("net.refused", "net", host=host, port=port,
                               pending=listener.pending)
            raise ConnectionReset(
                f"connection refused: accept backlog full at {key}"
            )
        client, server = Socket.pair(self)
        client.fault_scope = "client"
        server.fault_scope = "server"
        listener._backlog.put(server)
        return client


class TcpListener:
    """Server-side listening endpoint (``TcpListener`` in the paper)."""

    def __init__(self, network: Network, host: str = "localhost",
                 port: int = 5050, backlog_limit: Optional[int] = None) -> None:
        if backlog_limit is not None and backlog_limit < 1:
            raise SimulationError(
                f"backlog_limit must be >= 1 or None, got {backlog_limit}")
        self.network = network
        self.host = host
        self.port = port
        self._listening = False
        self.backlog_limit = backlog_limit
        self.refused = 0
        self._ever_started = False
        self._backlog: Store = Store(network.engine, name=f"backlog:{host}:{port}")
        #: Sanitizer annotation for the listener's lifecycle state.
        #: ``start``/``stop`` write it; remote control-plane observers
        #: (probes, connects, accept re-entry) read it relaxed, while
        #: the public :attr:`listening` property reads it plainly — so
        #: server code that snapshots the flag across a wait shows up
        #: as a data conflict with a same-instant crash.
        self._san_state = shared(f"listener:{host}:{port}")

    @property
    def listening(self) -> bool:
        """True while the listener accepts new connections."""
        if _sanitizer.active is not None:
            self._san_state.read(self.network.engine, op="listening")
        return self._listening

    def start(self) -> None:
        """Begin accepting connections (registers the address)."""
        if self._listening:
            return
        self.network._register(self)
        if _sanitizer.active is not None:
            self._san_state.write(self.network.engine, op="start")
        self._listening = True
        self._ever_started = True

    def stop(self) -> None:
        """Stop accepting; queued connections remain acceptable."""
        if not self._listening:
            return
        self.network._unregister(self)
        if _sanitizer.active is not None:
            self._san_state.write(self.network.engine, op="stop")
        self._listening = False

    @property
    def pending(self) -> int:
        """Connections waiting in the backlog."""
        return self._backlog.count

    def drain_backlog(self) -> list:
        """Remove and return the queued (not yet accepted) server-side
        sockets.  A crashing node drains its backlog and tears each
        connection down so queued clients observe a reset instead of
        hanging; accept loops blocked on an empty backlog stay parked
        and resume when the listener starts taking connections again."""
        return self._backlog.drain()

    def accept_socket(self):
        """Generator: block until a connection arrives; returns the
        server-side :class:`Socket` (the paper's ``AcceptSocket()``).

        A *stopped* listener parks here rather than erroring: a crashed
        node's accept loop may re-enter between the stop and the
        restart (e.g. it was already holding a connection delivered at
        the crash timestamp), and it must survive to drain the backlog
        once the listener comes back — only accepting on a listener
        that was never started is a programming error."""
        if not self._ever_started:
            raise SimulationError("accept on a listener that was never started")
        if _sanitizer.active is not None:
            # Accept re-entry on a stopped listener is the *fixed*
            # behavior (park, don't die) — observing the state here is
            # tolerated by construction.
            self._san_state.read(self.network.engine, op="accept",
                                 relaxed=True)
        sock = yield self._backlog.get()
        return sock


class Socket:
    """One endpoint of an established connection."""

    def __init__(self, network: Network, outgoing: Channel, incoming: Store) -> None:
        self.socket_id = next(_socket_ids)
        self.network = network
        self._outgoing = outgoing
        self._incoming = incoming
        self._pending = 0  # bytes received but not yet consumed
        self._eof = False
        self._closed = False
        self._reset = False
        # Scope label matched against net.drop fault-rule targets
        # ("client"/"server" for connections made via Network.connect).
        self.fault_scope = "conn"
        self.bytes_sent = 0
        self.bytes_received = 0
        self._peer: Optional["Socket"] = None
        self._deliver_to: Optional[Store] = None  # wired by pair()
        # Application payloads (e.g. HTTP text) delivered alongside the
        # byte counts, in arrival order.  The simulation tracks data as
        # sizes; payloads let endpoints parse real message contents.
        self._rx_payloads: list = []

    @classmethod
    def pair(cls, network: Network) -> Tuple["Socket", "Socket"]:
        """Create a connected duplex socket pair."""
        eng = network.engine
        a_to_b = Channel(eng, network.bandwidth, network.latency, name="a->b")
        b_to_a = Channel(eng, network.bandwidth, network.latency, name="b->a")
        a_in: Store = Store(eng, name="a.in")
        b_in: Store = Store(eng, name="b.in")
        a = cls(network, outgoing=a_to_b, incoming=a_in)
        b = cls(network, outgoing=b_to_a, incoming=b_in)
        a._peer, b._peer = b, a

        # Wire each channel's deliveries into the peer's inbox: the
        # sender process pushes after its transfer completes (below),
        # so no extra machinery is needed here.
        a._deliver_to = b_in
        b._deliver_to = a_in
        return a, b

    def send(self, nbytes: int, payload=None):
        """Generator: transmit ``nbytes`` to the peer.  Occupies this
        direction's channel for the transfer; the peer can ``receive``
        the bytes once they arrive.  ``payload`` (any object, e.g. the
        HTTP message text) rides along and becomes available to the
        peer's :meth:`take_payloads` once the bytes have arrived."""
        if self._reset:
            raise ConnectionReset(f"send on reset socket {self.socket_id}")
        if self._closed:
            raise SimulationError("send on closed socket")
        if nbytes < 0:
            raise SimulationError(f"negative send: {nbytes}")
        injector = self.network.injector
        if injector is not None and injector.net_fault(self.fault_scope, "send"):
            self._tear_down()
            raise ConnectionReset(
                f"connection reset by fault injection (socket {self.socket_id})"
            )
        if nbytes == 0:
            yield self.network.engine.timeout(0.0)
            return 0
        yield from self._outgoing.send(nbytes)
        if self._reset:
            # The connection died while the bytes were in flight.
            raise ConnectionReset(
                f"connection reset during send (socket {self.socket_id})"
            )
        self._deliver_to.put((nbytes, payload))
        self.bytes_sent += nbytes
        return nbytes

    def receive(self, max_bytes: int):
        """Generator: deliver up to ``max_bytes``.  Blocks until at
        least one chunk (or EOF) is available; returns 0 at EOF."""
        if max_bytes < 1:
            raise SimulationError(f"receive needs max_bytes >= 1, got {max_bytes}")
        if self._reset:
            raise ConnectionReset(f"receive on reset socket {self.socket_id}")
        if self._pending == 0 and not self._eof:
            chunk = yield self._incoming.get()
            self._ingest(chunk)
        # Drain any further chunks that already arrived (non-blocking).
        while not self._eof and not self._reset and self._incoming.count > 0:
            ev = self._incoming.get()
            self._ingest(ev.value)  # Store.get on a non-empty store succeeds now
        if self._reset:
            raise ConnectionReset(
                f"connection reset by peer (socket {self.socket_id})"
            )
        take = min(self._pending, max_bytes)
        self._pending -= take
        self.bytes_received += take
        return take

    def reset(self) -> None:
        """Forcibly reset the connection: both endpoints observe
        :class:`~repro.errors.ConnectionReset`.  What a node crash
        does to every connection the node holds."""
        self._tear_down()

    def _tear_down(self) -> None:
        """Reset both endpoints and wake any blocked receivers."""
        for sock in (self, self._peer):
            if sock is None or sock._reset:
                continue
            sock._reset = True
            # A receiver blocked on its inbox needs a wake-up to
            # observe the reset.
            sock._incoming.put(_RESET)

    def _ingest(self, chunk) -> None:
        if chunk is _RESET:
            self._reset = True
            return
        if chunk is _EOF:
            self._eof = True
            return
        nbytes, payload = chunk
        self._pending += nbytes
        if payload is not None:
            self._rx_payloads.append(payload)

    def take_payloads(self) -> list:
        """Application payloads received so far (clears the buffer)."""
        out = self._rx_payloads
        self._rx_payloads = []
        return out

    def close(self):
        """Generator: half-close — signal EOF to the peer."""
        if self._closed or self._reset:
            # Closing a torn-down connection is a no-op.
            yield self.network.engine.timeout(0.0)
            return
        self._closed = True
        yield self.network.engine.timeout(self.network.latency)
        self._deliver_to.put(_EOF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Socket {self.socket_id} sent={self.bytes_sent} "
            f"recv={self.bytes_received}{' closed' if self._closed else ''}>"
        )


class NetworkStream:
    """Thin stream facade over a :class:`Socket` (the C# class the
    paper's ``StartListen()`` builds around the accepted socket)."""

    def __init__(self, socket: Socket) -> None:
        self.socket = socket

    def read(self, max_bytes: int):
        """Generator: receive up to ``max_bytes`` (0 at EOF)."""
        got = yield from self.socket.receive(max_bytes)
        return got

    def write(self, nbytes: int):
        """Generator: send ``nbytes``."""
        sent = yield from self.socket.send(nbytes)
        return sent

    def close(self):
        """Generator: close the underlying socket."""
        yield from self.socket.close()

"""``StreamWriter`` / ``StreamReader`` — buffered text adapters.

The paper's POST handler stores uploaded data "using streamwriter
class"; this module reproduces the buffered-writer behaviour: small
writes accumulate in a memory buffer and reach the file system in
buffer-sized chunks, so per-write cost is dominated by the flush
pattern, not the call count.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FileSystemError
from repro.io.filestream import FileStream

__all__ = ["StreamWriter", "StreamReader"]

_NEWLINE_BYTES = 2  # CRLF, as on the paper's Windows XP platform


class StreamWriter:
    """Buffered writer over a :class:`FileStream`.

    ``buffer_size`` mirrors the CLR default of 1024 chars (bytes here:
    the simulation does not model encodings beyond a 1-byte charset).
    """

    def __init__(self, stream: FileStream, buffer_size: int = 1024) -> None:
        if buffer_size < 1:
            raise FileSystemError(f"buffer_size must be >= 1, got {buffer_size}")
        self.stream = stream
        self.buffer_size = buffer_size
        self._buffered = 0
        self.bytes_written = 0

    def write(self, nbytes: int):
        """Generator: buffer ``nbytes``; flushes whole buffers through."""
        if nbytes < 0:
            raise FileSystemError(f"negative write: {nbytes}")
        self._buffered += nbytes
        self.bytes_written += nbytes
        while self._buffered >= self.buffer_size:
            yield from self.stream.write(self.buffer_size)
            self._buffered -= self.buffer_size

    def write_line(self, nbytes: int):
        """Generator: ``write`` plus a platform newline."""
        yield from self.write(nbytes + _NEWLINE_BYTES)

    def flush(self):
        """Generator: push any residual buffered bytes to the stream."""
        if self._buffered > 0:
            yield from self.stream.write(self._buffered)
            self._buffered = 0
        else:
            yield self.stream.fs.engine.timeout(0.0)

    def close(self):
        """Generator: flush, then close the underlying stream."""
        yield from self.flush()
        yield from self.stream.close()


class StreamReader:
    """Buffered reader over a :class:`FileStream`.

    Reads ahead ``buffer_size`` bytes at a time; ``read`` serves from
    the buffer, hitting the file system only on refills.
    """

    def __init__(self, stream: FileStream, buffer_size: int = 1024) -> None:
        if buffer_size < 1:
            raise FileSystemError(f"buffer_size must be >= 1, got {buffer_size}")
        self.stream = stream
        self.buffer_size = buffer_size
        self._buffered = 0
        self._eof = False
        self.bytes_read = 0

    def read(self, nbytes: int):
        """Generator: deliver up to ``nbytes``; returns 0 at EOF."""
        if nbytes < 0:
            raise FileSystemError(f"negative read: {nbytes}")
        delivered = 0
        while delivered < nbytes:
            if self._buffered == 0:
                if self._eof:
                    break
                got = yield from self.stream.read(self.buffer_size)
                if got == 0:
                    self._eof = True
                    break
                self._buffered = got
            take = min(self._buffered, nbytes - delivered)
            self._buffered -= take
            delivered += take
        self.bytes_read += delivered
        return delivered

    def close(self):
        """Generator: close the underlying stream."""
        yield from self.stream.close()

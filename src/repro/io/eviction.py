"""Cache eviction policies.

The buffer cache delegates victim selection to a policy object:

* **LRU** — least recently used (the default; what the paper-era
  Windows cache manager approximates);
* **FIFO** — insertion order, ignoring accesses;
* **CLOCK** — second-chance: a reference bit per page, cleared as the
  clock hand sweeps; cheap LRU approximation.

Policies only track *order*; page state stays in the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Tuple

from repro.errors import StorageError

__all__ = ["EvictionPolicy", "LruPolicy", "FifoPolicy", "ClockPolicy",
           "make_eviction_policy", "EVICTION_POLICIES"]


class EvictionPolicy:
    """Victim-selection strategy over cache keys."""

    name = "abstract"

    def on_insert(self, key: Hashable) -> None:
        raise NotImplementedError  # pragma: no cover

    def on_access(self, key: Hashable) -> None:
        raise NotImplementedError  # pragma: no cover

    def on_remove(self, key: Hashable) -> None:
        raise NotImplementedError  # pragma: no cover

    def victim(self) -> Hashable:
        """Select and remove the next victim key."""
        raise NotImplementedError  # pragma: no cover

    def __len__(self) -> int:
        raise NotImplementedError  # pragma: no cover


class LruPolicy(EvictionPolicy):
    """Evict the least recently used page."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def on_remove(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Hashable:
        if not self._order:
            raise StorageError("victim() on an empty policy")
        key, _ = self._order.popitem(last=False)
        return key

    def __len__(self) -> int:
        return len(self._order)


class FifoPolicy(LruPolicy):
    """Evict in insertion order; accesses do not refresh."""

    name = "fifo"

    def on_access(self, key: Hashable) -> None:
        pass  # insertion order only


class ClockPolicy(EvictionPolicy):
    """Second-chance: each page has a reference bit set on access; the
    hand sweeps insertion order, clearing bits until it finds a page
    with bit 0."""

    name = "clock"

    def __init__(self) -> None:
        self._ring: "OrderedDict[Hashable, bool]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._ring[key] = False

    def on_access(self, key: Hashable) -> None:
        if key in self._ring:
            self._ring[key] = True

    def on_remove(self, key: Hashable) -> None:
        self._ring.pop(key, None)

    def victim(self) -> Hashable:
        if not self._ring:
            raise StorageError("victim() on an empty policy")
        while True:
            key, referenced = self._ring.popitem(last=False)
            if referenced:
                # Second chance: clear the bit, move behind the hand.
                self._ring[key] = False
            else:
                return key

    def __len__(self) -> int:
        return len(self._ring)


EVICTION_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "clock": ClockPolicy,
}


def make_eviction_policy(name: str) -> EvictionPolicy:
    """Factory by policy name."""
    try:
        cls = EVICTION_POLICIES[name.lower()]
    except KeyError:
        raise StorageError(
            f"unknown eviction policy {name!r}; choices: {sorted(EVICTION_POLICIES)}"
        ) from None
    return cls()

"""Simulated file system, buffer cache, and network transport.

This layer reproduces the OS-side behaviour the paper's benchmarks
observe through the CLI's class library:

* *"When the file is opened, a page or two is placed in I/O buffers"*
  → :class:`FileSystem` issues an asynchronous open-prefetch.
* *"At the time when a read, write, or seek operation is performed, a
  prefetch operation will be invoked accordingly"* → every access
  notifies the :class:`Prefetcher`.
* *"the time spent closing a file was longer than the time taken to
  open the file"* → close pays a larger software overhead plus the
  cost of issuing write-back for the file's dirty pages.
* Requests that miss the cache block on a real (simulated) disk fetch,
  producing the orders-of-magnitude latency spikes of Tables 3–4.

The managed wrappers (:class:`FileStream`, :class:`StreamWriter`) give
the CLI layer the same surface the paper's C# code uses.
"""

from repro.io.buffercache import BufferCache, CacheParams, CacheStats
from repro.io.eviction import (
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    make_eviction_policy,
)
from repro.io.prefetch import (
    AdaptivePrefetch,
    FixedAheadPrefetch,
    NoPrefetch,
    Prefetcher,
    make_prefetch_policy,
)
from repro.io.filesystem import FileHandle, FileSystem, FsParams, Inode
from repro.io.filestream import FileStream, FileMode, SeekOrigin
from repro.io.streamwriter import StreamReader, StreamWriter
from repro.io.net import Network, NetworkStream, Socket, TcpListener

__all__ = [
    "BufferCache",
    "CacheParams",
    "CacheStats",
    "LruPolicy",
    "FifoPolicy",
    "ClockPolicy",
    "make_eviction_policy",
    "Prefetcher",
    "NoPrefetch",
    "FixedAheadPrefetch",
    "AdaptivePrefetch",
    "make_prefetch_policy",
    "FileSystem",
    "FsParams",
    "FileHandle",
    "Inode",
    "FileStream",
    "FileMode",
    "SeekOrigin",
    "StreamWriter",
    "StreamReader",
    "Network",
    "TcpListener",
    "Socket",
    "NetworkStream",
]

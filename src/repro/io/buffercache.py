"""Page-granular buffer cache over a block device.

The cache holds *metadata only* (which pages are resident and whether
they are dirty) — no payload bytes, since the simulation tracks sizes,
not contents.  Pages are keyed ``(file_id, page_index)``, evicted LRU,
and fetched from the device in contiguous batched runs.

Concurrency: a page being fetched is *in flight*; concurrent demanders
wait on the same completion event instead of duplicating device
traffic.  Dirty pages evicted or flushed are written back by an
asynchronous writer process, so only the *issue* cost lands on the
caller — mirroring OS write-behind, and producing the paper's
"close is slower than open, but not disk-slow" measurements.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import StorageError
from repro.sanitizer import runtime as _sanitizer
from repro.sanitizer.race import shared
from repro.sim import Engine
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.io.filesystem import Inode

__all__ = ["CacheParams", "CacheStats", "BufferCache", "PageState"]


class PageState(enum.Enum):
    CLEAN = "clean"
    DIRTY = "dirty"


@dataclass(frozen=True)
class CacheParams:
    """Sizing and cost parameters.

    ``capacity_pages`` defaults to 16384 × 4 KiB = 64 MiB, a plausible
    page-cache share on the paper's 2004 test machine.
    ``page_touch_cost`` is the software cost of delivering one cached
    page to the caller (lookup + copy bookkeeping).
    ``writeback_issue_cost`` is the per-page cost of queueing an
    asynchronous write-back (charged to flushers/evicters).
    """

    page_size: int = 4096
    capacity_pages: int = 16384
    page_touch_cost: float = 60e-9
    writeback_issue_cost: float = 30e-9
    eviction: str = "lru"

    def __post_init__(self) -> None:
        if self.page_size < 1:
            raise StorageError(f"page_size must be >= 1, got {self.page_size}")
        if self.capacity_pages < 1:
            raise StorageError(f"capacity_pages must be >= 1, got {self.capacity_pages}")
        if self.page_touch_cost < 0 or self.writeback_issue_cost < 0:
            raise StorageError("per-page costs must be >= 0")
        from repro.io.eviction import EVICTION_POLICIES

        if self.eviction not in EVICTION_POLICIES:
            raise StorageError(
                f"unknown eviction policy {self.eviction!r}; "
                f"choices: {sorted(EVICTION_POLICIES)}"
            )


@dataclass
class CacheStats:
    """Running counters; read them after an experiment."""

    hits: int = 0
    misses: int = 0
    inflight_waits: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    evictions: int = 0
    writebacks: int = 0
    fetch_failures: int = 0
    writeback_failures: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.inflight_waits

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0


class BufferCache:
    """LRU page cache bound to one block device.

    The device must expose ``block_size`` and
    ``submit_range(lba, nblocks, is_write) -> Event``
    (both :class:`~repro.storage.disk.Disk` and
    :class:`~repro.storage.raid.StripedArray` qualify).
    """

    def __init__(
        self,
        engine: Engine,
        device,
        params: Optional[CacheParams] = None,
        probe=None,
    ) -> None:
        from repro.sim.probe import NULL_PROBE

        self.engine = engine
        self.device = device
        self.probe = probe if probe is not None else NULL_PROBE
        self.params = params or CacheParams()
        if self.params.page_size % device.block_size != 0:
            raise StorageError(
                f"page size {self.params.page_size} not a multiple of "
                f"device block size {device.block_size}"
            )
        self.blocks_per_page = self.params.page_size // device.block_size
        from repro.io.eviction import make_eviction_policy

        self._pages: Dict[Tuple[int, int], PageState] = {}
        # Per-file indexes kept in lockstep with ``_pages`` so close
        # paths (flush/sync/invalidate) are O(pages of that file), not
        # O(all resident pages) — file closes are on the macro
        # experiments' hot path.
        self._file_pages: Dict[int, set] = {}
        self._dirty_by_file: Dict[int, set] = {}
        self._policy = make_eviction_policy(self.params.eviction)
        self._inflight: Dict[Tuple[int, int], Event] = {}
        # Sanitizer annotation for the page map.  Internal operations
        # access it relaxed: the cache's contract is that the map may
        # change across any wait and every consumer must re-validate
        # residency after resuming (the stale-read lint enforces that
        # discipline; the ``access()`` hit path re-checks explicitly).
        # Public introspection reads are strict, so outside code that
        # *mutates* cache state in a race with the engine shows up.
        self._san_pages = shared("cache.pages")
        self.stats = CacheStats()
        engine.metrics.register("cache.stats", self.stats)
        engine.metrics.gauge("cache.resident_pages", lambda: len(self._pages))

    # -- queries ---------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        if _sanitizer.active is not None:
            self._san_pages.read(self.engine, op="resident_pages")
        return len(self._pages)

    def is_resident(self, inode: "Inode", page: int) -> bool:
        if _sanitizer.active is not None:
            self._san_pages.read(self.engine, op="is_resident")
        return (inode.file_id, page) in self._pages

    def is_dirty(self, inode: "Inode", page: int) -> bool:
        if _sanitizer.active is not None:
            self._san_pages.read(self.engine, op="is_dirty")
        return self._pages.get((inode.file_id, page)) is PageState.DIRTY

    def is_inflight(self, inode: "Inode", page: int) -> bool:
        return (inode.file_id, page) in self._inflight

    def dirty_pages_of(self, inode: "Inode") -> List[int]:
        return list(self._dirty_by_file.get(inode.file_id, ()))

    def resident_pages_of(self, inode: "Inode") -> List[int]:
        return list(self._file_pages.get(inode.file_id, ()))

    # -- core operations ---------------------------------------------------

    def access(self, inode: "Inode", first_page: int, npages: int):
        """Generator: make pages [first, first+npages) resident and
        charge delivery cost.  Returns ``(hits, misses)``.

        Misses are fetched from the device in contiguous batched runs;
        in-flight pages (e.g. being prefetched) are awaited, counting
        as neither a pure hit nor a cold miss.
        """
        if npages < 1:
            raise StorageError(f"npages must be >= 1, got {npages}")
        if _sanitizer.active is not None:
            self._san_pages.read(self.engine, op="access", relaxed=True)
        pages = self._pages
        fid = inode.file_id
        if all((fid, p) in pages for p in range(first_page, first_page + npages)):
            # Fast path: the whole range is resident (the warm
            # sequential-read case that dominates replay workloads).
            # Same observable behavior as the general loop below —
            # per-page policy touches in order, hit accounting, one
            # delivery timeout, hit-ratio counter — without the
            # run-tracking generator machinery.
            on_access = self._policy.on_access
            for p in range(first_page, first_page + npages):
                on_access((fid, p))
            self.stats.hits += npages
            yield self.engine.timeout(self.params.page_touch_cost * npages)
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.counter("cache.hit_ratio", "io", self.stats.hit_ratio)
            return npages, 0
        hits = misses = 0
        run_start: Optional[int] = None  # start of current absent run
        waits: List[Event] = []

        def flush_run(upto: int):
            nonlocal run_start
            if run_start is not None:
                yield from self._fetch_run(inode, run_start, upto - run_start)
                run_start = None

        for page in range(first_page, first_page + npages):
            key = (inode.file_id, page)
            if key in self._pages or key in self._inflight:
                yield from flush_run(page)
                # Re-check after the fetch: publishing the preceding
                # run can evict this very page (or complete/fail its
                # in-flight fetch), so the pre-yield residency test is
                # stale by the time we are back.
                if key in self._pages:
                    self._policy.on_access(key)
                    self.stats.hits += 1
                    hits += 1
                    continue
                if key in self._inflight:
                    self.stats.inflight_waits += 1
                    waits.append(self._inflight[key])
                    continue
            if run_start is None:
                run_start = page
            self.stats.misses += 1
            misses += 1
        yield from flush_run(first_page + npages)
        for ev in waits:
            if not ev.processed:
                yield ev
            elif not ev.ok:
                # The fetch we piggybacked on already failed; surface it
                # instead of pretending the page arrived.
                raise ev.value
        # Software delivery cost for every page touched.
        yield self.engine.timeout(self.params.page_touch_cost * npages)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.counter("cache.hit_ratio", "io", self.stats.hit_ratio)
        return hits, misses

    def _fetch_run(self, inode: "Inode", first_page: int, npages: int):
        """Generator: synchronous device read of a contiguous page run.

        The file's extent map may break the run into several physically
        contiguous fragments; each becomes one device request.
        """
        if self.probe.enabled:
            self.probe.record(
                "cache", "demand fetch",
                file=inode.file_id, first_page=first_page, npages=npages,
            )
        tracer = self.engine.tracer
        started = self.engine.now if tracer.enabled else 0.0
        done = self._begin_fetch(inode, first_page, npages)
        yield from self._complete_fetch(inode, first_page, npages, done)
        if tracer.enabled:
            tracer.complete("cache.fetch", "io", started,
                            file=inode.file_id, first_page=first_page,
                            npages=npages)

    def _complete_fetch(self, inode: "Inode", first_page: int, npages: int, done: Event):
        """Generator: issue the device reads for an already-registered
        in-flight run and publish the pages when they land.

        A failed device read (media error, offline disk) must unwind the
        in-flight registrations and fail ``done`` — otherwise demand
        readers waiting on the run would block forever — before the
        error propagates to whoever issued the fetch.
        """
        try:
            for ev in self._issue_reads(inode, first_page, npages):
                yield ev
        except StorageError as exc:
            self.stats.fetch_failures += 1
            for page in range(first_page, first_page + npages):
                self._inflight.pop((inode.file_id, page), None)
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant("cache.fetch_failed", "io",
                               file=inode.file_id, first_page=first_page,
                               npages=npages, error=type(exc).__name__)
            # Background prefetches may have no waiters; the sacrificial
            # callback keeps the engine from raising on the unobserved
            # failure.
            done.add_callback(lambda ev: None)
            done.fail(exc)
            raise
        self._finish_fetch(inode, first_page, npages, done)

    def _begin_fetch(self, inode: "Inode", first_page: int, npages: int) -> Event:
        done = self.engine.event()
        for page in range(first_page, first_page + npages):
            self._inflight[(inode.file_id, page)] = done
        return done

    def _issue_reads(self, inode: "Inode", first_page: int, npages: int) -> List[Event]:
        events = []
        for lba, nblocks in inode.physical_runs(
            first_page * self.blocks_per_page, npages * self.blocks_per_page
        ):
            events.append(self.device.submit_range(lba, nblocks, is_write=False))
        return events

    def _finish_fetch(self, inode: "Inode", first_page: int, npages: int, done: Event) -> None:
        for page in range(first_page, first_page + npages):
            key = (inode.file_id, page)
            self._inflight.pop(key, None)
            self._insert(key, PageState.CLEAN)
        done.succeed()

    def prefetch(self, inode: "Inode", first_page: int, npages: int) -> int:
        """Issue an *asynchronous* fetch for absent pages in the range.

        Returns the number of pages actually scheduled.  The fetch runs
        as a background process; demand reads arriving meanwhile wait
        on the in-flight event rather than duplicating device work.
        """
        if npages < 1:
            return 0
        max_page = inode.page_count(self.params.page_size)
        pages = [
            p
            for p in range(first_page, first_page + npages)
            if p < max_page
            and (inode.file_id, p) not in self._pages
            and (inode.file_id, p) not in self._inflight
        ]
        if not pages:
            return 0
        # Break into contiguous runs and fetch each in the background.
        runs: List[Tuple[int, int]] = []
        start = prev = pages[0]
        for p in pages[1:]:
            if p == prev + 1:
                prev = p
            else:
                runs.append((start, prev - start + 1))
                start = prev = p
        runs.append((start, prev - start + 1))
        tracer = self.engine.tracer
        for run_start, run_len in runs:
            # Register in-flight *now* so demand reads and repeated
            # prefetch calls see these pages immediately.
            if self.probe.enabled:
                self.probe.record(
                    "cache", "prefetch",
                    file=inode.file_id, first_page=run_start, npages=run_len,
                )
            if tracer.enabled:
                tracer.instant("cache.prefetch", "io", file=inode.file_id,
                               first_page=run_start, npages=run_len)
            done = self._begin_fetch(inode, run_start, run_len)
            self.engine.process(
                self._complete_fetch(inode, run_start, run_len, done),
                name=f"prefetch[{inode.file_id}:{run_start}+{run_len}]",
                daemon=True,
            )
        self.stats.prefetches_issued += len(pages)
        return len(pages)

    def write_pages(self, inode: "Inode", first_page: int, npages: int, partial_head: bool, partial_tail: bool):
        """Generator: make pages writable and mark them dirty.

        A *partial* first/last page that already holds file data must be
        read before being overwritten (read-modify-write); full-page
        overwrites and appends skip the fetch.
        Returns the number of pages that required a fetch.
        """
        if npages < 1:
            raise StorageError(f"npages must be >= 1, got {npages}")
        fetched = 0
        last_page = first_page + npages - 1
        file_pages = inode.page_count(self.params.page_size)
        for page in range(first_page, first_page + npages):
            key = (inode.file_id, page)
            needs_rmw = (
                (page == first_page and partial_head) or (page == last_page and partial_tail)
            ) and page < file_pages
            if key in self._inflight:
                ev = self._inflight[key]
                if not ev.processed:
                    yield ev
            if key not in self._pages and needs_rmw:
                yield from self._fetch_run(inode, page, 1)
                fetched += 1
            self._insert(key, PageState.DIRTY)
        yield self.engine.timeout(self.params.page_touch_cost * npages)
        return fetched

    def flush_file(self, inode: "Inode"):
        """Generator: issue asynchronous write-back for every dirty page
        of ``inode``; the caller pays only the issue cost.  Returns the
        number of pages queued for write-back."""
        dirty = sorted(self.dirty_pages_of(inode))
        for page in dirty:
            self._pages[(inode.file_id, page)] = PageState.CLEAN
        self._dirty_by_file.pop(inode.file_id, None)
        if dirty:
            self._writeback_async(inode, dirty)
            yield self.engine.timeout(self.params.writeback_issue_cost * len(dirty))
        else:
            yield self.engine.timeout(0.0)
        return len(dirty)

    def sync_file(self, inode: "Inode"):
        """Generator: synchronous flush — waits for the device writes.
        Returns the number of pages written."""
        dirty = sorted(self.dirty_pages_of(inode))
        for page in dirty:
            self._pages[(inode.file_id, page)] = PageState.CLEAN
        self._dirty_by_file.pop(inode.file_id, None)
        events = []
        for start, length in _contiguous_runs(dirty):
            for lba, nblocks in inode.physical_runs(
                start * self.blocks_per_page, length * self.blocks_per_page
            ):
                events.append(self.device.submit_range(lba, nblocks, is_write=True))
        for ev in events:
            yield ev
        self.stats.writebacks += len(dirty)
        return len(dirty)

    def invalidate_file(self, inode: "Inode") -> int:
        """Drop every resident page of ``inode`` (dirty pages are lost —
        callers flush first).  Returns the number of pages dropped."""
        fid = inode.file_id
        if _sanitizer.active is not None:
            self._san_pages.write(self.engine, op="invalidate", relaxed=True)
        victims = [(fid, p) for p in self._file_pages.get(fid, ())]
        for key in victims:
            del self._pages[key]
            self._policy.on_remove(key)
        self._file_pages.pop(fid, None)
        self._dirty_by_file.pop(fid, None)
        return len(victims)

    def drop_page(self, inode: "Inode", page: int) -> None:
        """Drop one resident page without writeback (truncate path)."""
        key = (inode.file_id, page)
        if _sanitizer.active is not None:
            self._san_pages.write(self.engine, op="drop", relaxed=True)
        del self._pages[key]
        self._policy.on_remove(key)
        self._drop_from_indexes(key)

    def _drop_from_indexes(self, key: Tuple[int, int]) -> None:
        fid, page = key
        pages = self._file_pages.get(fid)
        if pages is not None:
            pages.discard(page)
            if not pages:
                del self._file_pages[fid]
        dirty = self._dirty_by_file.get(fid)
        if dirty is not None:
            dirty.discard(page)
            if not dirty:
                del self._dirty_by_file[fid]

    # -- internals -----------------------------------------------------------

    def _writeback_async(self, inode: "Inode", pages: List[int]) -> None:
        def writer():
            try:
                for start, length in _contiguous_runs(pages):
                    for lba, nblocks in inode.physical_runs(
                        start * self.blocks_per_page, length * self.blocks_per_page
                    ):
                        yield self.device.submit_range(lba, nblocks, is_write=True)
            except StorageError as exc:
                # Background write-back against a failing device: count
                # it rather than crash the daemon; the data stays lost
                # (no payloads in the model), which sync paths surface.
                self.stats.writeback_failures += 1
                tracer = self.engine.tracer
                if tracer.enabled:
                    tracer.instant("cache.writeback_failed", "io",
                                   file=inode.file_id,
                                   error=type(exc).__name__)
                return
            self.stats.writebacks += len(pages)

        self.engine.process(writer(), name=f"writeback[{inode.file_id}]", daemon=True)

    def _insert(self, key: Tuple[int, int], state: PageState) -> None:
        if _sanitizer.active is not None:
            self._san_pages.write(self.engine, op="insert", relaxed=True)
        if key in self._pages:
            # Upgrade clean → dirty, never silently downgrade.
            if state is PageState.DIRTY or self._pages[key] is PageState.CLEAN:
                self._pages[key] = state
                if state is PageState.DIRTY:
                    self._dirty_by_file.setdefault(key[0], set()).add(key[1])
            self._policy.on_access(key)
            return
        while len(self._pages) >= self.params.capacity_pages:
            self._evict_one()
        self._pages[key] = state
        self._file_pages.setdefault(key[0], set()).add(key[1])
        if state is PageState.DIRTY:
            self._dirty_by_file.setdefault(key[0], set()).add(key[1])
        self._policy.on_insert(key)

    def _evict_one(self) -> None:
        if _sanitizer.active is not None:
            self._san_pages.write(self.engine, op="evict", relaxed=True)
        victim_key = self._policy.victim()
        victim_state = self._pages.pop(victim_key)
        self._drop_from_indexes(victim_key)
        self.stats.evictions += 1
        if self.probe.enabled:
            self.probe.record(
                "cache", "evict",
                file=victim_key[0], page=victim_key[1],
                dirty=victim_state is PageState.DIRTY,
            )
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("cache.evict", "io", file=victim_key[0],
                           page=victim_key[1],
                           dirty=victim_state is PageState.DIRTY)
        if victim_state is PageState.DIRTY:
            # Lost-update safety: queue an async write-back for the victim.
            file_id, page = victim_key
            inode = self._inode_lookup(file_id)
            if inode is not None:
                self._writeback_async(inode, [page])

    # The file system registers a resolver so eviction can map file ids
    # back to inodes for write-back.
    _resolver = None

    def register_inode_resolver(self, resolver) -> None:
        """``resolver(file_id) -> Inode | None``; set by the file system."""
        self._resolver = resolver

    def _inode_lookup(self, file_id: int):
        return self._resolver(file_id) if self._resolver is not None else None


def _contiguous_runs(sorted_pages: List[int]) -> List[Tuple[int, int]]:
    """Group a sorted page list into (start, length) contiguous runs."""
    runs: List[Tuple[int, int]] = []
    if not sorted_pages:
        return runs
    start = prev = sorted_pages[0]
    for p in sorted_pages[1:]:
        if p == prev + 1:
            prev = p
        else:
            runs.append((start, prev - start + 1))
            start = prev = p
    runs.append((start, prev - start + 1))
    return runs

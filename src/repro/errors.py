"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems add their own subclasses;
keeping them all here gives a single import point and avoids circular
imports between layers.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "StorageError",
    "DiskError",
    "MediaError",
    "DiskFailedError",
    "FileSystemError",
    "FileNotFound",
    "FileExists",
    "InvalidHandle",
    "OutOfSpace",
    "CliError",
    "VerificationError",
    "JitError",
    "ExecutionFault",
    "StackUnderflow",
    "TypeMismatch",
    "NullReference",
    "ModelError",
    "TraceError",
    "TraceFormatError",
    "HttpError",
    "ConnectionReset",
    "BenchmarkError",
    "FaultError",
    "RetryExhausted",
    "OperationTimeout",
    "ClusterError",
    "NoReplicasAvailable",
    "SanitizerError",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------

class SimulationError(ReproError):
    """Generic error inside the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when ``run()`` is asked to progress but no event is pending
    while live processes still exist (every process is blocked forever)."""


# --------------------------------------------------------------------------
# Storage / disk layer
# --------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for the storage substrate."""


class DiskError(StorageError):
    """Invalid request against a disk (out-of-range LBA, zero length...)."""


class MediaError(DiskError):
    """A block transfer failed with an unrecoverable media (ECC) error.

    Transient by nature: the same LBA may read fine on the next attempt,
    which is what retry policies exploit.
    """


class DiskFailedError(DiskError):
    """The whole device is offline (injected failure or pulled drive).

    Unlike :class:`MediaError` this is persistent until the disk is
    repaired/replaced; arrays respond by entering degraded mode.
    """


class FileSystemError(StorageError):
    """Base class for simulated file-system errors."""


class FileNotFound(FileSystemError):
    """Path does not exist in the simulated namespace."""


class FileExists(FileSystemError):
    """Path already exists and exclusive creation was requested."""


class InvalidHandle(FileSystemError):
    """Operation on a closed or never-opened file handle."""


class OutOfSpace(FileSystemError):
    """The simulated volume has no free extents left."""


# --------------------------------------------------------------------------
# CLI virtual machine
# --------------------------------------------------------------------------

class CliError(ReproError):
    """Base class for the simulated Common Language Infrastructure."""


class VerificationError(CliError):
    """Bytecode failed verification before JIT/execution."""


class JitError(CliError):
    """The JIT cost model was asked to compile something unsupported."""


class ExecutionFault(CliError):
    """Runtime fault inside the execution engine (managed exception)."""


class StackUnderflow(ExecutionFault):
    """Evaluation stack popped while empty."""


class TypeMismatch(ExecutionFault):
    """Operand types do not match the instruction's expectations."""


class NullReference(ExecutionFault):
    """Dereference of a null object reference."""


# --------------------------------------------------------------------------
# Behavioral model
# --------------------------------------------------------------------------

class ModelError(ReproError):
    """Invalid behavioral-model construction (fractions out of range,
    relative times not summing to one, ...)."""


# --------------------------------------------------------------------------
# Trace benchmark
# --------------------------------------------------------------------------

class TraceError(ReproError):
    """Base class for trace-file handling errors."""


class TraceFormatError(TraceError):
    """Malformed trace file (bad magic, truncated record, bad op code)."""


# --------------------------------------------------------------------------
# Web server micro-benchmark
# --------------------------------------------------------------------------

class HttpError(ReproError):
    """Malformed HTTP request or unsupported method."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ConnectionReset(ReproError):
    """The peer (or an injected fault) tore the connection down while
    data was still in flight."""


# --------------------------------------------------------------------------
# Benchmark harness
# --------------------------------------------------------------------------

class BenchmarkError(ReproError):
    """An experiment failed its configuration sanity checks."""


# --------------------------------------------------------------------------
# Fault injection / resilience
# --------------------------------------------------------------------------

class FaultError(ReproError):
    """Invalid fault-plan construction (bad kind, empty window, ...)."""


class RetryExhausted(ReproError):
    """A retried operation failed on every allowed attempt.

    The original failure is available as ``last_error``.
    """

    def __init__(self, message: str, last_error: Exception = None,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.last_error = last_error
        self.attempts = attempts


class OperationTimeout(ReproError):
    """A single attempt exceeded the retry policy's per-op timeout."""


# --------------------------------------------------------------------------
# Cluster
# --------------------------------------------------------------------------

class ClusterError(ReproError):
    """Invalid cluster configuration or a broken cluster invariant."""


class NoReplicasAvailable(ClusterError):
    """Every replica of a key is down, ejected, or still rebuilding."""


# --------------------------------------------------------------------------
# Concurrency sanitizer
# --------------------------------------------------------------------------

class SanitizerError(ReproError):
    """Misuse of the concurrency sanitizer (enabling twice, checking an
    unreadable trace, unknown invariant name, ...)."""

"""Trace-driven I/O benchmark (paper §3).

The benchmark replays I/O traces of five applications against a large
file "on a local disk", timing each open/close/read/write/seek.  The
original University of Maryland traces (CS-TR-3802) are not publicly
archived, so :mod:`repro.traces.generator` synthesizes traces with the
access patterns the paper describes and the exact request sizes its
tables print.

* :mod:`repro.traces.ops` / :mod:`repro.traces.format` — the trace
  file layout of §3.2 (header: process/file/record counts, offset to
  records, sample file; records: op ∈ {Open=0, Close=1, Read=2,
  Write=3, Seek=4}, counts, pid, field, clocks, offset, length).
* :mod:`repro.traces.reader` / :mod:`repro.traces.writer` — binary
  (de)serialization.
* :mod:`repro.traces.replay` — replays a trace through the CLI VM:
  the dispatch loop is a CIL method, so JIT and interpreter costs are
  on the measured path exactly as on the SSCLI.
* :mod:`repro.traces.timing` — per-operation statistics in the
  paper's milliseconds.
"""

from repro.traces.ops import IOOp, TraceHeader, TraceRecord
from repro.traces.format import TRACE_MAGIC, TRACE_VERSION
from repro.traces.reader import iter_trace, read_trace
from repro.traces.writer import write_trace
from repro.traces.timing import OpStats, OpTimings
from repro.traces.analysis import TraceSummary, summarize
from repro.traces.replay import RecordTiming, ReplayConfig, ReplayResult, TraceReplayer
from repro.traces.generator import (
    APPLICATIONS,
    generate_cholesky,
    generate_dmine,
    generate_lu,
    generate_pgrep,
    generate_titan,
    generate_trace,
)

__all__ = [
    "IOOp",
    "TraceHeader",
    "TraceRecord",
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "read_trace",
    "iter_trace",
    "write_trace",
    "OpStats",
    "OpTimings",
    "TraceSummary",
    "summarize",
    "ReplayConfig",
    "ReplayResult",
    "RecordTiming",
    "TraceReplayer",
    "APPLICATIONS",
    "generate_trace",
    "generate_dmine",
    "generate_pgrep",
    "generate_lu",
    "generate_titan",
    "generate_cholesky",
]

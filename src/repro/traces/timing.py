"""Per-operation timing aggregation in the paper's units (ms)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import TraceError
from repro.sim import Tally
from repro.traces.ops import IOOp
from repro.units import to_ms

__all__ = ["OpStats", "OpTimings"]


@dataclass(frozen=True)
class OpStats:
    """Summary for one operation type, milliseconds throughout."""

    op: IOOp
    count: int
    mean_ms: float
    min_ms: float
    max_ms: float
    total_ms: float

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.op.name.lower():5s} n={self.count:5d} "
            f"mean={self.mean_ms:.6f} ms [{self.min_ms:.6f}, {self.max_ms:.6f}]"
        )


class OpTimings:
    """Collects per-record latencies and produces per-op summaries."""

    def __init__(self) -> None:
        self._tallies: Dict[IOOp, Tally] = {op: Tally(op.name) for op in IOOp}

    def record(self, op: IOOp, seconds: float) -> None:
        """Add one measured latency (simulated seconds)."""
        if seconds < 0:
            raise TraceError(f"negative latency: {seconds}")
        self._tallies[IOOp(op)].record(seconds)

    def count(self, op: IOOp) -> int:
        return self._tallies[op].count

    def mean_ms(self, op: IOOp) -> float:
        return to_ms(self._tallies[op].mean)

    def stats(self, op: IOOp) -> Optional[OpStats]:
        """Summary for ``op``, or None if never observed."""
        t = self._tallies[op]
        if t.count == 0:
            return None
        return OpStats(
            op=op,
            count=t.count,
            mean_ms=to_ms(t.mean),
            min_ms=to_ms(t.minimum),
            max_ms=to_ms(t.maximum),
            total_ms=to_ms(t.total),
        )

    def all_stats(self) -> List[OpStats]:
        """Summaries for every observed op, in op-code order."""
        return [s for op in IOOp if (s := self.stats(op)) is not None]

"""Titan trace: a parallel scientific database for remote-sensing data
(Chang et al., the paper's [3]).

Access pattern: spatial range queries fetch coarse-grained chunks of
satellite imagery; Table 2 reports synchronous reads of 187681 bytes.
Queries exhibit spatial locality — consecutive reads usually touch
adjacent chunks, with occasional jumps to a new query region.  The
jump sequence is seeded and deterministic.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TraceError
from repro.rng import SeededStreams
from repro.traces.generator._base import DEFAULT_SAMPLE_FILE, TraceBuilder
from repro.traces.ops import TraceHeader, TraceRecord

__all__ = ["generate_titan", "TITAN_READ_SIZE"]

#: Table 2's "Data size (Bytes)".
TITAN_READ_SIZE = 187681


def generate_titan(
    region_size: int = 48 * 1024 * 1024,
    num_queries: int = 12,
    reads_per_query: int = 16,
    read_size: int = TITAN_READ_SIZE,
    seed: int = 0,
    sample_file: str = DEFAULT_SAMPLE_FILE,
) -> Tuple[TraceHeader, List[TraceRecord]]:
    """Generate the Titan trace: ``num_queries`` query regions, each
    read as ``reads_per_query`` adjacent chunks."""
    if region_size < read_size * reads_per_query:
        raise TraceError("region too small for one query's reads")
    if num_queries < 1 or reads_per_query < 1:
        raise TraceError("need at least one query and one read per query")
    rng = SeededStreams(seed).get("titan-queries")
    b = TraceBuilder(num_processes=1, sample_file=sample_file)
    b.open()
    max_start = region_size - read_size * reads_per_query
    for q in range(num_queries):
        start = int(rng.integers(0, max_start + 1))
        # Align to the chunk grid, as Titan's declustered layout would.
        start -= start % read_size
        for i in range(reads_per_query):
            b.read(offset=start + i * read_size, length=read_size, field=q)
    b.close()
    return b.build()

"""Out-of-core dense LU decomposition trace (torus-wrap mapping,
Hendrickson & Womble — the paper's [5]).

Access pattern: the factorization sweeps column panels; for each
panel it seeks to the panel's offset, reads it, updates, seeks back
and writes it.  Panel offsets shrink as the active submatrix shrinks —
Table 3 prints six of these seek targets explicitly (60–67 MB), which
we reproduce verbatim as the first panel round, then continue the
shrinking pattern for ``extra_panels`` more.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TraceError
from repro.traces.generator._base import DEFAULT_SAMPLE_FILE, TraceBuilder
from repro.traces.ops import TraceHeader, TraceRecord

__all__ = ["generate_lu", "LU_SEEK_OFFSETS"]

#: Table 3's six "Data size (Bytes)" seek targets, in request order.
LU_SEEK_OFFSETS = (
    66617088,
    66092544,
    64518912,
    63994368,
    62945280,
    60322560,
)


def generate_lu(
    panel_bytes: int = 524288,
    extra_panels: int = 26,
    sample_file: str = DEFAULT_SAMPLE_FILE,
) -> Tuple[TraceHeader, List[TraceRecord]]:
    """Generate the LU trace.

    The six published offsets come first; the continuation shrinks by
    one ``panel_bytes`` stride per panel (the same decrement pattern
    visible in the published offsets, which differ by multiples of
    524288)."""
    if panel_bytes < 1:
        raise TraceError(f"panel_bytes must be >= 1, got {panel_bytes}")
    if extra_panels < 0:
        raise TraceError(f"extra_panels must be >= 0, got {extra_panels}")
    b = TraceBuilder(num_processes=1, sample_file=sample_file)
    b.open()
    offsets = list(LU_SEEK_OFFSETS)
    cursor = LU_SEEK_OFFSETS[-1]
    for _ in range(extra_panels):
        cursor -= 2 * panel_bytes
        if cursor < 0:
            break
        offsets.append(cursor)
    for panel_index, offset in enumerate(offsets):
        b.seek(offset)
        b.read(offset=offset, length=panel_bytes, field=panel_index)
        b.seek(offset)
        b.write(offset=offset, length=panel_bytes, field=panel_index)
    b.close()
    return b.build()

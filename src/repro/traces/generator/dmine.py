"""Data-mining (Dmine) trace: association-rule extraction from retail
data (Mueller's apriori, the paper's [6]).

Access pattern: apriori makes one full sequential pass over the
transaction database per candidate-set level; the paper's Table 1
reports synchronous reads of 131072 bytes plus seeks.  We generate
``passes`` sequential sweeps of 128 KiB reads over a ``dataset_size``
region, with a seek back to the start between passes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TraceError
from repro.traces.generator._base import DEFAULT_SAMPLE_FILE, TraceBuilder
from repro.traces.ops import TraceHeader, TraceRecord

__all__ = ["generate_dmine", "DMINE_READ_SIZE"]

#: Table 1's "Data size (Bytes)".
DMINE_READ_SIZE = 131072


def generate_dmine(
    dataset_size: int = 32 * 1024 * 1024,
    passes: int = 3,
    read_size: int = DMINE_READ_SIZE,
    compute_gap: float = 1e-4,
    sample_file: str = DEFAULT_SAMPLE_FILE,
) -> Tuple[TraceHeader, List[TraceRecord]]:
    """Generate the Dmine trace.

    Defaults: a 32 MiB retail dataset scanned 3 times (3 apriori
    levels) in 131072-byte synchronous reads.  ``compute_gap`` is the
    candidate-counting time between reads; raising it gives read-ahead
    room to overlap with computation.
    """
    if dataset_size < read_size:
        raise TraceError("dataset smaller than one read")
    if passes < 1:
        raise TraceError(f"passes must be >= 1, got {passes}")
    if compute_gap <= 0:
        raise TraceError(f"compute_gap must be positive, got {compute_gap}")
    b = TraceBuilder(num_processes=1, sample_file=sample_file)
    b.open(gap=compute_gap)
    reads_per_pass = dataset_size // read_size
    for level in range(passes):
        b.seek(0, gap=compute_gap)
        for i in range(reads_per_pass):
            b.read(offset=i * read_size, length=read_size, field=level,
                   gap=compute_gap)
    b.close(gap=compute_gap)
    return b.build()

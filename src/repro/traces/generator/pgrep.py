"""Parallel text search (Pgrep) trace: a parallel version of agrep
(Wu & Manber, the paper's [11]) for partial-match and approximate
searches.

Access pattern: ``num_processes`` workers each stream sequentially
through their own partition of the file in ``read_size`` chunks —
embarrassingly parallel scan, one open/close per worker.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TraceError
from repro.traces.generator._base import DEFAULT_SAMPLE_FILE, TraceBuilder
from repro.traces.ops import TraceHeader, TraceRecord

__all__ = ["generate_pgrep"]


def generate_pgrep(
    file_size: int = 64 * 1024 * 1024,
    num_processes: int = 4,
    read_size: int = 65536,
    sample_file: str = DEFAULT_SAMPLE_FILE,
) -> Tuple[TraceHeader, List[TraceRecord]]:
    """Generate the Pgrep trace.

    Workers interleave in the record stream (round-robin by chunk
    index), as a timestamp-ordered merged trace of concurrent
    processes would."""
    if num_processes < 1:
        raise TraceError(f"num_processes must be >= 1, got {num_processes}")
    if read_size < 1 or file_size < num_processes * read_size:
        raise TraceError("file too small for the partitioning")
    b = TraceBuilder(num_processes=num_processes, sample_file=sample_file)
    partition = file_size // num_processes
    chunks = partition // read_size
    for pid in range(num_processes):
        b.open(pid=pid)
        b.seek(pid * partition, pid=pid)
    for i in range(chunks):
        for pid in range(num_processes):
            b.read(
                offset=pid * partition + i * read_size,
                length=read_size,
                pid=pid,
            )
    for pid in range(num_processes):
        b.close(pid=pid)
    return b.build()

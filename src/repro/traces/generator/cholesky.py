"""Sparse Cholesky factorization trace (the paper's [4]).

Access pattern: supernodal sparse factorization reads frontal
matrices of wildly varying size — Table 4 prints the exact 16 request
sizes, from 4 bytes to ~2.4 MB.  Some requests revisit data adjacent
to earlier ones (buffer hits, the table's ~7e-5 ms reads); others jump
to fresh supernodes (the table's 0.004–0.025 ms "page fault" reads).

We reproduce the published sizes verbatim and craft offsets so
roughly the same requests revisit vs. jump as in the published
timings.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import TraceError
from repro.traces.generator._base import DEFAULT_SAMPLE_FILE, TraceBuilder
from repro.traces.ops import TraceHeader, TraceRecord

__all__ = ["generate_cholesky", "CHOLESKY_REQUEST_SIZES", "CHOLESKY_FRESH_REQUESTS"]

#: Table 4's 16 "Data size (Bytes)" values, in request order.
CHOLESKY_REQUEST_SIZES = (
    4,
    28044,
    28048,
    133692,
    136108,
    143452,
    132128,
    149052,
    144642,
    84140,
    217832,
    624548,
    916884,
    1592356,
    2018308,
    2446612,
)

#: 1-based request numbers whose published read times are the slow,
#: fault-y ones (0.004–0.025 ms in Table 4): these jump to fresh data.
CHOLESKY_FRESH_REQUESTS = frozenset({3, 5, 6, 7, 8, 9})


def generate_cholesky(
    sizes: Sequence[int] = CHOLESKY_REQUEST_SIZES,
    fresh_requests: frozenset = CHOLESKY_FRESH_REQUESTS,
    rounds: int = 1,
    compute_gap: float = 0.02,
    sample_file: str = DEFAULT_SAMPLE_FILE,
) -> Tuple[TraceHeader, List[TraceRecord]]:
    """Generate the Cholesky trace.

    Requests whose (1-based) index is in ``fresh_requests`` seek to an
    untouched region before reading (a frontier supernode); the rest
    revisit the warmest previously-read region large enough to cover
    them (an update touching a cached frontal matrix).  ``compute_gap``
    is the numeric-factorization time between I/O calls — sparse
    Cholesky is compute-heavy between supernode loads, which is what
    gives read-ahead the window to land.  ``rounds`` repeats the
    pattern at fresh offsets for longer traces.
    """
    if not sizes:
        raise TraceError("need at least one request size")
    if rounds < 1:
        raise TraceError(f"rounds must be >= 1, got {rounds}")
    if compute_gap <= 0:
        raise TraceError(f"compute_gap must be positive, got {compute_gap}")
    b = TraceBuilder(num_processes=1, sample_file=sample_file)
    b.open(gap=compute_gap)
    # The factor grows as one contiguous region (supernodes are appended
    # to the factor file); "warm" tracks how far it has been touched.
    base = 0
    frontier = 0  # next untouched byte, relative to base
    align = 4096
    for _round in range(rounds):
        for idx, size in enumerate(sizes, start=1):
            is_first_ever = _round == 0 and idx == 1
            if idx in fresh_requests or is_first_ever:
                # Frontier supernode: seek + read untouched factor data
                # appended right after everything read so far.
                offset = base + frontier
                b.seek(offset, gap=compute_gap)
                b.read(offset=offset, length=size, field=idx, gap=compute_gap)
                frontier += size
                frontier += (-frontier) % align
            else:
                # Revisit: an update re-reads the leading ``size`` bytes
                # of the already-assembled factor.  Fully warm when the
                # factor is at least that large; otherwise the tail
                # pages fault (and extend the warm prefix).
                offset = base
                b.seek(offset, gap=compute_gap)
                b.read(offset=offset, length=size, field=idx, gap=compute_gap)
                frontier = max(frontier, size)
                frontier += (-frontier) % align
        # Later rounds factor a fresh submatrix elsewhere in the file.
        base += frontier + 128 * align
        frontier = 0
    b.close(gap=compute_gap)
    return b.build()

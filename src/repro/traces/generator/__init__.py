"""Synthetic trace generators for the five paper applications.

Each generator returns ``(TraceHeader, [TraceRecord])`` following the
access pattern the paper (and its cited sources) describe, with the
request sizes the paper's tables print where they are given:

* :func:`generate_dmine` — association-rule mining: repeated
  sequential passes of 131072-byte reads over a retail dataset
  (Table 1's data size).
* :func:`generate_pgrep` — parallel approximate text search: several
  processes each streaming through a partition of the file.
* :func:`generate_lu` — out-of-core dense LU: panel-sized seeks at
  the exact Table 3 offsets, with reads and write-backs.
* :func:`generate_titan` — remote-sensing database: spatial queries
  reading ~187681-byte blocks (Table 2's data size).
* :func:`generate_cholesky` — sparse Cholesky: the 16 Table 4 request
  sizes, mixing revisits (cache-friendly) with frontier jumps.
"""

from repro.traces.generator.dmine import generate_dmine
from repro.traces.generator.pgrep import generate_pgrep
from repro.traces.generator.lu import generate_lu, LU_SEEK_OFFSETS
from repro.traces.generator.titan import generate_titan
from repro.traces.generator.cholesky import generate_cholesky, CHOLESKY_REQUEST_SIZES

from repro.errors import TraceError

#: name → generator, for CLI-style dispatch.
APPLICATIONS = {
    "dmine": generate_dmine,
    "pgrep": generate_pgrep,
    "lu": generate_lu,
    "titan": generate_titan,
    "cholesky": generate_cholesky,
}

__all__ = [
    "APPLICATIONS",
    "generate_trace",
    "generate_dmine",
    "generate_pgrep",
    "generate_lu",
    "generate_titan",
    "generate_cholesky",
    "LU_SEEK_OFFSETS",
    "CHOLESKY_REQUEST_SIZES",
]


def generate_trace(name: str, **kwargs):
    """Generate by application name (see :data:`APPLICATIONS`)."""
    try:
        gen = APPLICATIONS[name.lower()]
    except KeyError:
        raise TraceError(
            f"unknown application {name!r}; choices: {sorted(APPLICATIONS)}"
        ) from None
    return gen(**kwargs)

"""Shared helpers for the trace generators."""

from __future__ import annotations

from typing import List

from repro.traces.ops import IOOp, TraceHeader, TraceRecord

__all__ = ["TraceBuilder", "DEFAULT_SAMPLE_FILE", "DEFAULT_FILE_SIZE"]

DEFAULT_SAMPLE_FILE = "/data/sample.dat"
#: The paper issues operations against "a large file containing 1GB of data".
DEFAULT_FILE_SIZE = 1 * 1024 * 1024 * 1024


class TraceBuilder:
    """Accumulates records with monotonically advancing clocks."""

    def __init__(self, num_processes: int = 1, sample_file: str = DEFAULT_SAMPLE_FILE) -> None:
        self.num_processes = num_processes
        self.sample_file = sample_file
        self.records: List[TraceRecord] = []
        self._wall = 0.0
        self._proc = [0.0] * num_processes

    def _emit(self, op: IOOp, pid: int, offset: int = 0, length: int = 0,
              field: int = 0, gap: float = 1e-4) -> None:
        self._wall += gap
        self._proc[pid] += gap
        self.records.append(
            TraceRecord(
                op=op,
                num_records=1,
                pid=pid,
                field=field,
                wall_clock=self._wall,
                process_clock=self._proc[pid],
                offset=offset,
                length=length,
            )
        )

    def open(self, pid: int = 0, gap: float = 1e-4) -> None:
        self._emit(IOOp.OPEN, pid, gap=gap)

    def close(self, pid: int = 0, gap: float = 1e-4) -> None:
        self._emit(IOOp.CLOSE, pid, gap=gap)

    def read(self, offset: int, length: int, pid: int = 0, field: int = 0,
             gap: float = 1e-4) -> None:
        self._emit(IOOp.READ, pid, offset, length, field, gap)

    def write(self, offset: int, length: int, pid: int = 0, field: int = 0,
              gap: float = 1e-4) -> None:
        self._emit(IOOp.WRITE, pid, offset, length, field, gap)

    def seek(self, offset: int, pid: int = 0, gap: float = 1e-4) -> None:
        self._emit(IOOp.SEEK, pid, offset, gap=gap)

    def build(self) -> "tuple[TraceHeader, List[TraceRecord]]":
        header = TraceHeader(
            num_processes=self.num_processes,
            num_files=1,
            num_records=len(self.records),
            records_offset=0,  # recomputed by write_trace
            sample_file=self.sample_file,
        )
        return header, self.records

"""Trace file writing."""

from __future__ import annotations

import io
import os
from typing import List, Sequence, Union

from repro.errors import TraceError
from repro.traces.format import header_size, pack_header, pack_record
from repro.traces.ops import TraceHeader, TraceRecord

__all__ = ["write_trace"]


def write_trace(
    target: Union[str, os.PathLike, io.BufferedIOBase],
    header: TraceHeader,
    records: Sequence[TraceRecord],
) -> TraceHeader:
    """Write a trace file; returns the header actually written.

    The header's ``num_records`` and ``records_offset`` fields are
    recomputed from the data so they can never disagree with the
    record section (pass 0 for both when constructing the input).
    """
    if header.num_records not in (0, len(records)):
        raise TraceError(
            f"header says {header.num_records} records but {len(records)} given"
        )
    offset = header_size(header.sample_file)
    actual = TraceHeader(
        num_processes=header.num_processes,
        num_files=header.num_files,
        num_records=len(records),
        records_offset=offset,
        sample_file=header.sample_file,
    )
    payload = pack_header(actual) + b"".join(pack_record(r) for r in records)
    if isinstance(target, (str, os.PathLike)):
        with open(target, "wb") as fh:
            fh.write(payload)
    else:
        target.write(payload)
    return actual

"""Binary layout of trace files.

Layout (little-endian)::

    magic    4 bytes   b"UMDT"
    version  u16
    header   num_processes u32, num_files u32, num_records u64,
             records_offset u64,
             sample_file: u16 length + UTF-8 bytes
    padding  zeros up to records_offset
    records  num_records × RECORD_STRUCT

The header's ``records_offset`` is stored explicitly (the paper lists
"offset to the Trace records" as a header field), so readers seek to
it rather than assuming the header size.
"""

from __future__ import annotations

import struct

from repro.errors import TraceFormatError
from repro.traces.ops import IOOp, TraceHeader, TraceRecord

__all__ = [
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "RECORD_STRUCT",
    "pack_header",
    "unpack_header",
    "pack_record",
    "unpack_record",
]

TRACE_MAGIC = b"UMDT"
TRACE_VERSION = 1

_FIXED_HEADER = struct.Struct("<4sHIIQQH")  # magic, ver, procs, files, nrec, off, namelen
#: op u8, num_records u32, pid u32, field u32, wall f64, proc f64, offset u64, length u64
RECORD_STRUCT = struct.Struct("<BIIIddQQ")


def pack_header(header: TraceHeader) -> bytes:
    """Serialize a header (records_offset must already account for the
    encoded header length; :func:`repro.traces.writer.write_trace`
    computes it)."""
    name = header.sample_file.encode("utf-8")
    if len(name) > 0xFFFF:
        raise TraceFormatError("sample file name too long")
    fixed = _FIXED_HEADER.pack(
        TRACE_MAGIC,
        TRACE_VERSION,
        header.num_processes,
        header.num_files,
        header.num_records,
        header.records_offset,
        len(name),
    )
    return fixed + name


def header_size(sample_file: str) -> int:
    """Encoded byte length of a header naming ``sample_file``."""
    return _FIXED_HEADER.size + len(sample_file.encode("utf-8"))


def unpack_header(data: bytes) -> TraceHeader:
    """Parse a header from the start of ``data``."""
    if len(data) < _FIXED_HEADER.size:
        raise TraceFormatError("truncated trace header")
    magic, version, procs, files, nrec, offset, namelen = _FIXED_HEADER.unpack_from(data)
    if magic != TRACE_MAGIC:
        raise TraceFormatError(f"bad magic {magic!r} (not a UMD trace file)")
    if version != TRACE_VERSION:
        raise TraceFormatError(f"unsupported trace version {version}")
    end = _FIXED_HEADER.size + namelen
    if len(data) < end:
        raise TraceFormatError("truncated sample-file name in header")
    name = data[_FIXED_HEADER.size:end].decode("utf-8")
    return TraceHeader(
        num_processes=procs,
        num_files=files,
        num_records=nrec,
        records_offset=offset,
        sample_file=name,
    )


def pack_record(record: TraceRecord) -> bytes:
    return RECORD_STRUCT.pack(
        int(record.op),
        record.num_records,
        record.pid,
        record.field,
        record.wall_clock,
        record.process_clock,
        record.offset,
        record.length,
    )


def unpack_record(data: bytes, offset: int = 0) -> TraceRecord:
    if len(data) - offset < RECORD_STRUCT.size:
        raise TraceFormatError("truncated trace record")
    op, nrec, pid, fieldv, wall, proc, off, length = RECORD_STRUCT.unpack_from(
        data, offset
    )
    try:
        op_enum = IOOp(op)
    except ValueError:
        raise TraceFormatError(f"invalid op code {op}") from None
    return TraceRecord(
        op=op_enum,
        num_records=nrec,
        pid=pid,
        field=fieldv,
        wall_clock=wall,
        process_clock=proc,
        offset=off,
        length=length,
    )

"""Trace file reading."""

from __future__ import annotations

import io
import os
from typing import Iterator, List, Tuple, Union

from repro.errors import TraceFormatError
from repro.traces.format import RECORD_STRUCT, unpack_header, unpack_record
from repro.traces.ops import TraceHeader, TraceRecord

__all__ = ["read_trace", "iter_trace"]


def _load(source: Union[str, os.PathLike, bytes, io.BufferedIOBase]) -> bytes:
    if isinstance(source, bytes):
        return source
    if isinstance(source, (str, os.PathLike)):
        with open(source, "rb") as fh:
            return fh.read()
    return source.read()


def read_trace(
    source: Union[str, os.PathLike, bytes, io.BufferedIOBase],
) -> Tuple[TraceHeader, List[TraceRecord]]:
    """Parse a whole trace file into (header, records)."""
    return_header, records = None, []
    data = _load(source)
    return_header = unpack_header(data)
    records = list(_iter_records(data, return_header))
    return return_header, records


def iter_trace(
    source: Union[str, os.PathLike, bytes, io.BufferedIOBase],
) -> Iterator[TraceRecord]:
    """Stream records from a trace file (header validated first)."""
    data = _load(source)
    header = unpack_header(data)
    yield from _iter_records(data, header)


def _iter_records(data: bytes, header: TraceHeader) -> Iterator[TraceRecord]:
    offset = header.records_offset
    size = RECORD_STRUCT.size
    end_needed = offset + header.num_records * size
    if len(data) < end_needed:
        raise TraceFormatError(
            f"trace claims {header.num_records} records but file is short "
            f"({len(data)} < {end_needed} bytes)"
        )
    for i in range(header.num_records):
        yield unpack_record(data, offset + i * size)

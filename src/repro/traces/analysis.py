"""Trace characterization.

Summarizes a record stream the way an I/O-workload study would (the
paper's UMD source, CS-TR-3802, is exactly such a characterization):
operation mix, bytes moved, request-size distribution, sequentiality,
and data reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import TraceError
from repro.traces.ops import IOOp, TraceRecord

__all__ = ["TraceSummary", "summarize"]


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate characterization of one trace."""

    record_count: int
    op_counts: Dict[IOOp, int]
    bytes_read: int
    bytes_written: int
    unique_bytes: int
    sequential_reads: int
    read_count: int
    min_request: int
    max_request: int
    processes: int

    @property
    def sequentiality(self) -> float:
        """Fraction of reads that continue exactly where the previous
        read by the same process ended."""
        return self.sequential_reads / self.read_count if self.read_count else 0.0

    @property
    def reuse_factor(self) -> float:
        """Bytes transferred per unique byte touched (>= 1 means
        re-reading; < 1 impossible)."""
        moved = self.bytes_read + self.bytes_written
        return moved / self.unique_bytes if self.unique_bytes else 0.0


def _merge_intervals(intervals: List[Tuple[int, int]]) -> int:
    """Total length covered by a set of [start, end) intervals."""
    if not intervals:
        return 0
    intervals.sort()
    covered = 0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            covered += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    covered += cur_end - cur_start
    return covered


def summarize(records: Sequence[TraceRecord]) -> TraceSummary:
    """Characterize ``records`` (any iterable of trace records)."""
    if not records:
        raise TraceError("cannot summarize an empty trace")
    op_counts: Dict[IOOp, int] = {op: 0 for op in IOOp}
    bytes_read = bytes_written = 0
    intervals: List[Tuple[int, int]] = []
    sequential = 0
    read_count = 0
    sizes: List[int] = []
    last_read_end: Dict[int, int] = {}
    pids = set()

    for r in records:
        op_counts[r.op] += 1
        pids.add(r.pid)
        if r.op is IOOp.READ:
            read_count += 1
            bytes_read += r.length
            sizes.append(r.length)
            intervals.append((r.offset, r.offset + r.length))
            if last_read_end.get(r.pid) == r.offset:
                sequential += 1
            last_read_end[r.pid] = r.offset + r.length
        elif r.op is IOOp.WRITE:
            bytes_written += r.length
            sizes.append(r.length)
            intervals.append((r.offset, r.offset + r.length))

    return TraceSummary(
        record_count=len(records),
        op_counts=op_counts,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        unique_bytes=_merge_intervals(intervals),
        sequential_reads=sequential,
        read_count=read_count,
        min_request=min(sizes) if sizes else 0,
        max_request=max(sizes) if sizes else 0,
        processes=len(pids),
    )

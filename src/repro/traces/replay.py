"""Trace replay through the CLI virtual machine.

"Our simulator reads each trace file ... and performs the I/O
operations on a local disk" (§3.3).  The replay dispatch loop is a
CIL method body (fetch a record, branch on its op code, call the
class-library intrinsic for that op), so the measured path includes
JIT compilation on first entry and interpreter dispatch per record —
the same structure as a C# replayer on the SSCLI.

Per-record semantics follow §3.3:

* reads and writes are performed at the record's offset;
* "seek operations are performed from the beginning of the file to
  the offset as mentioned in the trace files";
* each open/close/read/write/seek is timed individually.

Replay can be **sequential** (one stream replays all records in trace
order — the paper's configuration) or **concurrent**
(``ReplayConfig(concurrent=True)``: one managed thread per traced
process id, each replaying its own records, contending on the shared
cache and disk — how the multi-process traces such as Pgrep actually
ran).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cli import AssemblyBuilder, CliRuntime, MethodBuilder
from repro.errors import TraceError
from repro.io import CacheParams, FileSystem, FsParams
from repro.io.prefetch import PrefetchPolicy, make_prefetch_policy
from repro.sim import Engine
from repro.sim.probe import NULL_PROBE
from repro.storage import Disk, DiskGeometry, DiskParams
from repro.traces.ops import IOOp, TraceHeader, TraceRecord
from repro.traces.timing import OpTimings
from repro.units import GiB, to_ms

__all__ = ["ReplayConfig", "RecordTiming", "ReplayResult", "TraceReplayer"]


@dataclass(frozen=True)
class ReplayConfig:
    """Environment for one replay.

    ``warmup=True`` runs the whole trace once before the measured
    pass, leaving the JIT and buffer cache hot (how steady-state
    tables such as 1–2 read); ``warmup=False`` measures a cold VM and
    cold cache (how the fault-sensitive Tables 3–4 and the web-server
    Table 6 behave).

    ``pace=True`` honours the trace's inter-record wall-clock gaps, so
    asynchronous prefetch has the time window it had in the original
    run.

    ``concurrent=True`` replays each traced process id on its own
    managed thread.

    ``tracer`` (a :class:`repro.obs.Tracer`) turns on unified
    observability for the whole replay stack: the engine, disk,
    cache, file system, JIT and the replayer itself all emit spans
    into it, exportable via :mod:`repro.obs.export`.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects
    deterministic disk faults during the replay; pair it with
    ``retry`` (a :class:`repro.faults.RetryPolicy`) so reads/writes
    ride out transient faults — the counts land in
    ``ReplayResult.faults_injected`` / ``ReplayResult.retries``.

    ``telemetry`` (a :class:`repro.obs.Telemetry` hub) attaches a
    windowed-metrics sampler to the replay engine for the run's
    duration; ``telemetry_labels`` are stamped on its records, and
    ``telemetry_rules`` / ``telemetry_interval`` override the hub's
    SLO rules and sampling interval for this replay.  Sampling rides
    the engine's background-call channel, so it never perturbs the
    replayed timeline (``ReplayResult`` is byte-identical with or
    without it).
    """

    file_size: int = 1 * GiB
    cache_pages: int = 16384
    prefetch_policy: str = "fixed"
    prefetch_window: int = 8
    warmup: bool = False
    pace: bool = True
    concurrent: bool = False
    scheduler: str = "fcfs"
    # When set, the replayer attaches an instrumentation Probe limited
    # to these categories ("disk", "cache", "fs") and returns it in
    # ReplayResult.probe (for timelines/diagnostics).
    probe_categories: Optional[Tuple[str, ...]] = None
    # Unified observability sink (repro.obs.Tracer); None = disabled.
    tracer: Optional[object] = None
    # Deterministic fault injection (repro.faults.FaultPlan) and the
    # retry policy (repro.faults.RetryPolicy) replayed reads/writes
    # run under; None disables either side.
    fault_plan: Optional[object] = None
    retry: Optional[object] = None
    # Telemetry hub (repro.obs.Telemetry) and per-replay attachment
    # overrides; None disables sampling.
    telemetry: Optional[object] = None
    telemetry_labels: Tuple[Tuple[str, object], ...] = ()
    telemetry_rules: Optional[Tuple[object, ...]] = None
    telemetry_interval: Optional[float] = None
    fs_params: FsParams = field(default_factory=FsParams)
    disk_params: DiskParams = field(default_factory=DiskParams)
    disk_geometry: DiskGeometry = field(default_factory=DiskGeometry)

    def make_policy(self) -> PrefetchPolicy:
        if self.prefetch_policy == "fixed":
            return make_prefetch_policy("fixed", window=self.prefetch_window)
        return make_prefetch_policy(self.prefetch_policy)


@dataclass(frozen=True)
class RecordTiming:
    """Measured latency of one trace record.

    ``index`` is the record's position in the original trace, so
    results align with the input regardless of replay concurrency.
    """

    index: int
    record: TraceRecord
    seconds: float

    @property
    def ms(self) -> float:
        return to_ms(self.seconds)


@dataclass
class ReplayResult:
    """Everything measured during the replay pass."""

    application: str
    timings: OpTimings
    per_record: List[RecordTiming]
    total_time: float
    cache_hits: int
    cache_misses: int
    jit_methods: int
    instructions: int
    streams: int = 1
    probe: Optional[object] = None  # repro.sim.Probe when requested
    faults_injected: int = 0
    retries: int = 0
    retries_exhausted: int = 0

    def rows_for(self, op: IOOp) -> List[Tuple[int, float]]:
        """(data size, latency ms) rows for one op — the layout of the
        paper's Tables 3 and 4."""
        out = []
        for rt in self.per_record:
            if rt.record.op is op:
                size = rt.record.length if op in (IOOp.READ, IOOp.WRITE) else rt.record.offset
                out.append((size, rt.ms))
        return out


class _ReplayStream:
    """One replay stream: a subsequence of records replayed in order
    by one managed thread."""

    def __init__(self, stream_id: int, indexed_records: List[Tuple[int, TraceRecord]]) -> None:
        self.stream_id = stream_id
        self.indexed_records = indexed_records
        self.cursor = -1
        self.handles: Dict[int, object] = {}
        self._last_wall: Optional[float] = None

    @property
    def current(self) -> Tuple[int, TraceRecord]:
        return self.indexed_records[self.cursor]

    def reset(self) -> None:
        self.cursor = -1
        self._last_wall = None


class _ReplaySession:
    """Shared replay state: file system, measurement sinks, streams."""

    def __init__(
        self,
        engine: Engine,
        fs: FileSystem,
        sample_path: str,
        streams: List[_ReplayStream],
        pace: bool,
        retrier=None,
    ) -> None:
        self.engine = engine
        self.fs = fs
        self.sample_path = sample_path
        self.streams = {s.stream_id: s for s in streams}
        self.pace = pace
        self.retrier = retrier
        self.timings = OpTimings()
        self.per_record: List[RecordTiming] = []
        self.measuring = True
        # Bound methods hoisted for the per-record dispatch path.
        self._timeout = engine.timeout

    def reset_for_measurement(self) -> None:
        for stream in self.streams.values():
            stream.reset()
        self.timings = OpTimings()
        self.per_record = []
        self.measuring = True

    def _stream(self, sid: int) -> _ReplayStream:
        try:
            return self.streams[sid]
        except KeyError:
            raise TraceError(f"unknown replay stream {sid}") from None

    # -- intrinsics (all take the stream id) --------------------------------

    def fetch(self, sid: int):
        """Advance the stream; returns the next record's op code or -1."""
        stream = self._stream(sid)
        records = stream.indexed_records
        cursor = stream.cursor = stream.cursor + 1
        timeout = self._timeout
        if cursor >= len(records):
            yield timeout(0.0)
            return -1
        _index, record = records[cursor]
        if self.pace and stream._last_wall is not None:
            gap = record.wall_clock - stream._last_wall
            yield timeout(gap if gap > 0 else 0.0)
        else:
            yield timeout(0.0)
        stream._last_wall = record.wall_clock
        return int(record.op)

    def _handle_for(self, stream: _ReplayStream, pid: int):
        handle = stream.handles.get(pid)
        if handle is None or not handle.open:
            index, _record = stream.current
            raise TraceError(
                f"record {index}: pid {pid} performs I/O without an open file"
            )
        return handle

    def _finish(self, stream: _ReplayStream, op: IOOp, started: float) -> None:
        elapsed = self.engine.now - started
        index, record = stream.current
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.complete(
                f"replay.{op.name.lower()}", "replay", started,
                tid=stream.stream_id, index=index, pid=record.pid,
                offset=record.offset, length=record.length,
                measured=self.measuring,
            )
        if self.measuring:
            self.timings.record(op, elapsed)
            self.per_record.append(RecordTiming(index, record, elapsed))

    def do_open(self, sid: int):
        stream = self._stream(sid)
        _index, record = stream.current
        t0 = self.engine.now
        handle = yield from self.fs.open(self.sample_path, writable=True)
        stream.handles[record.pid] = handle
        self._finish(stream, IOOp.OPEN, t0)

    def do_close(self, sid: int):
        stream = self._stream(sid)
        _index, record = stream.current
        handle = self._handle_for(stream, record.pid)
        t0 = self.engine.now
        yield from self.fs.close(handle)
        del stream.handles[record.pid]
        self._finish(stream, IOOp.CLOSE, t0)

    def do_read(self, sid: int):
        stream = self._stream(sid)
        _index, record = stream.current
        handle = self._handle_for(stream, record.pid)
        t0 = self.engine.now
        # The explicit-offset read is idempotent, so it can run under a
        # retry policy unchanged: a retried attempt re-reads the same
        # range without moving the handle.
        if self.retrier is not None:
            yield from self.retrier.call(
                lambda: self.fs.read(handle, record.length,
                                     offset=record.offset),
                op="replay.read")
        else:
            yield from self.fs.read(handle, record.length, offset=record.offset)
        self._finish(stream, IOOp.READ, t0)

    def do_write(self, sid: int):
        stream = self._stream(sid)
        _index, record = stream.current
        handle = self._handle_for(stream, record.pid)
        t0 = self.engine.now
        if self.retrier is not None:
            yield from self.retrier.call(
                lambda: self.fs.write(handle, record.length,
                                      offset=record.offset),
                op="replay.write")
        else:
            yield from self.fs.write(handle, record.length, offset=record.offset)
        self._finish(stream, IOOp.WRITE, t0)

    def do_seek(self, sid: int):
        stream = self._stream(sid)
        _index, record = stream.current
        handle = self._handle_for(stream, record.pid)
        t0 = self.engine.now
        yield from self.fs.seek(handle, record.offset)
        self._finish(stream, IOOp.SEEK, t0)


def build_replay_method():
    """The CIL dispatch loop: fetch → branch on op → intrinsic → loop.
    Takes the stream id as its argument."""
    return (
        MethodBuilder("Replay")
        .arg("sid").local("op")
        .label("top")
        .ldarg("sid").call_intrinsic("Trace.Fetch", 1, True)
        .stloc("op")
        .ldloc("op").ldc(0).clt().brtrue("done")       # op < 0 → end of trace
        .ldloc("op").ldc(int(IOOp.OPEN)).ceq().brtrue("op_open")
        .ldloc("op").ldc(int(IOOp.CLOSE)).ceq().brtrue("op_close")
        .ldloc("op").ldc(int(IOOp.READ)).ceq().brtrue("op_read")
        .ldloc("op").ldc(int(IOOp.WRITE)).ceq().brtrue("op_write")
        .ldarg("sid").call_intrinsic("Trace.Seek", 1, False).br("top")
        .label("op_open").ldarg("sid").call_intrinsic("Trace.Open", 1, False).br("top")
        .label("op_close").ldarg("sid").call_intrinsic("Trace.Close", 1, False).br("top")
        .label("op_read").ldarg("sid").call_intrinsic("Trace.Read", 1, False).br("top")
        .label("op_write").ldarg("sid").call_intrinsic("Trace.Write", 1, False).br("top")
        .label("done")
        .ret()
        .build()
    )


class TraceReplayer:
    """Builds a fresh simulated machine + VM and replays one trace."""

    def __init__(self, config: Optional[ReplayConfig] = None) -> None:
        self.config = config or ReplayConfig()

    def _make_streams(self, records: Sequence[TraceRecord]) -> List[_ReplayStream]:
        indexed = list(enumerate(records))
        if not self.config.concurrent:
            return [_ReplayStream(0, indexed)]
        by_pid: Dict[int, List[Tuple[int, TraceRecord]]] = {}
        for index, record in indexed:
            by_pid.setdefault(record.pid, []).append((index, record))
        return [
            _ReplayStream(sid, recs)
            for sid, (_pid, recs) in enumerate(sorted(by_pid.items()))
        ]

    def replay(
        self,
        header: TraceHeader,
        records: Sequence[TraceRecord],
        application: str = "trace",
    ) -> ReplayResult:
        cfg = self.config
        engine = Engine(tracer=cfg.tracer)
        engine.tracer.name_process(f"replay:{application}")
        probe = None
        if cfg.probe_categories is not None:
            from repro.sim import Probe

            probe = Probe(engine, categories=set(cfg.probe_categories))
        injector = None
        if cfg.fault_plan is not None:
            from repro.faults import FaultInjector

            injector = FaultInjector(engine, cfg.fault_plan)
        disk = Disk(
            engine,
            geometry=cfg.disk_geometry,
            params=cfg.disk_params,
            scheduler=cfg.scheduler,
            name="local-disk",
            probe=probe if probe is not None else NULL_PROBE,
            injector=injector,
        )
        fs = FileSystem(
            engine,
            disk,
            params=cfg.fs_params,
            cache_params=CacheParams(capacity_pages=cfg.cache_pages),
            prefetch_policy=cfg.make_policy(),
            probe=probe,
        )
        runtime = CliRuntime(engine)
        retrier = None
        if cfg.retry is not None:
            from repro.faults import Retrier
            from repro.rng import SeededStreams

            seed = cfg.fault_plan.seed if cfg.fault_plan is not None else 0
            retrier = Retrier(
                engine, cfg.retry, category="replay",
                rng=SeededStreams(seed).get("replay-retry-jitter"),
            )
        streams = self._make_streams(records)
        session = _ReplaySession(
            engine, fs, header.sample_file, streams, pace=cfg.pace,
            retrier=retrier,
        )
        runtime.register_intrinsics(
            {
                "Trace.Fetch": session.fetch,
                "Trace.Open": session.do_open,
                "Trace.Close": session.do_close,
                "Trace.Read": session.do_read,
                "Trace.Write": session.do_write,
                "Trace.Seek": session.do_seek,
            }
        )
        ab = AssemblyBuilder("TraceBenchmark")
        ab.add_method("TraceBench", build_replay_method())
        assembly = ab.build()

        def run_all_streams():
            threads = [
                runtime.create_thread(
                    runtime.find_method("TraceBench::Replay"),
                    [stream.stream_id],
                    name=f"replay-{stream.stream_id}",
                ).start()
                for stream in streams
            ]
            for thread in threads:
                yield from thread.join()

        def main():
            yield from runtime.load_assembly(assembly)
            # Create the sample file the trace operates on (§3.1: "a
            # large file containing 1GB of data").
            yield from fs.create(header.sample_file, size_bytes=cfg.file_size)
            if cfg.warmup:
                session.measuring = False
                yield from run_all_streams()
                session.reset_for_measurement()
            t0 = engine.now
            yield from run_all_streams()
            return engine.now - t0

        sampler = None
        if cfg.telemetry is not None:
            sampler = cfg.telemetry.attach(
                engine,
                rules=cfg.telemetry_rules,
                interval=cfg.telemetry_interval,
                **dict(cfg.telemetry_labels),
            )
        total = engine.run_process(main())
        if sampler is not None:
            sampler.finish()
        session.per_record.sort(key=lambda rt: rt.index)
        return ReplayResult(
            application=application,
            timings=session.timings,
            per_record=session.per_record,
            total_time=total,
            cache_hits=fs.cache.stats.hits,
            cache_misses=fs.cache.stats.misses,
            jit_methods=runtime.jit.methods_compiled.value,
            instructions=runtime.interpreter.instructions_executed.value,
            streams=len(streams),
            probe=probe,
            faults_injected=injector.injected.value if injector else 0,
            retries=retrier.retries.value if retrier else 0,
            retries_exhausted=retrier.exhausted.value if retrier else 0,
        )

"""Command-line trace tooling::

    python -m repro.traces generate dmine -o dmine.umdt
    python -m repro.traces info dmine.umdt
    python -m repro.traces replay dmine.umdt [--cold] [--policy adaptive]
"""

from __future__ import annotations

import argparse
import sys

from repro.traces import (
    APPLICATIONS,
    IOOp,
    ReplayConfig,
    TraceReplayer,
    generate_trace,
    read_trace,
    write_trace,
)


def _cmd_generate(args: argparse.Namespace) -> int:
    header, records = generate_trace(args.application)
    out = args.output or f"{args.application}.umdt"
    written = write_trace(out, header, records)
    print(f"wrote {written.num_records} records to {out} "
          f"(sample file {written.sample_file})")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.traces.analysis import summarize

    header, records = read_trace(args.trace)
    print(f"trace          : {args.trace}")
    print(f"processes      : {header.num_processes}")
    print(f"files          : {header.num_files}")
    print(f"records        : {header.num_records}")
    print(f"records offset : {header.records_offset}")
    print(f"sample file    : {header.sample_file}")
    summary = summarize(records)
    for op in IOOp:
        count = summary.op_counts[op]
        if count:
            print(f"  {op.name.lower():5s}: {count:6d} records")
    print(f"bytes read     : {summary.bytes_read}")
    print(f"bytes written  : {summary.bytes_written}")
    print(f"unique bytes   : {summary.unique_bytes}")
    print(f"request sizes  : {summary.min_request} .. {summary.max_request}")
    print(f"sequentiality  : {summary.sequentiality:.2%}")
    print(f"reuse factor   : {summary.reuse_factor:.2f}x")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    header, records = read_trace(args.trace)
    cfg = ReplayConfig(warmup=not args.cold, prefetch_policy=args.policy)
    result = TraceReplayer(cfg).replay(header, records, args.trace)
    print(f"replayed {len(records)} records in {result.total_time:.4f} "
          "simulated seconds")
    for stats in result.timings.all_stats():
        print(f"  {stats}")
    print(f"cache: {result.cache_hits} hits / {result.cache_misses} misses; "
          f"JIT methods: {result.jit_methods}; "
          f"CIL instructions: {result.instructions}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.traces")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate an application trace")
    gen.add_argument("application", choices=sorted(APPLICATIONS))
    gen.add_argument("-o", "--output", help="output path (default <app>.umdt)")
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="describe a trace file")
    info.add_argument("trace")
    info.set_defaults(func=_cmd_info)

    rep = sub.add_parser("replay", help="replay a trace through the CLI VM")
    rep.add_argument("trace")
    rep.add_argument("--cold", action="store_true",
                     help="measure a cold VM and cache (no warm-up pass)")
    rep.add_argument("--policy", default="fixed",
                     choices=("none", "fixed", "adaptive"),
                     help="prefetch policy (default fixed)")
    rep.set_defaults(func=_cmd_replay)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Trace record structures (paper §3.2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.errors import TraceError

__all__ = ["IOOp", "TraceHeader", "TraceRecord"]


class IOOp(enum.IntEnum):
    """Operation codes, exactly as the paper assigns them:
    "(Open =0, Close=1, Read=2, Write=3, Seek=4)"."""

    OPEN = 0
    CLOSE = 1
    READ = 2
    WRITE = 3
    SEEK = 4


@dataclass(frozen=True)
class TraceHeader:
    """Trace file header.

    "The trace file header contains parameters for number of
    processes, number of files, number of records, offset to the Trace
    records and the sample file on which the I/O operations will be
    issued."
    """

    num_processes: int
    num_files: int
    num_records: int
    records_offset: int
    sample_file: str

    def __post_init__(self) -> None:
        if self.num_processes < 1:
            raise TraceError(f"num_processes must be >= 1, got {self.num_processes}")
        if self.num_files < 1:
            raise TraceError(f"num_files must be >= 1, got {self.num_files}")
        if self.num_records < 0:
            raise TraceError(f"negative num_records: {self.num_records}")
        if self.records_offset < 0:
            raise TraceError(f"negative records_offset: {self.records_offset}")
        if not self.sample_file:
            raise TraceError("sample_file must be non-empty")


@dataclass(frozen=True)
class TraceRecord:
    """One trace record.

    "Each trace record contains parameters corresponding to the I/O
    operation to be performed, number of records for which the I/O
    operation need to be performed, process id, field, wall clock
    time, process clock time, offset, length."
    """

    op: IOOp
    num_records: int = 1
    pid: int = 0
    field: int = 0
    wall_clock: float = 0.0
    process_clock: float = 0.0
    offset: int = 0
    length: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.op, IOOp):
            object.__setattr__(self, "op", IOOp(self.op))
        if self.num_records < 1:
            raise TraceError(f"num_records must be >= 1, got {self.num_records}")
        if self.pid < 0:
            raise TraceError(f"negative pid: {self.pid}")
        if self.offset < 0:
            raise TraceError(f"negative offset: {self.offset}")
        if self.length < 0:
            raise TraceError(f"negative length: {self.length}")
        if self.wall_clock < 0 or self.process_clock < 0:
            raise TraceError("clock values must be >= 0")

"""Time-series telemetry: windowed samples of the live metrics registry.

End-of-run snapshots (``MetricsRegistry.snapshot()``) answer "what did
the run total?"; this module answers "*when* did it happen?".  A
:class:`TelemetrySampler` rides a simulation as a background scraper:
every ``interval`` simulated seconds it walks the engine's registry and
emits one ``sample`` record per metric describing that *window* —
deltas for counters, exact time-weighted window means for utilization
signals, and per-window count/sum/min/max/mean plus histogram-backed
p50/p90/p99 for tallies.  A fault that craters p99 for two simulated
seconds mid-run is a visible dip in the series even when the end-of-run
totals recover.

Determinism is load-bearing.  The sampler schedules its ticks with
:meth:`~repro.sim.engine.Engine.schedule_background`, whose contract
guarantees sampling can neither extend a run past its last foreground
event nor perturb foreground event ordering — so a run with telemetry
produces byte-identical *simulated* results to one without, and two
same-seed telemetry runs produce byte-identical series files
(:func:`write_series_jsonl` sorts keys and rounds floats).

SLO rules (:mod:`repro.obs.slo`) evaluate at each sample boundary;
their alert instants land in the same stream, interleaved at the
window where they fired.

Labels travel with every record: registry labels (``device=``,
``server=``, ``architecture=``), sampler-level labels (``node=`` for
the cluster item), and a derived ``layer`` label from
:func:`metric_layer` so series group the same way trace analysis does.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.obs.analysis import QUANTILES, percentiles
from repro.obs.slo import AlertRule, SloEvaluator

__all__ = [
    "TelemetryConfig",
    "TelemetrySampler",
    "Telemetry",
    "metric_layer",
]

SERIES_SCHEMA = "repro.obs.timeseries"
SERIES_VERSION = 1

#: Metric-name prefix → architectural layer (first match wins).
#: Mirrors the span-side table in :mod:`repro.obs.analysis`, but over
#: registry metric names instead of span names.
_LAYER_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("cache.", "cache"),
    ("fs.", "filesystem"),
    ("stream.", "filesystem"),
    ("prefetch.", "filesystem"),
    ("heap.", "vm"),
    ("interp.", "vm"),
    ("runtime.", "vm"),
    ("jit.", "jit"),
    ("server.", "webserver"),
    ("webserver.", "webserver"),
    ("faults.", "resilience"),
    ("retry.", "resilience"),
    ("workload.", "client"),
    ("cluster.", "cluster"),
    ("lb.", "cluster"),
)


def metric_layer(name: str, labels: Optional[Dict[str, Any]] = None) -> str:
    """Architectural layer of a registry metric.

    Registry labels win over name prefixes: anything labeled with a
    ``device`` is the disk layer regardless of the device's name
    (disks register under their instance name, e.g. ``ssd0.service``),
    and a ``server`` label marks the webserver layer.
    """
    if labels:
        if "device" in labels:
            return "disk"
        if "server" in labels:
            return "webserver"
    for prefix, layer in _LAYER_PREFIXES:
        if name.startswith(prefix):
            return layer
    if ".retry." in name or name.endswith(".retries"):
        return "resilience"
    return "other"


@dataclass(frozen=True)
class TelemetryConfig:
    """Sampling policy for one :class:`TelemetrySampler`.

    ``interval`` is simulated seconds between scrapes (default 100
    simulated ms).  ``metrics`` optionally restricts sampling to
    names matching any of the given prefixes (exact names match too);
    ``None`` samples everything registered.  ``rules`` are evaluated
    at every sample boundary; ``labels`` are stamped on every record.
    """

    interval: float = 0.1
    metrics: Optional[Tuple[str, ...]] = None
    rules: Tuple[AlertRule, ...] = ()
    labels: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise SimulationError(
                f"telemetry interval must be > 0 sim-seconds, "
                f"got {self.interval}"
            )

    def wants(self, name: str) -> bool:
        if self.metrics is None:
            return True
        return any(name == m or name.startswith(m) for m in self.metrics)


class TelemetrySampler:
    """Scrapes one engine's metrics registry on simulated time.

    Construction does not touch the engine; :meth:`start` schedules
    the first background tick (call it before running the workload)
    and :meth:`finish` takes a final partial-window scrape, appends
    the SLO summaries, and hands the records to the owning
    :class:`Telemetry` hub.

    The per-metric cursor state (previous counts, counter values,
    time-weighted integrals) lives here, so windows are deltas —
    each observation is counted in exactly one window.
    """

    def __init__(
        self,
        engine: Any,
        config: Optional[TelemetryConfig] = None,
        hub: Optional["Telemetry"] = None,
        **labels: Any,
    ) -> None:
        self.engine = engine
        self.config = config or TelemetryConfig()
        self.hub = hub
        self.labels: Dict[str, Any] = dict(self.config.labels)
        self.labels.update(labels)
        self.records: List[Dict[str, Any]] = []
        self.evaluator = SloEvaluator(list(self.config.rules))
        self._cursors: Dict[str, Tuple[str, Any]] = {}
        self._window = 0
        self._last_t: Optional[float] = None
        self._started = False
        self._finished = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "TelemetrySampler":
        """Record the stream header and schedule the first tick."""
        if self._started:
            raise SimulationError("TelemetrySampler.start() called twice")
        self._started = True
        self._last_t = self.engine.now
        header: Dict[str, Any] = {
            "kind": "telemetry.header",
            "schema": SERIES_SCHEMA,
            "version": SERIES_VERSION,
            "interval": self.config.interval,
            "start": self.engine.now,
        }
        if self.labels:
            header["labels"] = dict(self.labels)
        if self.config.rules:
            header["rules"] = [r.slo.describe() for r in self.config.rules]
        self.records.append(header)
        self.engine.schedule_background(self._tick, self.config.interval)
        return self

    def _tick(self) -> None:
        if self._finished:
            return
        self.sample()
        self.engine.schedule_background(self._tick, self.config.interval)

    def finish(self) -> List[Dict[str, Any]]:
        """Close the stream: final partial window + SLO summaries.

        Returns this sampler's records (also appended to the hub's
        stream when one owns the sampler).  Idempotent.
        """
        if not self._started:
            raise SimulationError("TelemetrySampler.finish() before start()")
        if self._finished:
            return self.records
        self._finished = True
        if self.engine.now > (self._last_t or 0.0):
            self.sample()
        for summary in self.evaluator.summaries():
            self.records.append(self._stamp(summary))
        if self.hub is not None:
            self.hub.records.extend(self.records)
        return self.records

    # -- scraping -----------------------------------------------------------

    def sample(self) -> Dict[str, Dict[str, Any]]:
        """Scrape one window now; returns ``{metric: window_stats}``.

        Called automatically by the background tick; callable directly
        for event-aligned extra windows.  Reads collectors only — a
        scrape never mutates simulation state.
        """
        t0, t1 = self._last_t or 0.0, self.engine.now
        registry = self.engine.metrics
        window_stats: Dict[str, Dict[str, Any]] = {}
        samples: List[Dict[str, Any]] = []
        for name in sorted(registry.names()):
            if not self.config.wants(name):
                continue
            collector = registry.get(name)
            for sub_name, mtype, stats in self._scrape(name, collector, t1):
                if stats is None:
                    continue
                window_stats[sub_name] = stats
                record = {
                    "kind": "sample",
                    "metric": sub_name,
                    "type": mtype,
                    "window": self._window,
                    "t0": t0,
                    "t1": t1,
                    "stats": stats,
                }
                labels = dict(registry.labels_of(name))
                labels.update(self.labels)
                labels["layer"] = metric_layer(name, registry.labels_of(name))
                record["labels"] = labels
                samples.append(record)
        self.records.extend(samples)
        alerts = self.evaluator.evaluate(self._window, t1, window_stats)
        tracer = getattr(self.engine, "tracer", None)
        for alert in alerts:
            self.records.append(self._stamp(alert))
            if tracer is not None and tracer.enabled:
                tracer.instant(
                    f"alert.{alert['state']}", "telemetry",
                    rule=alert["rule"], severity=alert["severity"],
                )
        self._window += 1
        self._last_t = t1
        return window_stats

    def _stamp(self, record: Dict[str, Any]) -> Dict[str, Any]:
        if self.labels:
            record = dict(record)
            record["labels"] = dict(self.labels)
        return record

    def _scrape(
        self, name: str, obj: Any, now: float
    ) -> Iterable[Tuple[str, str, Optional[Dict[str, Any]]]]:
        """Window statistics for one collector.

        Yields ``(metric_name, type, stats)`` tuples — one for most
        collectors, one per numeric field for stats dataclasses
        (``cache.stats`` fans out to ``cache.stats.hits``, ...).
        Structural dispatch mirrors the registry's ``snapshot()``.
        """
        # Histogram: windowed bin-count deltas.
        if hasattr(obj, "bin_edges") and hasattr(obj, "counts"):
            prev = self._cursor(name, "histogram", lambda: [0] * obj.bins)
            counts = [int(c) for c in obj.counts]
            delta = [c - p for c, p in zip(counts, prev)]
            self._cursors[name] = ("histogram", counts)
            yield name, "histogram", {"count": int(sum(delta)),
                                      "counts": delta}
            return
        # Tally: slice of observations since the previous scrape.
        if hasattr(obj, "percentile") and hasattr(obj, "count"):
            if hasattr(obj, "values_since"):
                prev = self._cursor(name, "tally", lambda: 0)
                values = obj.values_since(prev)
                self._cursors[name] = ("tally", obj.count)
                yield name, "tally", _tally_window(values)
            else:
                # Quacks like a tally but cannot expose raw values
                # (e.g. unit-view wrappers): deltas of count/total.
                prev_c, prev_t = self._cursor(
                    name, "tally_view", lambda: (0, 0.0))
                count, total = obj.count, float(obj.total)
                self._cursors[name] = ("tally_view", (count, total))
                dc, dt = count - prev_c, total - prev_t
                yield name, "tally", {
                    "count": dc,
                    "sum": dt,
                    "mean": (dt / dc) if dc else None,
                }
            return
        # TimeWeighted: exact window mean from integral differences.
        if hasattr(obj, "current") and callable(getattr(obj, "mean", None)):
            if not hasattr(obj, "integral"):
                yield name, "gauge", _gauge_stats(obj.current)
                return
            prev = self._cursor(name, "time_weighted", lambda: None)
            area = obj.integral(now)
            self._cursors[name] = ("time_weighted", (now, area))
            if prev is None:
                # First window: the signal's own cumulative mean (the
                # collector may predate the sampler, so there is no
                # earlier integral to difference against).
                mean = obj.mean(now)
            else:
                prev_t, prev_area = prev
                span = now - prev_t
                mean = ((area - prev_area) / span) if span > 0 \
                    else obj.current
            yield name, "time_weighted", {
                "mean": mean,
                "value": obj.current,
            }
            return
        # Counter: per-window delta next to the running value.
        if hasattr(obj, "add") and hasattr(obj, "value"):
            prev = self._cursor(name, "counter", lambda: 0)
            value = obj.value
            self._cursors[name] = ("counter", value)
            yield name, "counter", {"delta": value - prev, "value": value}
            return
        # Stats dataclass: one counter-style series per numeric field.
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            for f in dataclasses.fields(obj):
                value = getattr(obj, f.name)
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue
                sub = f"{name}.{f.name}"
                prev = self._cursor(sub, "counter", lambda: 0)
                self._cursors[sub] = ("counter", value)
                yield sub, "counter", {"delta": value - prev, "value": value}
            return
        # Gauge: sample the callable now.
        if callable(obj):
            value = obj()
            if isinstance(value, bool) or not isinstance(
                    value, (int, float)):
                yield name, "gauge", None
                return
            yield name, "gauge", _gauge_stats(value)
            return
        yield name, "value", None  # inert registered value: not a series

    def _cursor(self, name: str, mtype: str, default: Any) -> Any:
        state = self._cursors.get(name)
        if state is not None and state[0] == mtype:
            return state[1]
        return default()


def _tally_window(values: List[float]) -> Dict[str, Any]:
    """Window statistics for a slice of tally observations.

    Percentiles go through :func:`repro.obs.analysis.percentiles`,
    i.e. a :class:`~repro.sim.stats.Histogram` over the window — the
    same estimator the bench baselines use.
    """
    out: Dict[str, Any] = {"count": len(values)}
    if not values:
        out.update({"sum": 0.0, "min": None, "max": None, "mean": None})
        out.update({f"p{q}": None for q in QUANTILES})
        return out
    total = float(sum(values))
    out.update({
        "sum": total,
        "min": min(values),
        "max": max(values),
        "mean": total / len(values),
    })
    pct = percentiles(values)
    out.update({f"p{q}": pct[q] for q in QUANTILES})
    return out


def _gauge_stats(value: Union[int, float]) -> Dict[str, Any]:
    return {"value": value}


class Telemetry:
    """Hub collecting telemetry streams across one or more engines.

    The bench runner builds one hub per ``--telemetry-out`` request,
    attaches a sampler to every engine an experiment creates, and
    writes the merged stream once at the end::

        hub = Telemetry(TelemetryConfig(interval=0.1))
        sampler = hub.attach(engine, architecture="threaded")
        ...  # run the workload
        sampler.finish()
        hub.write("series.jsonl")
    """

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.records: List[Dict[str, Any]] = []
        self._samplers: List[TelemetrySampler] = []

    def attach(
        self,
        engine: Any,
        rules: Optional[Iterable[AlertRule]] = None,
        interval: Optional[float] = None,
        **labels: Any,
    ) -> TelemetrySampler:
        """Start a sampler on ``engine``; returns it (already started).

        ``rules`` / ``interval`` override the hub config for this
        attachment; ``labels`` are stamped on the attachment's records
        on top of the hub labels.
        """
        config = self.config
        overrides: Dict[str, Any] = {}
        if rules is not None:
            overrides["rules"] = tuple(rules)
        if interval is not None:
            overrides["interval"] = interval
        if overrides:
            config = replace(config, **overrides)
        sampler = TelemetrySampler(engine, config, hub=self, **labels)
        self._samplers.append(sampler)
        return sampler.start()

    def finish_all(self) -> None:
        """Finish every attached sampler that is still open."""
        for sampler in self._samplers:
            sampler.finish()

    def write(self, path: str) -> int:
        """Write the merged stream as deterministic JSONL (see
        :func:`repro.obs.export.write_series_jsonl`)."""
        from repro.obs.export import write_series_jsonl

        self.finish_all()
        return write_series_jsonl(path, self.records)

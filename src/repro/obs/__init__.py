"""Unified observability: spans, metrics, and trace export.

The measurement layer the whole reproduction reports into — the paper
is *about* per-operation timing, so instrumentation is a first-class
subsystem rather than per-module ad-hoc counters:

* :class:`Tracer` / :class:`Span` — nestable spans, instants and
  counter samples stamped in simulated time (``docs/observability.md``
  documents the model);
* :class:`MetricsRegistry` — one named catalogue over the existing
  ``Counter``/``Tally``/``TimeWeighted``/``Histogram`` collectors with
  a single ``snapshot()``;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  Perfetto) and JSONL exporters;
* :mod:`repro.obs.analysis` / :mod:`repro.obs.report` —
  :func:`analyze` turns a trace into self/total rollups, a per-layer
  critical path, percentiles, utilization and a directly-follows
  graph; ``python -m repro.obs report`` renders it, and
  ``python -m repro.obs gate`` compares two bench baseline snapshots
  and fails on regression.

Turn the whole stack on with one line::

    from repro.obs import Tracer, write_chrome_trace
    from repro.sim import Engine

    tracer = Tracer()
    engine = Engine(tracer=tracer)       # every component now reports
    ...
    write_chrome_trace("out.json", tracer)

The default is :data:`NULL_TRACER`: every hook is a no-op, so an
uninstrumented run pays nothing.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    render_summary,
    summarize,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.export import (
    read_jsonl,
    read_series_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_series_jsonl,
)
from repro.obs.analysis import PathStep, TraceAnalysis, analyze
from repro.obs.slo import AlertRule, SloEvaluator, SloSpec
from repro.obs.timeseries import (
    Telemetry,
    TelemetryConfig,
    TelemetrySampler,
    metric_layer,
)
from repro.obs.report import (
    GateFinding,
    analysis_to_dict,
    build_baseline,
    gate_compare,
    load_baseline,
    render_gate_report,
    render_timeline_report,
    render_trace_report,
    write_baseline,
)

__all__ = [
    "Tracer",
    "Span",
    "TraceEvent",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "summarize",
    "render_summary",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "TraceAnalysis",
    "PathStep",
    "analyze",
    "SloSpec",
    "AlertRule",
    "SloEvaluator",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySampler",
    "metric_layer",
    "write_series_jsonl",
    "read_series_jsonl",
    "analysis_to_dict",
    "render_timeline_report",
    "render_trace_report",
    "build_baseline",
    "write_baseline",
    "load_baseline",
    "gate_compare",
    "GateFinding",
    "render_gate_report",
]

"""Trace and telemetry exporters: Chrome ``trace_event`` JSON and JSONL.

Two interchange formats for a recorded :class:`~repro.obs.Tracer`:

* **Chrome trace JSON** — the ``trace_event`` format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev: a dict with a
  ``traceEvents`` list of complete (``"ph": "X"``), instant
  (``"ph": "i"``), counter (``"ph": "C"``) and metadata (``"ph": "M"``)
  events.  Timestamps are microseconds of *simulated* time; each
  engine attachment becomes a ``pid`` with a ``process_name`` record.
* **JSONL** — one :meth:`~repro.obs.TraceEvent.to_dict` object per
  line; trivially greppable, diffable, and loadable with
  :func:`read_jsonl` for programmatic analysis.

Plus the *telemetry series* JSONL format
(:mod:`repro.obs.timeseries`): one record per line with a ``kind``
discriminator (``telemetry.header`` / ``sample`` / ``alert`` /
``slo``), written canonically — sorted keys, floats rounded to a fixed
precision — so two same-seed runs produce **byte-identical** files
(:func:`write_series_jsonl` / :func:`read_series_jsonl`).

See ``docs/observability.md`` for the documented field layouts and
worked examples.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Union

from repro.errors import SimulationError
from repro.obs.tracer import TraceEvent, Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "series_lines",
    "write_series_jsonl",
    "read_series_jsonl",
]

#: Simulated seconds → trace_event microseconds.
_US = 1e6


def _tracers(tracer: Union[Tracer, Iterable[Tracer]]) -> List[Tracer]:
    if isinstance(tracer, Tracer):
        return [tracer]
    tracers = list(tracer)
    if not all(isinstance(t, Tracer) for t in tracers):
        raise SimulationError("to_chrome_trace needs Tracer instances")
    return tracers


def to_chrome_trace(tracer: Union[Tracer, Iterable[Tracer]]) -> dict:
    """Build the ``trace_event`` document for one or more tracers.

    When several tracers are given, their process groups are offset so
    ``pid`` values never collide in the merged view.
    """
    events: List[dict] = []
    pid_base = 0
    for tr in _tracers(tracer):
        for pid, name in sorted(tr.process_names.items()):
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid_base + pid,
                "tid": 0,
                "args": {"name": name},
            })
        for event in tr.events:
            events.append(_chrome_event(event, pid_base))
        pid_base += max(tr.process_names, default=0)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "source": "repro.obs"},
    }


def _chrome_event(event: TraceEvent, pid_base: int) -> dict:
    common = {
        "name": event.name,
        "cat": event.category or "default",
        "pid": pid_base + event.pid,
        "tid": event.tid,
        "ts": event.start * _US,
    }
    if event.kind == "span":
        common["ph"] = "X"
        common["dur"] = event.duration * _US
        args = dict(event.attrs)
        if event.parent_id is not None:
            args["parent"] = event.parent_id
        common["args"] = args
    elif event.kind == "counter":
        common["ph"] = "C"
        common["args"] = {event.name: event.attrs.get("value", 0)}
    else:
        common["ph"] = "i"
        common["s"] = "t"  # thread-scoped instant
        common["args"] = dict(event.attrs)
    return common


def write_chrome_trace(path: str, tracer: Union[Tracer, Iterable[Tracer]]) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event
    count (excluding metadata records)."""
    doc = to_chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return sum(1 for e in doc["traceEvents"] if e["ph"] != "M")


def to_jsonl(tracer: Tracer) -> List[str]:
    """One compact JSON object per event, in recording order."""
    return [json.dumps(e.to_dict(), sort_keys=True) for e in tracer.events]


def write_jsonl(path: str, tracer: Tracer) -> int:
    """Write the JSONL stream to ``path``; returns the line count."""
    lines = to_jsonl(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


# ---------------------------------------------------------------------------
# Telemetry series JSONL (repro.obs.timeseries)
# ---------------------------------------------------------------------------

#: Decimal places kept in emitted series floats: enough for
#: microsecond-scale simulated times, few enough that float noise
#: cannot leak into the byte-for-byte determinism contract.
_SERIES_ROUND = 9


def _round_floats(value: Any) -> Any:
    if isinstance(value, float):
        return round(value, _SERIES_ROUND)
    if isinstance(value, dict):
        return {k: _round_floats(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_round_floats(v) for v in value]
    return value


def series_lines(records: Iterable[Dict[str, Any]]) -> List[str]:
    """One canonical JSON line per telemetry record (sorted keys,
    rounded floats) — the byte-reproducibility boundary."""
    return [
        json.dumps(_round_floats(record), sort_keys=True)
        for record in records
    ]


def write_series_jsonl(
    path_or_fh: Union[str, IO[str]], records: Iterable[Dict[str, Any]]
) -> int:
    """Write a telemetry record stream as JSONL; returns line count."""
    lines = series_lines(records)
    if hasattr(path_or_fh, "write"):
        for line in lines:
            path_or_fh.write(line + "\n")
    else:
        with open(path_or_fh, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
    return len(lines)


def read_series_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a telemetry JSONL stream back into record dicts."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise SimulationError(
                    f"{path}:{lineno}: malformed series line ({exc})"
                ) from None
            if not isinstance(record, dict) or "kind" not in record:
                raise SimulationError(
                    f"{path}:{lineno}: series records need a 'kind' field"
                )
            records.append(record)
    return records


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` objects."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except (ValueError, KeyError) as exc:
                raise SimulationError(
                    f"{path}:{lineno}: malformed trace line ({exc})"
                ) from None
    return events

"""Trace analysis: where did the simulated time go?

PR 1 gave the stack a :class:`~repro.obs.Tracer`; this module is its
consumer.  :func:`analyze` ingests a recorded trace — a live tracer or
the event list :func:`~repro.obs.export.read_jsonl` returns — and a
:class:`TraceAnalysis` derives the structural summaries an I/O
benchmark needs to be trustworthy (distributions and correlations,
not single means):

* **rollup** — per-span-name aggregates with *self* time (duration
  minus child durations) next to *total* time: the flame-graph view
  flattened to a table, with p50/p90/p99 per name;
* **critical path** — the longest root-to-leaf chain of spans, each
  step attributed to an architectural layer (disk / cache /
  filesystem / JIT / webserver), so "what bounded this run?" has a
  one-table answer;
* **counter series** — time-weighted mean/max per sampled series
  (queue depths, cache hit ratio) plus disk-busy fractions derived
  from the union of device span intervals;
* **directly-follows graph** — which I/O operation follows which,
  with counts: the op-flow characterization used for system-call
  traces, applied to our span stream.

Everything here is pure derivation: analysis never mutates the trace
and gives identical results on a live tracer and a reloaded JSONL
dump (``tests/obs/test_analysis.py`` pins the parity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.obs.tracer import TraceEvent, Tracer, _collapse

__all__ = ["TraceAnalysis", "PathStep", "analyze", "layer_of", "percentiles"]

#: Span-name prefix → architectural layer (first match wins); spans
#: with no matching prefix fall back to their category.
_LAYER_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("disk.", "disk"),
    ("cache.", "cache"),
    ("fs.", "filesystem"),
    ("stream.", "filesystem"),
    ("jit.", "jit"),
    ("http.", "webserver"),
    ("replay.", "replay"),
    ("cluster.", "cluster"),
    ("lb.", "cluster"),
    ("node.", "cluster"),
    ("rebalance.", "cluster"),
    ("failover", "cluster"),
    ("process:", "sim"),
    ("engine.", "sim"),
)

_LAYER_CATEGORIES = {
    "storage": "disk",
    "io": "filesystem",
    "jit": "jit",
    "webserver": "webserver",
    "replay": "replay",
    "net": "network",
    "cluster": "cluster",
    "sim": "sim",
}

#: Default percentiles reported throughout.
QUANTILES: Tuple[int, ...] = (50, 90, 99)

#: Op families tried (in order) when picking spans for the
#: directly-follows graph: the first prefix with >= 2 spans wins.
DFG_PREFIX_CANDIDATES: Tuple[str, ...] = ("replay.", "fs.", "http.", "disk.")


def layer_of(name: str, category: str = "") -> str:
    """Architectural layer of a span, from its name prefix (falling
    back to the category, then ``"other"``)."""
    for prefix, layer in _LAYER_PREFIXES:
        if name.startswith(prefix):
            return layer
    return _LAYER_CATEGORIES.get(category, category or "other")


def percentiles(values: Sequence[float], qs: Sequence[int] = QUANTILES,
                bins: int = 128) -> Dict[int, float]:
    """``{q: value}`` for each requested percentile, computed through
    a :class:`repro.sim.stats.Histogram` over ``values``.

    Degenerate inputs (empty, or all samples equal) short-circuit to
    the obvious answers instead of building an unbinnable histogram.
    """
    if not values:
        return {q: 0.0 for q in qs}
    lo, hi = min(values), max(values)
    if hi <= lo:
        return {q: lo for q in qs}
    from repro.sim.stats import Histogram

    hist = Histogram(lo, hi, bins=min(bins, max(1, len(values))))
    for v in values:
        hist.record(v)
    return {q: hist.percentile(q) for q in qs}


@dataclass(frozen=True)
class PathStep:
    """One span on the critical path."""

    name: str
    category: str
    layer: str
    depth: int
    start: float
    duration_s: float
    self_s: float


class TraceAnalysis:
    """Derived views over one recorded trace.

    Construct via :func:`analyze`; all methods are pure queries and
    may be called in any order.  Span identity relies on ``span_id``
    being unique within the trace (which :class:`Tracer` guarantees
    across engine attachments).
    """

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self.events: List[TraceEvent] = list(events)
        self.spans = [e for e in self.events if e.kind == "span"]
        self.counters = [e for e in self.events if e.kind == "counter"]
        self.instants = [e for e in self.events if e.kind == "instant"]
        self._parent = self._effective_parents()
        self._children: Dict[int, List[TraceEvent]] = {}
        for span in self.spans:
            parent = self._parent.get(span.span_id)
            if parent is not None:
                self._children.setdefault(parent, []).append(span)
        # Self time = duration minus time covered by direct children
        # (clamped: overlapping/async children can exceed the parent).
        self._self_s: Dict[int, float] = {}
        for span in self.spans:
            covered = sum(c.duration for c in self._children.get(span.span_id, ()))
            self._self_s[span.span_id] = max(0.0, span.duration - covered)

    def _effective_parents(self) -> Dict[int, Optional[int]]:
        """Parent span per span: the explicit ``parent_id`` when
        recorded, else inferred from time containment.

        Most library spans are recorded retroactively with
        ``tracer.complete(...)`` and carry no parent link, so the tree
        is rebuilt the way trace viewers do: within each ``(pid,
        tid)`` track a span's parent is the innermost span whose
        interval contains it.  For identical intervals the span
        recorded later is the outer one (retroactive completion
        records inner spans first), hence the ``-span_id`` sort key.
        """
        parents: Dict[int, Optional[int]] = {}
        tracks: Dict[Tuple[int, int], List[TraceEvent]] = {}
        for span in self.spans:
            tracks.setdefault((span.pid, span.tid), []).append(span)
        for track in tracks.values():
            track.sort(key=lambda s: (s.start, -s.end, -s.span_id))
            stack: List[TraceEvent] = []
            for span in track:
                while stack and not (stack[-1].start <= span.start
                                     and span.end <= stack[-1].end):
                    stack.pop()
                if span.parent_id is not None:
                    parents[span.span_id] = span.parent_id
                else:
                    parents[span.span_id] = (stack[-1].span_id
                                             if stack else None)
                stack.append(span)
        return parents

    # -- basics ---------------------------------------------------------------

    @property
    def time_range(self) -> Tuple[float, float]:
        """(earliest start, latest end) over every event; (0, 0) when
        the trace is empty."""
        if not self.events:
            return (0.0, 0.0)
        return (min(e.start for e in self.events),
                max(e.end for e in self.events))

    def self_time(self, span: TraceEvent) -> float:
        """Self time of one span (duration minus direct children)."""
        return self._self_s[span.span_id]

    def children_of(self, span: TraceEvent) -> List[TraceEvent]:
        return list(self._children.get(span.span_id, ()))

    # -- (a) flame-style rollup ----------------------------------------------

    def rollup(self, collapse: bool = True) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Per-(category, name) aggregates with self vs. total time.

        Returns ``{(category, name): {count, total_s, self_s, mean_s,
        max_s, p50_s, p90_s, p99_s}}``.  With ``collapse`` (default)
        per-instance name decorations are merged the same way
        :func:`repro.obs.summarize` does (``worker-17`` → ``worker-*``).
        """
        durations: Dict[Tuple[str, str], List[float]] = {}
        out: Dict[Tuple[str, str], Dict[str, float]] = {}
        for span in self.spans:
            key = (span.category,
                   _collapse(span.name) if collapse else span.name)
            row = out.setdefault(key, {"count": 0, "total_s": 0.0,
                                       "self_s": 0.0, "max_s": 0.0})
            row["count"] += 1
            row["total_s"] += span.duration
            row["self_s"] += self._self_s[span.span_id]
            if span.duration > row["max_s"]:
                row["max_s"] = span.duration
            durations.setdefault(key, []).append(span.duration)
        for key, row in out.items():
            row["mean_s"] = row["total_s"] / row["count"] if row["count"] else 0.0
            pct = percentiles(durations[key])
            for q, value in pct.items():
                row[f"p{q}_s"] = value
        return out

    # -- (b) critical path ----------------------------------------------------

    def critical_path(self) -> List[PathStep]:
        """Longest root-to-leaf chain of spans.

        Starts from the longest root span (no parent) and at each
        level descends into the longest child, producing one
        :class:`PathStep` per level.  Empty trace → empty list.
        """
        roots = [s for s in self.spans if self._parent.get(s.span_id) is None]
        if not roots:
            return []
        path: List[PathStep] = []
        node: Optional[TraceEvent] = max(roots, key=lambda s: (s.duration, -s.span_id))
        depth = 0
        while node is not None:
            path.append(PathStep(
                name=node.name,
                category=node.category,
                layer=layer_of(node.name, node.category),
                depth=depth,
                start=node.start,
                duration_s=node.duration,
                self_s=self._self_s[node.span_id],
            ))
            children = self._children.get(node.span_id)
            node = (max(children, key=lambda s: (s.duration, -s.span_id))
                    if children else None)
            depth += 1
        return path

    def layer_attribution(self) -> Dict[str, float]:
        """Critical-path self-seconds per architectural layer.

        Sums the self time of each step on the critical path, keyed by
        its layer — the direct answer to "which layer bounded this
        run's longest chain?".  (Off-path siblings are excluded, so
        the total can be less than the root span's duration.)
        """
        out: Dict[str, float] = {}
        for step in self.critical_path():
            out[step.layer] = out.get(step.layer, 0.0) + step.self_s
        return out

    # -- (c) counters / utilization -------------------------------------------

    def counter_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-series summary of sampled counters.

        ``{name: {samples, min, max, last, mean}}`` where ``mean`` is
        the *time-weighted* mean (each sample's value held until the
        next sample); a single-sample series reports its own value.
        """
        series: Dict[str, List[Tuple[float, float]]] = {}
        for event in self.counters:
            value = float(event.attrs.get("value", 0.0))
            series.setdefault(event.name, []).append((event.start, value))
        out: Dict[str, Dict[str, float]] = {}
        for name, samples in series.items():
            values = [v for _, v in samples]
            if len(samples) > 1:
                area = sum(v * (samples[i + 1][0] - t)
                           for i, (t, v) in enumerate(samples[:-1]))
                span = samples[-1][0] - samples[0][0]
                mean = area / span if span > 0 else sum(values) / len(values)
            else:
                mean = values[0]
            out[name] = {
                "samples": len(samples),
                "min": min(values),
                "max": max(values),
                "last": values[-1],
                "mean": mean,
            }
        return out

    def disk_busy(self) -> Dict[str, float]:
        """Busy fraction per device: union of ``disk.*`` span
        intervals divided by the whole trace's time range."""
        t0, t1 = self.time_range
        total = t1 - t0
        if total <= 0:
            return {}
        intervals: Dict[str, List[Tuple[float, float]]] = {}
        for span in self.spans:
            if not span.name.startswith("disk."):
                continue
            device = str(span.attrs.get("device", "disk"))
            intervals.setdefault(device, []).append((span.start, span.end))
        out: Dict[str, float] = {}
        for device, ivals in intervals.items():
            busy = 0.0
            cursor = None
            for start, end in sorted(ivals):
                if cursor is None or start > cursor:
                    busy += end - start
                    cursor = end
                elif end > cursor:
                    busy += end - cursor
                    cursor = end
            out[device] = busy / total
        return out

    def utilization(self) -> Dict[str, Any]:
        """One dict of queueing/utilization summaries: per-device busy
        fractions, ``*.queue`` counter mean/max depths, and the last
        ``cache.hit_ratio`` sample (None when the series is absent)."""
        counters = self.counter_stats()
        queues = {name: {"mean_depth": row["mean"], "max_depth": row["max"]}
                  for name, row in counters.items() if name.endswith(".queue")}
        hit_ratio = counters.get("cache.hit_ratio")
        return {
            "disk_busy": self.disk_busy(),
            "queues": queues,
            "cache_hit_ratio": None if hit_ratio is None else hit_ratio["last"],
            "cache_hit_ratio_mean": None if hit_ratio is None else hit_ratio["mean"],
        }

    # -- point events (faults / retries / sheds) -------------------------------

    def instant_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-name summary of point events, with per-layer attribution.

        ``{name: {count, layers: {layer: count}, attrs: {key:
        {value: count}}}}``.  The fault-injection machinery reports
        everything it does as instants (``fault.injected``,
        ``retry.attempt``, ``server.shed`` ...); the layer of each one
        comes from :func:`layer_of` over its name and category, so a
        media error injected at the disk and a connection drop injected
        at the network land in different rows of the breakdown.  Only
        short string/bool/int attribute values are tallied (``kind``,
        ``target``, ``op`` — not free-form messages).
        """
        out: Dict[str, Dict[str, Any]] = {}
        for event in self.instants:
            name = _collapse(event.name)
            row = out.setdefault(name, {"count": 0, "layers": {}, "attrs": {}})
            row["count"] += 1
            layer = layer_of(event.name, event.category)
            row["layers"][layer] = row["layers"].get(layer, 0) + 1
            for key, value in event.attrs.items():
                if isinstance(value, bool) or isinstance(value, int) \
                        or (isinstance(value, str) and len(value) <= 32):
                    tally = row["attrs"].setdefault(key, {})
                    tally[str(value)] = tally.get(str(value), 0) + 1
        return out

    # -- (d) directly-follows graph -------------------------------------------

    def follows_graph(
        self,
        prefix: Optional[str] = None,
        collapse: bool = True,
    ) -> Dict[Tuple[str, str], int]:
        """Directly-follows counts over I/O operation spans.

        Spans whose name starts with ``prefix`` are ordered by start
        time within each ``(pid, tid)`` track; each consecutive pair
        ``a → b`` increments an edge count.  With ``prefix=None`` the
        first of :data:`DFG_PREFIX_CANDIDATES` matching at least two
        spans is used (replay ops, then filesystem ops, then HTTP,
        then raw device ops).
        """
        if prefix is None:
            for candidate in DFG_PREFIX_CANDIDATES:
                if sum(1 for s in self.spans if s.name.startswith(candidate)) >= 2:
                    prefix = candidate
                    break
            else:
                return {}
        tracks: Dict[Tuple[int, int], List[TraceEvent]] = {}
        for span in self.spans:
            if span.name.startswith(prefix):
                tracks.setdefault((span.pid, span.tid), []).append(span)
        edges: Dict[Tuple[str, str], int] = {}
        for track in tracks.values():
            track.sort(key=lambda s: (s.start, s.span_id))
            for a, b in zip(track, track[1:]):
                key = (_collapse(a.name) if collapse else a.name,
                       _collapse(b.name) if collapse else b.name)
                edges[key] = edges.get(key, 0) + 1
        return edges

    def hot_path(self, edges: Optional[Dict[Tuple[str, str], int]] = None,
                 max_len: int = 8) -> List[str]:
        """Greedy most-frequent walk through the directly-follows
        graph: start at the heaviest edge, keep following the heaviest
        outgoing edge to an unvisited node (bounded by ``max_len``)."""
        if edges is None:
            edges = self.follows_graph()
        if not edges:
            return []
        (first, second), _ = max(edges.items(), key=lambda kv: (kv[1], kv[0]))
        path = [first, second]
        seen = {first, second}
        while len(path) < max_len:
            outgoing = [(count, b) for (a, b), count in edges.items()
                        if a == path[-1] and b not in seen]
            if not outgoing:
                break
            _, nxt = max(outgoing)
            path.append(nxt)
            seen.add(nxt)
        return path


def analyze(source: Union[Tracer, Iterable[TraceEvent]]) -> TraceAnalysis:
    """Build a :class:`TraceAnalysis` from a live tracer or a loaded
    event list (:func:`~repro.obs.export.read_jsonl` output)."""
    if isinstance(source, Tracer):
        events: Sequence[TraceEvent] = source.events
    else:
        events = list(source)
        for event in events:
            if not isinstance(event, TraceEvent):
                raise SimulationError(
                    f"analyze() needs TraceEvents, got {type(event).__name__}"
                )
    return TraceAnalysis(events)

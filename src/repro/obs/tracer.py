"""Spans and the tracer: the unified event model for observability.

Every instrumented component in the stack reports into a
:class:`Tracer` — a time-ordered buffer of :class:`TraceEvent` objects
stamped against *simulated* time.  Three event kinds cover everything
the paper's measurements need:

* **span** — an interval with a name, category, start/end times,
  structured attributes, and an optional parent link (nesting);
* **instant** — a point event (a probe record, an eviction, a
  prefetch issue);
* **counter** — a sampled numeric series (queue depths, residency).

Components never hold a tracer directly: they reach it through
``engine.tracer`` (see :class:`repro.sim.engine.Engine`), so a single
``Engine(tracer=Tracer())`` turns on instrumentation for the whole
stack.  The default is the shared :class:`NullTracer`, whose every
operation is a no-op and whose ``enabled`` flag lets hot paths skip
even argument construction::

    tr = self.engine.tracer
    if tr.enabled:
        tr.instant("evict", "io", page=page)

Timestamps come from the engine the tracer is *attached* to.  A
tracer can outlive one engine and be attached to several in sequence
(the bench harness reuses one tracer across experiments); each
attachment opens a new *process group* (``pid``) so exported traces
keep runs visually separate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import SimulationError

__all__ = ["TraceEvent", "Span", "Tracer", "NullTracer", "NULL_TRACER",
           "summarize", "render_summary"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded observability event.

    ``start`` and ``end`` are simulated seconds; for ``instant`` and
    ``counter`` events they are equal.  ``span_id`` is unique within
    one tracer; ``parent_id`` links nested spans.  ``pid`` is the
    process group (one per engine attachment), ``tid`` the track
    within it (stream/thread id, 0 by default).
    """

    kind: str  # "span" | "instant" | "counter"
    name: str
    category: str
    start: float
    end: float
    span_id: int
    parent_id: Optional[int]
    pid: int
    tid: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-serializable representation (the JSONL line shape)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "cat": self.category,
            "start": self.start,
            "end": self.end,
            "id": self.span_id,
            "parent": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            name=data["name"],
            category=data["cat"],
            start=data["start"],
            end=data["end"],
            span_id=data["id"],
            parent_id=data.get("parent"),
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
            attrs=dict(data.get("attrs", {})),
        )


class Span:
    """An open span; finish it with :meth:`end` or use it as a
    context manager (``with tracer.span(...)``).

    The span records its start time at creation and its end time when
    closed; both are read from the owning tracer's clock.  Attributes
    passed to :meth:`end` merge over those given at creation.
    """

    __slots__ = ("tracer", "name", "category", "span_id", "parent_id",
                 "tid", "start", "attrs", "_open")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        span_id: int,
        parent_id: Optional[int],
        tid: int,
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = tid
        self.start = start
        self.attrs = attrs
        self._open = True

    def end(self, **attrs: Any) -> None:
        """Close the span at the tracer's current time."""
        if not self._open:
            raise SimulationError(f"span {self.name!r} already ended")
        self._open = False
        if attrs:
            self.attrs.update(attrs)
        self.tracer._finish_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._open:
            self.end()


class _NullSpan:
    """Do-nothing span returned by the null tracer."""

    __slots__ = ()
    attrs: Dict[str, Any] = {}

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing (the default everywhere).

    Stateless and shared (:data:`NULL_TRACER`); every method is a
    no-op, so instrumentation is zero-cost when disabled — the same
    pattern as :class:`repro.sim.probe.NullProbe`.
    """

    __slots__ = ()
    enabled = False

    def attach(self, engine: Any, name: Optional[str] = None) -> None:
        pass

    def name_process(self, name: str) -> None:
        pass

    def begin(self, name: str, category: str = "", tid: int = 0, **attrs: Any):
        return _NULL_SPAN

    span = begin

    def complete(self, name: str, category: str, start: float,
                 end: Optional[float] = None, tid: int = 0,
                 parent: Optional[int] = None, **attrs: Any) -> None:
        pass

    def instant(self, name: str, category: str = "", tid: int = 0,
                **attrs: Any) -> None:
        pass

    def counter(self, name: str, category: str, value: float,
                tid: int = 0) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Shared do-nothing instance; safe because NullTracer is stateless.
NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: an append-only, capacity-capped event buffer.

    Parameters
    ----------
    capacity:
        Maximum retained events (oldest dropped beyond it, counted in
        :attr:`dropped`); ``None`` = unbounded.
    categories:
        If given, only events in these categories are recorded (the
        same opt-in filtering :class:`~repro.sim.probe.Probe` offers).

    The tracer reads time from whichever engine it was last
    :meth:`attach`-ed to; before any attachment the clock reads 0.0.
    """

    enabled = True

    def __init__(
        self,
        capacity: Optional[int] = None,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.categories = set(categories) if categories is not None else None
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self.process_names: Dict[int, str] = {}
        self._engine: Any = None
        self._pid = 0
        self._next_id = 0
        # Per-(pid, tid) stack of open spans, for implicit parenting.
        self._stacks: Dict[tuple, List[Span]] = {}

    # -- clock / engine binding ---------------------------------------------

    @property
    def now(self) -> float:
        """Current time of the attached engine (0.0 if unattached)."""
        return self._engine.now if self._engine is not None else 0.0

    @property
    def pid(self) -> int:
        """Current process group (one per engine attachment)."""
        return self._pid

    def attach(self, engine: Any, name: Optional[str] = None) -> None:
        """Bind the clock to ``engine`` and open a new process group.

        Called by :class:`~repro.sim.engine.Engine` when a tracer is
        passed to its constructor; user code rarely calls this.
        """
        self._engine = engine
        self._pid += 1
        self.process_names.setdefault(self._pid, name or f"engine-{self._pid}")

    def name_process(self, name: str) -> None:
        """Label the current process group (shown in trace viewers)."""
        self.process_names[self._pid] = name

    # -- recording ------------------------------------------------------------

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def _emit(self, event: TraceEvent) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.events.pop(0)
            self.dropped += 1
        self.events.append(event)

    def begin(self, name: str, category: str = "", tid: int = 0,
              **attrs: Any) -> Span:
        """Open a span at the current time.

        The span nests under the innermost open span on the same
        ``(pid, tid)`` track; close it with ``span.end()`` or use the
        returned object as a context manager.
        """
        stack = self._stacks.setdefault((self._pid, tid), [])
        parent_id = stack[-1].span_id if stack else None
        self._next_id += 1
        span = Span(self, name, category, self._next_id, parent_id, tid,
                    self.now, attrs)
        stack.append(span)
        return span

    #: Alias — ``with tracer.span("name", "cat"):`` reads naturally.
    span = begin

    def _finish_span(self, span: Span) -> None:
        stack = self._stacks.get((self._pid, span.tid))
        if stack and span in stack:
            # Close any forgotten children along with the span.
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        if not self.wants(span.category):
            return
        self._emit(TraceEvent(
            kind="span", name=span.name, category=span.category,
            start=span.start, end=self.now, span_id=span.span_id,
            parent_id=span.parent_id, pid=self._pid, tid=span.tid,
            attrs=span.attrs,
        ))

    def complete(self, name: str, category: str, start: float,
                 end: Optional[float] = None, tid: int = 0,
                 parent: Optional[int] = None, **attrs: Any) -> None:
        """Record an already-finished span retroactively.

        The idiom for coroutine code that measured ``start`` itself
        (``t0 = engine.now; ...; tracer.complete("fs.read", "io", t0)``)
        — no context-manager bookkeeping on the hot path.
        """
        if not self.wants(category):
            return
        stop = self.now if end is None else end
        if stop < start:
            raise SimulationError(
                f"span {name!r} ends before it starts ({stop} < {start})"
            )
        self._next_id += 1
        self._emit(TraceEvent(
            kind="span", name=name, category=category, start=start,
            end=stop, span_id=self._next_id, parent_id=parent,
            pid=self._pid, tid=tid, attrs=attrs,
        ))

    def instant(self, name: str, category: str = "", tid: int = 0,
                **attrs: Any) -> None:
        """Record a point event at the current time."""
        if not self.wants(category):
            return
        now = self.now
        self._next_id += 1
        self._emit(TraceEvent(
            kind="instant", name=name, category=category, start=now,
            end=now, span_id=self._next_id, parent_id=None,
            pid=self._pid, tid=tid, attrs=attrs,
        ))

    def counter(self, name: str, category: str, value: float,
                tid: int = 0) -> None:
        """Record one sample of a numeric series (e.g. queue depth)."""
        if not self.wants(category):
            return
        now = self.now
        self._next_id += 1
        self._emit(TraceEvent(
            kind="counter", name=name, category=category, start=now,
            end=now, span_id=self._next_id, parent_id=None,
            pid=self._pid, tid=tid, attrs={"value": value},
        ))

    # -- queries ---------------------------------------------------------------

    def spans(self, category: Optional[str] = None) -> List[TraceEvent]:
        """All span events, optionally filtered by category."""
        return [e for e in self.events
                if e.kind == "span" and (category is None or e.category == category)]

    def by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def categories_seen(self) -> List[str]:
        """Sorted distinct categories present in the buffer."""
        return sorted({e.category for e in self.events})

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._stacks.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tracer events={len(self.events)} pid={self._pid} "
                f"dropped={self.dropped}>")


#: Instance decorations collapsed by :func:`summarize`:
#: ``prefetch[1:128+8]`` → ``prefetch[*]``, ``worker-17`` → ``worker-*``.
_INSTANCE_RE = re.compile(r"(\[[^\]]*\]|-\d+)$")


def _collapse(name: str) -> str:
    return _INSTANCE_RE.sub(lambda m: "[*]" if m.group(1).startswith("[") else "-*",
                            name)


def summarize(tracer: "Tracer", collapse: bool = True) -> Dict[tuple, Dict[str, float]]:
    """Aggregate span statistics: ``{(category, name): {count, total_s,
    mean_s, max_s}}``, sorted output left to the caller.

    With ``collapse`` (default), per-instance name decorations are
    merged — ``process:prefetch[1:128+8]`` and its hundreds of
    siblings become one ``process:prefetch[*]`` row."""
    out: Dict[tuple, Dict[str, float]] = {}
    for event in tracer.events:
        if event.kind != "span":
            continue
        key = (event.category, _collapse(event.name) if collapse else event.name)
        row = out.setdefault(key, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        row["count"] += 1
        row["total_s"] += event.duration
        if event.duration > row["max_s"]:
            row["max_s"] = event.duration
    for row in out.values():
        row["mean_s"] = row["total_s"] / row["count"] if row["count"] else 0.0
    return out


def render_summary(tracer: "Tracer") -> str:
    """Monospace span-summary table (category, name, count, total,
    mean, max), categories then names alphabetical."""
    rows = summarize(tracer)
    lines = [f"{'category':<12} {'span':<28} {'count':>7} "
             f"{'total_ms':>12} {'mean_ms':>12} {'max_ms':>12}"]
    for (category, name) in sorted(rows):
        r = rows[(category, name)]
        lines.append(
            f"{category:<12} {name:<28} {r['count']:>7d} "
            f"{r['total_s'] * 1e3:>12.4f} {r['mean_s'] * 1e3:>12.4f} "
            f"{r['max_s'] * 1e3:>12.4f}"
        )
    return "\n".join(lines)

"""Performance reports and the bench regression gate.

Two faces on top of :mod:`repro.obs.analysis`:

* :func:`render_trace_report` — the human-readable text report behind
  ``python -m repro.obs report <trace.jsonl>``: span rollup with self
  vs. total time and p50/p90/p99, the critical path with per-layer
  attribution, counter/utilization summaries, and the
  directly-follows graph of I/O operations.

* the **baseline/gate workflow** — ``python -m repro.bench ...
  --baseline-out BENCH_<name>.json`` snapshots every experiment's key
  metrics (mean/min/max and histogram-derived percentiles per numeric
  column) into a versioned JSON document; ``python -m repro.obs gate
  --baseline A.json --candidate B.json --threshold 10%`` compares two
  snapshots and exits nonzero when any metric *regresses* beyond the
  threshold.  Each metric carries a direction (``lower_is_better``
  for latencies, ``higher_is_better`` for speedups/hit ratios), so an
  improvement never fails the gate — it is reported, not punished.

The committed ``BENCH_seed.json`` is the repo's reference snapshot;
CI regenerates a candidate and runs the gate against it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import BenchmarkError
from repro.obs.analysis import QUANTILES, TraceAnalysis, percentiles

__all__ = [
    "render_trace_report",
    "analysis_to_dict",
    "render_timeline_report",
    "sparkline",
    "BASELINE_SCHEMA",
    "BASELINE_VERSION",
    "metric_direction",
    "result_metrics",
    "build_baseline",
    "write_baseline",
    "load_baseline",
    "GateFinding",
    "gate_compare",
    "render_gate_report",
    "parse_threshold",
]

_MS = 1e3


# ---------------------------------------------------------------------------
# Trace report
# ---------------------------------------------------------------------------

def _section(title: str) -> List[str]:
    return [f"== {title} ==".ljust(72, "=")]


def render_trace_report(analysis: TraceAnalysis, top: int = 20) -> str:
    """Full text report over one analyzed trace.

    ``top`` bounds the rollup and follows-graph tables (the critical
    path and counter sections are always complete).
    """
    lines: List[str] = []
    t0, t1 = analysis.time_range
    lines += _section("trace")
    lines.append(
        f"events {len(analysis.events)} (spans {len(analysis.spans)}, "
        f"instants {len(analysis.instants)}, counters {len(analysis.counters)})"
        f"  simulated [{t0:.6f}s .. {t1:.6f}s]"
    )

    lines.append("")
    lines += _section(f"span rollup: self vs total time (top {top} by total)")
    rollup = analysis.rollup()
    lines.append(
        f"{'category':<10} {'span':<26} {'count':>6} {'total_ms':>10} "
        f"{'self_ms':>10} {'mean_ms':>9} {'p50_ms':>9} {'p90_ms':>9} "
        f"{'p99_ms':>9} {'max_ms':>9}"
    )
    ranked = sorted(rollup.items(), key=lambda kv: -kv[1]["total_s"])
    for (category, name), row in ranked[:top]:
        lines.append(
            f"{category:<10} {name:<26} {row['count']:>6d} "
            f"{row['total_s'] * _MS:>10.4f} {row['self_s'] * _MS:>10.4f} "
            f"{row['mean_s'] * _MS:>9.4f} {row['p50_s'] * _MS:>9.4f} "
            f"{row['p90_s'] * _MS:>9.4f} {row['p99_s'] * _MS:>9.4f} "
            f"{row['max_s'] * _MS:>9.4f}"
        )
    if len(ranked) > top:
        lines.append(f"... {len(ranked) - top} more span names")

    lines.append("")
    lines += _section("critical path (longest root-to-leaf chain)")
    path = analysis.critical_path()
    if not path:
        lines.append("(no spans)")
    else:
        for step in path:
            lines.append(
                f"{'  ' * step.depth}{step.name}  [{step.layer}]  "
                f"total {step.duration_s * _MS:.4f} ms, "
                f"self {step.self_s * _MS:.4f} ms"
            )
        lines.append("per-layer attribution of the critical path:")
        attribution = analysis.layer_attribution()
        total = sum(attribution.values()) or 1.0
        for layer, seconds in sorted(attribution.items(),
                                     key=lambda kv: -kv[1]):
            lines.append(
                f"  {layer:<12} {seconds * _MS:>12.4f} ms "
                f"({100.0 * seconds / total:5.1f}%)"
            )

    lines.append("")
    lines += _section("counters / utilization")
    util = analysis.utilization()
    if util["disk_busy"]:
        for device, fraction in sorted(util["disk_busy"].items()):
            lines.append(f"disk busy       {device:<16} {fraction:6.2%}")
    for name, row in sorted(util["queues"].items()):
        lines.append(
            f"queue depth     {name:<16} mean {row['mean_depth']:.3f} "
            f"max {row['max_depth']:.0f}"
        )
    if util["cache_hit_ratio"] is not None:
        lines.append(
            f"cache hit ratio final {util['cache_hit_ratio']:.4f} "
            f"(time-weighted mean {util['cache_hit_ratio_mean']:.4f})"
        )
    if not (util["disk_busy"] or util["queues"]
            or util["cache_hit_ratio"] is not None):
        lines.append("(no counter samples recorded)")

    instants = analysis.instant_summary()
    if instants:
        lines.append("")
        lines += _section("point events (faults / retries / degradation)")
        lines.append(f"{'event':<26} {'count':>6}  layers / breakdown")
        for name in sorted(instants):
            row = instants[name]
            layers = " ".join(
                f"{layer}×{count}"
                for layer, count in sorted(row["layers"].items()))
            details = []
            for key in ("kind", "target", "op", "reason", "action", "error"):
                tally = row["attrs"].get(key)
                if tally:
                    values = " ".join(
                        f"{value}×{count}"
                        for value, count in sorted(tally.items()))
                    details.append(f"{key}: {values}")
            lines.append(f"{name:<26} {row['count']:>6d}  {layers}")
            for detail in details:
                lines.append(f"{'':<34} {detail}")

    lines.append("")
    lines += _section(f"directly-follows graph of I/O ops (top {top} edges)")
    edges = analysis.follows_graph()
    if not edges:
        lines.append("(not enough operation spans)")
    else:
        ranked_edges = sorted(edges.items(), key=lambda kv: (-kv[1], kv[0]))
        for (a, b), count in ranked_edges[:top]:
            lines.append(f"{a:<26} -> {b:<26} x{count}")
        hot = analysis.hot_path(edges)
        if hot:
            lines.append("hot path: " + " -> ".join(hot))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Machine-readable trace analysis
# ---------------------------------------------------------------------------

ANALYSIS_SCHEMA = "repro.obs.analysis"
ANALYSIS_VERSION = 1


def analysis_to_dict(analysis: TraceAnalysis) -> dict:
    """The full :class:`TraceAnalysis` rollup as one JSON-ready dict.

    Everything :func:`render_trace_report` prints, machine-readably:
    trace totals, the span rollup, the critical path with per-layer
    attribution, counter/utilization summaries, instant summaries and
    the directly-follows graph.  ``python -m repro.obs report
    --format json`` emits exactly this document
    (``tests/obs/test_cli.py`` pins the round trip).
    """
    t0, t1 = analysis.time_range
    rollup = [
        {"category": category, "name": name, **row}
        for (category, name), row in sorted(analysis.rollup().items())
    ]
    path = [
        {
            "name": step.name,
            "category": step.category,
            "layer": step.layer,
            "depth": step.depth,
            "start": step.start,
            "duration_s": step.duration_s,
            "self_s": step.self_s,
        }
        for step in analysis.critical_path()
    ]
    edges = [
        {"from": a, "to": b, "count": count}
        for (a, b), count in sorted(analysis.follows_graph().items())
    ]
    return {
        "schema": ANALYSIS_SCHEMA,
        "version": ANALYSIS_VERSION,
        "trace": {
            "events": len(analysis.events),
            "spans": len(analysis.spans),
            "instants": len(analysis.instants),
            "counters": len(analysis.counters),
            "time_range": [t0, t1],
        },
        "rollup": rollup,
        "critical_path": path,
        "layer_attribution": analysis.layer_attribution(),
        "counters": analysis.counter_stats(),
        "utilization": analysis.utilization(),
        "instants": analysis.instant_summary(),
        "follows_graph": edges,
        "hot_path": analysis.hot_path(),
    }


# ---------------------------------------------------------------------------
# Timeline report (telemetry series)
# ---------------------------------------------------------------------------

#: ASCII intensity ramp for sparklines, low to high.
_RAMP = " .:-=+*#@"


def sparkline(values: Sequence[Optional[float]], width: int = 60) -> str:
    """Render a value series as a fixed-width ASCII sparkline.

    Values are normalized to the series' own [min, max]; ``None``
    (empty window) renders as ``_``.  Longer series are folded into
    ``width`` buckets by taking each bucket's max — a dip narrower
    than one bucket still has to survive its neighbourhood, but a
    spike never disappears.
    """
    vals = list(values)
    if not vals:
        return ""
    if len(vals) > width:
        folded: List[Optional[float]] = []
        for i in range(width):
            lo = (i * len(vals)) // width
            hi = max(lo + 1, ((i + 1) * len(vals)) // width)
            bucket = [v for v in vals[lo:hi] if v is not None]
            folded.append(max(bucket) if bucket else None)
        vals = folded
    present = [v for v in vals if v is not None]
    if not present:
        return "_" * len(vals)
    lo, hi = min(present), max(present)
    span = hi - lo
    out = []
    for v in vals:
        if v is None:
            out.append("_")
        elif span <= 0:
            out.append(_RAMP[-1] if hi > 0 else _RAMP[0])
        else:
            idx = int((v - lo) / span * (len(_RAMP) - 1))
            out.append(_RAMP[idx])
    return "".join(out)


#: Which window statistic headlines each metric type's sparkline.
_HEADLINE_STAT = {
    "tally": "p99",
    "counter": "delta",
    "time_weighted": "mean",
    "gauge": "value",
    "histogram": "count",
}


def _series_key(record: dict) -> Tuple[str, str]:
    """Group samples into one series per (metric, identity labels).

    The derived ``layer`` label is presentation, not identity, so two
    attachments only split when a *distinguishing* label (node,
    architecture, device, ...) differs.
    """
    labels = {k: v for k, v in (record.get("labels") or {}).items()
              if k != "layer"}
    return (record["metric"],
            json.dumps(labels, sort_keys=True, default=str))


def _cluster_rows(series: Dict[Tuple[str, str], List[dict]]) -> List[str]:
    """Per-node rollup of ``cluster.*``/``lb.*`` series (empty for a
    single-host stream — the section renders only for cluster runs).

    One block per attachment context (e.g. ``scenario=...``): a fleet
    line for the unlabeled cluster counters, then one line per node.
    The registry's ``#N`` duplicate-name suffixes are presentation
    noise here — the ``node=`` label is the identity — so they are
    stripped.
    """
    groups: Dict[Tuple[str, int, str], Dict[str, float]] = {}
    for (metric, labels_json), recs in series.items():
        base = metric.split("#", 1)[0]
        if not (base.startswith("cluster.") or base.startswith("lb.")):
            continue
        last = recs[-1].get("stats", {})
        total = last.get("value", last.get("mean"))
        if total is None:
            continue
        labels = json.loads(labels_json)
        node = labels.pop("node", None)
        context = " ".join(f"{k}={v}" for k, v in sorted(labels.items()))
        key = (context, 0, "fleet") if node is None else (context, 1, node)
        groups.setdefault(key, {})[base] = total
    rows: List[str] = []
    previous = None
    for (context, _order, who) in sorted(groups):
        if context != previous:
            if previous is not None:
                rows.append("")
            if context:
                rows.append(f"[{context}]")
            previous = context
        metrics = groups[(context, _order, who)]
        rows.append(f"{who:<10} " + "  ".join(
            f"{m}={metrics[m]:g}" for m in sorted(metrics)))
    return rows


def render_timeline_report(records: Sequence[dict], top: int = 20,
                           width: int = 60) -> str:
    """Time-resolved text report over one telemetry series stream.

    Three sections: per-metric sparklines of the headline window
    statistic (p99 for tallies, delta for counters, mean for
    utilization signals), SLO status, and the alert timeline.  ``top``
    bounds the sparkline section (series ranked by peak headline
    value); SLO and alert sections are always complete.
    """
    headers = [r for r in records if r.get("kind") == "telemetry.header"]
    samples = [r for r in records if r.get("kind") == "sample"]
    alerts = [r for r in records if r.get("kind") == "alert"]
    slos = [r for r in records if r.get("kind") == "slo"]

    lines: List[str] = []
    lines += _section("telemetry")
    if headers:
        for header in headers:
            labels = header.get("labels") or {}
            label_text = " ".join(
                f"{k}={v}" for k, v in sorted(labels.items()))
            lines.append(
                f"stream interval {header.get('interval', 0) * _MS:g} ms"
                f"  rules {len(header.get('rules', []))}"
                + (f"  [{label_text}]" if label_text else "")
            )
    lines.append(
        f"records: {len(samples)} samples, {len(alerts)} alert "
        f"transitions, {len(slos)} slo summaries"
    )

    series: Dict[Tuple[str, str], List[dict]] = {}
    for record in samples:
        series.setdefault(_series_key(record), []).append(record)

    lines.append("")
    lines += _section(f"series (top {top} by peak, ramp '{_RAMP}')")
    if not series:
        lines.append("(no sample records)")
    ranked: List[Tuple[float, Tuple[str, str], List[Optional[float]],
                       dict]] = []
    for key, recs in series.items():
        recs.sort(key=lambda r: (r.get("window", 0), r.get("t1", 0.0)))
        stat = _HEADLINE_STAT.get(recs[0].get("type", ""), "value")
        values = [r.get("stats", {}).get(stat) for r in recs]
        present = [v for v in values if v is not None]
        if not present:
            continue
        ranked.append((max(present), key, values, recs[0]))
    ranked.sort(key=lambda item: (-item[0], item[1]))
    if ranked:
        t_end = max((r.get("t1", 0.0) for r in samples), default=0.0)
        lines.append(
            f"{'metric':<30} {'stat':<6} {'peak':>12} {'last':>12}  "
            f"windows [0 .. {t_end:.3f}s]"
        )
    for peak, (metric, labels_json), values, first in ranked[:top]:
        stat = _HEADLINE_STAT.get(first.get("type", ""), "value")
        layer = (first.get("labels") or {}).get("layer", "")
        identity = json.loads(labels_json)
        label_text = " ".join(
            f"{k}={v}" for k, v in sorted(identity.items()))
        present = [v for v in values if v is not None]
        lines.append(
            f"{metric:<30} {stat:<6} {peak:>12.6g} {present[-1]:>12.6g}  "
            f"|{sparkline(values, width)}|  [{layer}]"
            + (f" {label_text}" if label_text else "")
        )
    if len(ranked) > top:
        lines.append(f"... {len(ranked) - top} more series")

    cluster_rows = _cluster_rows(series)
    if cluster_rows:
        lines.append("")
        lines += _section("cluster")
        lines += cluster_rows

    lines.append("")
    lines += _section("slo status")
    if not slos:
        lines.append("(no slo rules evaluated)")
    for row in slos:
        worst = row.get("worst")
        lines.append(
            f"{row.get('final_state', '?'):<8} {row.get('rule'):<24} "
            f"[{row.get('slo_kind')}] objective {row.get('objective'):g}  "
            f"breached {row.get('breached', 0)}/{row.get('windows', 0)} "
            f"windows (no-data {row.get('no_data', 0)}), "
            f"fired {row.get('fired', 0)}, resolved {row.get('resolved', 0)}"
            + (f", worst {worst:.6g}" if worst is not None else "")
        )

    lines.append("")
    lines += _section("alert timeline")
    if not alerts:
        lines.append("(no alert transitions)")
    for alert in sorted(alerts, key=lambda a: (a.get("t", 0.0),
                                               a.get("rule", ""))):
        value = alert.get("value")
        if alert.get("state") != "firing":
            compare = "vs"
        elif alert.get("slo_kind") == "availability":
            compare = "<"  # availability degrades downward
        else:
            compare = ">"
        lines.append(
            f"t={alert.get('t', 0.0):>10.4f}s  "
            f"{alert.get('state', '?').upper():<8} "
            f"{alert.get('rule'):<24} [{alert.get('severity')}] "
            f"window {alert.get('window')}: "
            + (f"value {value:.6g} {compare} {alert.get('threshold'):g}"
               if value is not None else "(no data)")
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Baseline snapshots
# ---------------------------------------------------------------------------

BASELINE_SCHEMA = "repro.bench.baseline"
BASELINE_VERSION = 1

#: Input-parameter columns that are never performance metrics.
_NON_METRIC_COLUMNS = {"data_size_bytes", "predicted"}

#: Substrings marking a metric where *larger* is the good direction.
_HIGHER_IS_BETTER = ("speedup", "throughput", "hit_ratio", "hits")


def metric_direction(column: str) -> str:
    """``higher_is_better`` or ``lower_is_better`` for a column name."""
    lowered = column.lower()
    if any(tag in lowered for tag in _HIGHER_IS_BETTER):
        return "higher_is_better"
    return "lower_is_better"


def result_metrics(result: Any) -> Dict[str, Dict[str, Any]]:
    """Key metrics of one :class:`~repro.bench.report.ExperimentResult`.

    Every numeric column except the row key (first column), the
    published ``paper_*`` references, and known input parameters
    becomes one metric: ``{column: {count, mean, min, max, p50, p90,
    p99, direction}}``.  Columns with no numeric cells are skipped.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for idx, column in enumerate(result.columns):
        name = str(column)
        if idx == 0 or name.startswith("paper_") or name in _NON_METRIC_COLUMNS:
            continue
        values = [
            float(row[idx]) for row in result.rows
            if idx < len(row) and isinstance(row[idx], (int, float))
            and not isinstance(row[idx], bool)
        ]
        if not values:
            continue
        pct = percentiles(values)
        out[name] = {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
            **{f"p{q}": pct[q] for q in QUANTILES},
            "direction": metric_direction(name),
        }
    return out


def build_baseline(
    results: Iterable[Any],
    label: str = "",
    wall_seconds: Optional[Dict[str, float]] = None,
) -> dict:
    """Versioned, machine-readable snapshot of many experiment results.

    ``wall_seconds`` maps experiment id → host wall-clock seconds for
    the run that produced it.  It lands in a top-level ``wall_clock``
    section, *outside* ``experiments`` — informational by default, so
    the simulated-metric gate never fails on a noisy host.  Pass
    ``wall_threshold`` to :func:`gate_compare` to opt in to gating it.
    """
    experiments: Dict[str, dict] = {}
    for result in results:
        metrics = result_metrics(result)
        if not metrics:
            continue
        experiments[result.exp_id] = {
            "title": result.title,
            "metrics": metrics,
        }
    doc = {
        "schema": BASELINE_SCHEMA,
        "version": BASELINE_VERSION,
        "label": label,
        "experiments": experiments,
    }
    if wall_seconds:
        doc["wall_clock"] = {
            exp_id: round(float(seconds), 3)
            for exp_id, seconds in sorted(wall_seconds.items())
        }
    return doc


def write_baseline(
    path: str,
    results: Iterable[Any],
    label: str = "",
    wall_seconds: Optional[Dict[str, float]] = None,
) -> dict:
    """Build and write a baseline; returns the document."""
    doc = build_baseline(results, label=label, wall_seconds=wall_seconds)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def load_baseline(path: str) -> dict:
    """Load and validate a baseline document."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise BenchmarkError(f"{path}: cannot load baseline ({exc})") from None
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise BenchmarkError(f"{path}: not a {BASELINE_SCHEMA} document")
    if doc.get("version") != BASELINE_VERSION:
        raise BenchmarkError(
            f"{path}: baseline version {doc.get('version')!r} unsupported "
            f"(expected {BASELINE_VERSION})"
        )
    if not isinstance(doc.get("experiments"), dict):
        raise BenchmarkError(f"{path}: baseline has no experiments table")
    return doc


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------

#: Statistics compared by the gate, in report order.
_GATE_STATS = ("mean", "p99")


@dataclass(frozen=True)
class GateFinding:
    """One compared metric statistic."""

    exp_id: str
    metric: str
    stat: str  # "mean" | "p99" | "<presence>"
    baseline: Optional[float]
    candidate: Optional[float]
    direction: str
    regression: bool

    @property
    def delta_rel(self) -> Optional[float]:
        if self.baseline is None or self.candidate is None:
            return None
        base = max(abs(self.baseline), 1e-12)
        return (self.candidate - self.baseline) / base

    def render(self) -> str:
        tag = "REGRESSION" if self.regression else "ok"
        if self.delta_rel is None:
            return (f"{tag:<10} {self.exp_id}.{self.metric} [{self.stat}] "
                    f"missing on one side")
        return (
            f"{tag:<10} {self.exp_id}.{self.metric} [{self.stat}] "
            f"{self.baseline:.6g} -> {self.candidate:.6g} "
            f"({self.delta_rel:+.1%}, {self.direction})"
        )


def gate_compare(
    baseline: dict,
    candidate: dict,
    threshold: float = 0.10,
    wall_threshold: Optional[float] = None,
) -> List[GateFinding]:
    """Compare two baseline documents metric by metric.

    A metric statistic regresses when it moves beyond ``threshold``
    (relative) in the metric's *bad* direction — up for
    ``lower_is_better``, down for ``higher_is_better``.  Experiments
    or metrics present in the baseline but missing from the candidate
    are structural regressions; metrics new in the candidate are
    ignored (they have nothing to regress from).

    The ``wall_clock`` section is informational and skipped by
    default; passing ``wall_threshold`` opts in to comparing it (its
    entries never produce ``<presence>`` findings — wall numbers are
    host-dependent and may legitimately be absent).
    """
    if threshold < 0:
        raise BenchmarkError(f"threshold must be >= 0, got {threshold}")
    if wall_threshold is not None and wall_threshold < 0:
        raise BenchmarkError(
            f"wall threshold must be >= 0, got {wall_threshold}"
        )
    findings: List[GateFinding] = []
    base_exps = baseline["experiments"]
    cand_exps = candidate["experiments"]
    for exp_id in sorted(base_exps):
        base_metrics = base_exps[exp_id].get("metrics", {})
        cand_entry = cand_exps.get(exp_id)
        if cand_entry is None:
            findings.append(GateFinding(
                exp_id, "*", "<presence>", 1.0, None,
                "lower_is_better", True,
            ))
            continue
        cand_metrics = cand_entry.get("metrics", {})
        for metric in sorted(base_metrics):
            base_row = base_metrics[metric]
            cand_row = cand_metrics.get(metric)
            direction = base_row.get("direction", "lower_is_better")
            if cand_row is None:
                findings.append(GateFinding(
                    exp_id, metric, "<presence>", 1.0, None, direction, True,
                ))
                continue
            for stat in _GATE_STATS:
                bval = base_row.get(stat)
                cval = cand_row.get(stat)
                if bval is None or cval is None:
                    continue
                base_mag = max(abs(float(bval)), 1e-12)
                delta = (float(cval) - float(bval)) / base_mag
                worse = delta > threshold if direction == "lower_is_better" \
                    else delta < -threshold
                findings.append(GateFinding(
                    exp_id, metric, stat, float(bval), float(cval),
                    direction, worse,
                ))
    if wall_threshold is not None:
        base_wall = baseline.get("wall_clock", {})
        cand_wall = candidate.get("wall_clock", {})
        for exp_id in sorted(base_wall):
            bval = base_wall[exp_id]
            cval = cand_wall.get(exp_id)
            if cval is None:
                continue
            base_mag = max(abs(float(bval)), 1e-12)
            delta = (float(cval) - float(bval)) / base_mag
            findings.append(GateFinding(
                exp_id, "wall_seconds", "wall", float(bval), float(cval),
                "lower_is_better", delta > wall_threshold,
            ))
    return findings


def render_gate_report(findings: Sequence[GateFinding],
                       threshold: float, verbose: bool = False) -> str:
    """Per-metric comparison table; regressions always shown, clean
    rows only with ``verbose``."""
    regressions = [f for f in findings if f.regression]
    moved = [f for f in findings
             if not f.regression and f.delta_rel is not None
             and abs(f.delta_rel) > threshold]
    lines = [
        f"bench regression gate: {len(findings)} comparisons, "
        f"{len(regressions)} regression(s) beyond {threshold:.0%}"
    ]
    for finding in regressions:
        lines.append("  " + finding.render())
    if moved:
        lines.append(f"improvements/neutral moves beyond {threshold:.0%} "
                     "(not gated):")
        for finding in moved:
            lines.append("  " + finding.render())
    if verbose:
        for finding in findings:
            if not finding.regression and finding not in moved:
                lines.append("  " + finding.render())
    return "\n".join(lines)


def parse_threshold(text: str) -> float:
    """``"10%"`` → 0.10, ``"0.1"`` → 0.1 (both spellings accepted)."""
    raw = text.strip()
    try:
        if raw.endswith("%"):
            return float(raw[:-1]) / 100.0
        return float(raw)
    except ValueError:
        raise BenchmarkError(f"bad threshold {text!r}") from None

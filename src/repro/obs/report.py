"""Performance reports and the bench regression gate.

Two faces on top of :mod:`repro.obs.analysis`:

* :func:`render_trace_report` — the human-readable text report behind
  ``python -m repro.obs report <trace.jsonl>``: span rollup with self
  vs. total time and p50/p90/p99, the critical path with per-layer
  attribution, counter/utilization summaries, and the
  directly-follows graph of I/O operations.

* the **baseline/gate workflow** — ``python -m repro.bench ...
  --baseline-out BENCH_<name>.json`` snapshots every experiment's key
  metrics (mean/min/max and histogram-derived percentiles per numeric
  column) into a versioned JSON document; ``python -m repro.obs gate
  --baseline A.json --candidate B.json --threshold 10%`` compares two
  snapshots and exits nonzero when any metric *regresses* beyond the
  threshold.  Each metric carries a direction (``lower_is_better``
  for latencies, ``higher_is_better`` for speedups/hit ratios), so an
  improvement never fails the gate — it is reported, not punished.

The committed ``BENCH_seed.json`` is the repo's reference snapshot;
CI regenerates a candidate and runs the gate against it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import BenchmarkError
from repro.obs.analysis import QUANTILES, TraceAnalysis, percentiles

__all__ = [
    "render_trace_report",
    "BASELINE_SCHEMA",
    "BASELINE_VERSION",
    "metric_direction",
    "result_metrics",
    "build_baseline",
    "write_baseline",
    "load_baseline",
    "GateFinding",
    "gate_compare",
    "render_gate_report",
    "parse_threshold",
]

_MS = 1e3


# ---------------------------------------------------------------------------
# Trace report
# ---------------------------------------------------------------------------

def _section(title: str) -> List[str]:
    return [f"== {title} ==".ljust(72, "=")]


def render_trace_report(analysis: TraceAnalysis, top: int = 20) -> str:
    """Full text report over one analyzed trace.

    ``top`` bounds the rollup and follows-graph tables (the critical
    path and counter sections are always complete).
    """
    lines: List[str] = []
    t0, t1 = analysis.time_range
    lines += _section("trace")
    lines.append(
        f"events {len(analysis.events)} (spans {len(analysis.spans)}, "
        f"instants {len(analysis.instants)}, counters {len(analysis.counters)})"
        f"  simulated [{t0:.6f}s .. {t1:.6f}s]"
    )

    lines.append("")
    lines += _section(f"span rollup: self vs total time (top {top} by total)")
    rollup = analysis.rollup()
    lines.append(
        f"{'category':<10} {'span':<26} {'count':>6} {'total_ms':>10} "
        f"{'self_ms':>10} {'mean_ms':>9} {'p50_ms':>9} {'p90_ms':>9} "
        f"{'p99_ms':>9} {'max_ms':>9}"
    )
    ranked = sorted(rollup.items(), key=lambda kv: -kv[1]["total_s"])
    for (category, name), row in ranked[:top]:
        lines.append(
            f"{category:<10} {name:<26} {row['count']:>6d} "
            f"{row['total_s'] * _MS:>10.4f} {row['self_s'] * _MS:>10.4f} "
            f"{row['mean_s'] * _MS:>9.4f} {row['p50_s'] * _MS:>9.4f} "
            f"{row['p90_s'] * _MS:>9.4f} {row['p99_s'] * _MS:>9.4f} "
            f"{row['max_s'] * _MS:>9.4f}"
        )
    if len(ranked) > top:
        lines.append(f"... {len(ranked) - top} more span names")

    lines.append("")
    lines += _section("critical path (longest root-to-leaf chain)")
    path = analysis.critical_path()
    if not path:
        lines.append("(no spans)")
    else:
        for step in path:
            lines.append(
                f"{'  ' * step.depth}{step.name}  [{step.layer}]  "
                f"total {step.duration_s * _MS:.4f} ms, "
                f"self {step.self_s * _MS:.4f} ms"
            )
        lines.append("per-layer attribution of the critical path:")
        attribution = analysis.layer_attribution()
        total = sum(attribution.values()) or 1.0
        for layer, seconds in sorted(attribution.items(),
                                     key=lambda kv: -kv[1]):
            lines.append(
                f"  {layer:<12} {seconds * _MS:>12.4f} ms "
                f"({100.0 * seconds / total:5.1f}%)"
            )

    lines.append("")
    lines += _section("counters / utilization")
    util = analysis.utilization()
    if util["disk_busy"]:
        for device, fraction in sorted(util["disk_busy"].items()):
            lines.append(f"disk busy       {device:<16} {fraction:6.2%}")
    for name, row in sorted(util["queues"].items()):
        lines.append(
            f"queue depth     {name:<16} mean {row['mean_depth']:.3f} "
            f"max {row['max_depth']:.0f}"
        )
    if util["cache_hit_ratio"] is not None:
        lines.append(
            f"cache hit ratio final {util['cache_hit_ratio']:.4f} "
            f"(time-weighted mean {util['cache_hit_ratio_mean']:.4f})"
        )
    if not (util["disk_busy"] or util["queues"]
            or util["cache_hit_ratio"] is not None):
        lines.append("(no counter samples recorded)")

    instants = analysis.instant_summary()
    if instants:
        lines.append("")
        lines += _section("point events (faults / retries / degradation)")
        lines.append(f"{'event':<26} {'count':>6}  layers / breakdown")
        for name in sorted(instants):
            row = instants[name]
            layers = " ".join(
                f"{layer}×{count}"
                for layer, count in sorted(row["layers"].items()))
            details = []
            for key in ("kind", "target", "op", "reason", "action", "error"):
                tally = row["attrs"].get(key)
                if tally:
                    values = " ".join(
                        f"{value}×{count}"
                        for value, count in sorted(tally.items()))
                    details.append(f"{key}: {values}")
            lines.append(f"{name:<26} {row['count']:>6d}  {layers}")
            for detail in details:
                lines.append(f"{'':<34} {detail}")

    lines.append("")
    lines += _section(f"directly-follows graph of I/O ops (top {top} edges)")
    edges = analysis.follows_graph()
    if not edges:
        lines.append("(not enough operation spans)")
    else:
        ranked_edges = sorted(edges.items(), key=lambda kv: (-kv[1], kv[0]))
        for (a, b), count in ranked_edges[:top]:
            lines.append(f"{a:<26} -> {b:<26} x{count}")
        hot = analysis.hot_path(edges)
        if hot:
            lines.append("hot path: " + " -> ".join(hot))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Baseline snapshots
# ---------------------------------------------------------------------------

BASELINE_SCHEMA = "repro.bench.baseline"
BASELINE_VERSION = 1

#: Input-parameter columns that are never performance metrics.
_NON_METRIC_COLUMNS = {"data_size_bytes", "predicted"}

#: Substrings marking a metric where *larger* is the good direction.
_HIGHER_IS_BETTER = ("speedup", "throughput", "hit_ratio", "hits")


def metric_direction(column: str) -> str:
    """``higher_is_better`` or ``lower_is_better`` for a column name."""
    lowered = column.lower()
    if any(tag in lowered for tag in _HIGHER_IS_BETTER):
        return "higher_is_better"
    return "lower_is_better"


def result_metrics(result: Any) -> Dict[str, Dict[str, Any]]:
    """Key metrics of one :class:`~repro.bench.report.ExperimentResult`.

    Every numeric column except the row key (first column), the
    published ``paper_*`` references, and known input parameters
    becomes one metric: ``{column: {count, mean, min, max, p50, p90,
    p99, direction}}``.  Columns with no numeric cells are skipped.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for idx, column in enumerate(result.columns):
        name = str(column)
        if idx == 0 or name.startswith("paper_") or name in _NON_METRIC_COLUMNS:
            continue
        values = [
            float(row[idx]) for row in result.rows
            if idx < len(row) and isinstance(row[idx], (int, float))
            and not isinstance(row[idx], bool)
        ]
        if not values:
            continue
        pct = percentiles(values)
        out[name] = {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
            **{f"p{q}": pct[q] for q in QUANTILES},
            "direction": metric_direction(name),
        }
    return out


def build_baseline(
    results: Iterable[Any],
    label: str = "",
    wall_seconds: Optional[Dict[str, float]] = None,
) -> dict:
    """Versioned, machine-readable snapshot of many experiment results.

    ``wall_seconds`` maps experiment id → host wall-clock seconds for
    the run that produced it.  It lands in a top-level ``wall_clock``
    section, *outside* ``experiments`` — informational by default, so
    the simulated-metric gate never fails on a noisy host.  Pass
    ``wall_threshold`` to :func:`gate_compare` to opt in to gating it.
    """
    experiments: Dict[str, dict] = {}
    for result in results:
        metrics = result_metrics(result)
        if not metrics:
            continue
        experiments[result.exp_id] = {
            "title": result.title,
            "metrics": metrics,
        }
    doc = {
        "schema": BASELINE_SCHEMA,
        "version": BASELINE_VERSION,
        "label": label,
        "experiments": experiments,
    }
    if wall_seconds:
        doc["wall_clock"] = {
            exp_id: round(float(seconds), 3)
            for exp_id, seconds in sorted(wall_seconds.items())
        }
    return doc


def write_baseline(
    path: str,
    results: Iterable[Any],
    label: str = "",
    wall_seconds: Optional[Dict[str, float]] = None,
) -> dict:
    """Build and write a baseline; returns the document."""
    doc = build_baseline(results, label=label, wall_seconds=wall_seconds)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def load_baseline(path: str) -> dict:
    """Load and validate a baseline document."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise BenchmarkError(f"{path}: cannot load baseline ({exc})") from None
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise BenchmarkError(f"{path}: not a {BASELINE_SCHEMA} document")
    if doc.get("version") != BASELINE_VERSION:
        raise BenchmarkError(
            f"{path}: baseline version {doc.get('version')!r} unsupported "
            f"(expected {BASELINE_VERSION})"
        )
    if not isinstance(doc.get("experiments"), dict):
        raise BenchmarkError(f"{path}: baseline has no experiments table")
    return doc


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------

#: Statistics compared by the gate, in report order.
_GATE_STATS = ("mean", "p99")


@dataclass(frozen=True)
class GateFinding:
    """One compared metric statistic."""

    exp_id: str
    metric: str
    stat: str  # "mean" | "p99" | "<presence>"
    baseline: Optional[float]
    candidate: Optional[float]
    direction: str
    regression: bool

    @property
    def delta_rel(self) -> Optional[float]:
        if self.baseline is None or self.candidate is None:
            return None
        base = max(abs(self.baseline), 1e-12)
        return (self.candidate - self.baseline) / base

    def render(self) -> str:
        tag = "REGRESSION" if self.regression else "ok"
        if self.delta_rel is None:
            return (f"{tag:<10} {self.exp_id}.{self.metric} [{self.stat}] "
                    f"missing on one side")
        return (
            f"{tag:<10} {self.exp_id}.{self.metric} [{self.stat}] "
            f"{self.baseline:.6g} -> {self.candidate:.6g} "
            f"({self.delta_rel:+.1%}, {self.direction})"
        )


def gate_compare(
    baseline: dict,
    candidate: dict,
    threshold: float = 0.10,
    wall_threshold: Optional[float] = None,
) -> List[GateFinding]:
    """Compare two baseline documents metric by metric.

    A metric statistic regresses when it moves beyond ``threshold``
    (relative) in the metric's *bad* direction — up for
    ``lower_is_better``, down for ``higher_is_better``.  Experiments
    or metrics present in the baseline but missing from the candidate
    are structural regressions; metrics new in the candidate are
    ignored (they have nothing to regress from).

    The ``wall_clock`` section is informational and skipped by
    default; passing ``wall_threshold`` opts in to comparing it (its
    entries never produce ``<presence>`` findings — wall numbers are
    host-dependent and may legitimately be absent).
    """
    if threshold < 0:
        raise BenchmarkError(f"threshold must be >= 0, got {threshold}")
    if wall_threshold is not None and wall_threshold < 0:
        raise BenchmarkError(
            f"wall threshold must be >= 0, got {wall_threshold}"
        )
    findings: List[GateFinding] = []
    base_exps = baseline["experiments"]
    cand_exps = candidate["experiments"]
    for exp_id in sorted(base_exps):
        base_metrics = base_exps[exp_id].get("metrics", {})
        cand_entry = cand_exps.get(exp_id)
        if cand_entry is None:
            findings.append(GateFinding(
                exp_id, "*", "<presence>", 1.0, None,
                "lower_is_better", True,
            ))
            continue
        cand_metrics = cand_entry.get("metrics", {})
        for metric in sorted(base_metrics):
            base_row = base_metrics[metric]
            cand_row = cand_metrics.get(metric)
            direction = base_row.get("direction", "lower_is_better")
            if cand_row is None:
                findings.append(GateFinding(
                    exp_id, metric, "<presence>", 1.0, None, direction, True,
                ))
                continue
            for stat in _GATE_STATS:
                bval = base_row.get(stat)
                cval = cand_row.get(stat)
                if bval is None or cval is None:
                    continue
                base_mag = max(abs(float(bval)), 1e-12)
                delta = (float(cval) - float(bval)) / base_mag
                worse = delta > threshold if direction == "lower_is_better" \
                    else delta < -threshold
                findings.append(GateFinding(
                    exp_id, metric, stat, float(bval), float(cval),
                    direction, worse,
                ))
    if wall_threshold is not None:
        base_wall = baseline.get("wall_clock", {})
        cand_wall = candidate.get("wall_clock", {})
        for exp_id in sorted(base_wall):
            bval = base_wall[exp_id]
            cval = cand_wall.get(exp_id)
            if cval is None:
                continue
            base_mag = max(abs(float(bval)), 1e-12)
            delta = (float(cval) - float(bval)) / base_mag
            findings.append(GateFinding(
                exp_id, "wall_seconds", "wall", float(bval), float(cval),
                "lower_is_better", delta > wall_threshold,
            ))
    return findings


def render_gate_report(findings: Sequence[GateFinding],
                       threshold: float, verbose: bool = False) -> str:
    """Per-metric comparison table; regressions always shown, clean
    rows only with ``verbose``."""
    regressions = [f for f in findings if f.regression]
    moved = [f for f in findings
             if not f.regression and f.delta_rel is not None
             and abs(f.delta_rel) > threshold]
    lines = [
        f"bench regression gate: {len(findings)} comparisons, "
        f"{len(regressions)} regression(s) beyond {threshold:.0%}"
    ]
    for finding in regressions:
        lines.append("  " + finding.render())
    if moved:
        lines.append(f"improvements/neutral moves beyond {threshold:.0%} "
                     "(not gated):")
        for finding in moved:
            lines.append("  " + finding.render())
    if verbose:
        for finding in findings:
            if not finding.regression and finding not in moved:
                lines.append("  " + finding.render())
    return "\n".join(lines)


def parse_threshold(text: str) -> float:
    """``"10%"`` → 0.10, ``"0.1"`` → 0.1 (both spellings accepted)."""
    raw = text.strip()
    try:
        if raw.endswith("%"):
            return float(raw[:-1]) / 100.0
        return float(raw)
    except ValueError:
        raise BenchmarkError(f"bad threshold {text!r}") from None

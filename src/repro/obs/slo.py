"""Deterministic SLO tracking and alerting over windowed telemetry.

Service-level objectives here are *declarative* and *simulated-time
deterministic*: an :class:`SloSpec` names a metric and an objective, an
:class:`AlertRule` wraps a spec with firing hysteresis, and an
:class:`SloEvaluator` folds both over the per-window statistics the
:class:`~repro.obs.timeseries.TelemetrySampler` produces at each sample
boundary.  Nothing consults the wall clock and nothing is sampled
probabilistically, so two same-seed runs evaluate to byte-identical
alert streams.

Three objective kinds are supported:

``latency``
    A windowed statistic of a tally (default ``p99``) must stay at or
    under ``objective`` (seconds).  Example: *"p99 read latency under
    80 ms"*.
``availability``
    ``1 - errors/total`` over the window must stay at or above
    ``objective`` (a fraction).  ``metric`` is the error counter,
    ``total_metric`` the attempt counter.
``error_budget``
    The classic burn-rate alert: the window's error ratio divided by
    the budget ``1 - objective`` must stay at or under
    ``burn_threshold``.  A burn rate of 1.0 spends the budget exactly
    at the rate the objective allows; 14.4 is the canonical
    "page now" multiplier.

Alert instants and end-of-run SLO summaries are plain dicts shaped for
the telemetry JSONL stream (see
:func:`repro.obs.timeseries.write_series_jsonl`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["SloSpec", "AlertRule", "SloEvaluator"]

_KINDS = ("latency", "availability", "error_budget")

#: Window verdicts an SloSpec can return.
OK, BREACH, NO_DATA = "ok", "breach", "no_data"


def _window_delta(stats: Optional[Mapping[str, Any]]) -> Optional[float]:
    """Per-window increment of a counter-style stats object.

    Counters report ``delta``; tallies report ``count`` — either works
    as a numerator/denominator for the ratio SLO kinds.
    """
    if not stats:
        return None
    value = stats.get("delta", stats.get("count"))
    return None if value is None else float(value)


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective.

    Parameters
    ----------
    name:
        Unique rule name; appears in every alert and summary record.
    kind:
        ``"latency"``, ``"availability"`` or ``"error_budget"``.
    metric:
        For ``latency``: the tally metric whose windowed statistic is
        checked.  For the ratio kinds: the *error* counter metric.
    objective:
        ``latency``: max allowed seconds.  ``availability`` /
        ``error_budget``: target availability fraction in (0, 1).
    stat:
        Windowed statistic compared for ``latency`` (default
        ``"p99"``; any key of the tally window stats works).
    total_metric:
        Denominator counter for the ratio kinds (total attempts).
    burn_threshold:
        ``error_budget`` only: max allowed burn-rate multiple.
    """

    name: str
    kind: str
    metric: str
    objective: float
    stat: str = "p99"
    total_metric: Optional[str] = None
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("SloSpec needs a non-empty name")
        if self.kind not in _KINDS:
            raise SimulationError(
                f"SloSpec {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(_KINDS)})"
            )
        if self.kind == "latency":
            if self.objective <= 0:
                raise SimulationError(
                    f"SloSpec {self.name!r}: latency objective must be "
                    f"> 0 seconds, got {self.objective}"
                )
        else:
            if not 0.0 < self.objective < 1.0:
                raise SimulationError(
                    f"SloSpec {self.name!r}: {self.kind} objective must "
                    f"be a fraction in (0, 1), got {self.objective}"
                )
            if not self.total_metric:
                raise SimulationError(
                    f"SloSpec {self.name!r}: {self.kind} needs "
                    "total_metric (the attempts counter)"
                )
        if self.burn_threshold <= 0:
            raise SimulationError(
                f"SloSpec {self.name!r}: burn_threshold must be > 0, "
                f"got {self.burn_threshold}"
            )

    # -- window evaluation --------------------------------------------------

    def evaluate_window(
        self, window: Mapping[str, Mapping[str, Any]]
    ) -> Tuple[str, Optional[float], float]:
        """Verdict for one sample window.

        ``window`` maps metric name → that metric's window stats (the
        ``stats`` object of a telemetry ``sample`` record).  Returns
        ``(status, value, threshold)`` where status is ``"ok"``,
        ``"breach"`` or ``"no_data"`` (metric absent or an empty
        window — e.g. no requests completed while a disk is wedged).
        """
        if self.kind == "latency":
            stats = window.get(self.metric)
            if not stats or not stats.get("count"):
                return NO_DATA, None, self.objective
            value = stats.get(self.stat)
            if value is None:
                return NO_DATA, None, self.objective
            status = BREACH if value > self.objective else OK
            return status, float(value), self.objective

        errors = _window_delta(window.get(self.metric))
        total = _window_delta(window.get(self.total_metric or ""))
        if total is None or errors is None or total <= 0:
            return NO_DATA, None, self._ratio_threshold()
        ratio = errors / total
        if self.kind == "availability":
            value = 1.0 - ratio
            status = BREACH if value < self.objective else OK
            return status, value, self.objective
        burn = ratio / (1.0 - self.objective)
        status = BREACH if burn > self.burn_threshold else OK
        return status, burn, self.burn_threshold

    def _ratio_threshold(self) -> float:
        return (self.objective if self.kind == "availability"
                else self.burn_threshold)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready description (lands in the telemetry header)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "objective": self.objective,
        }
        if self.kind == "latency":
            out["stat"] = self.stat
        else:
            out["total_metric"] = self.total_metric
        if self.kind == "error_budget":
            out["burn_threshold"] = self.burn_threshold
        return out


@dataclass(frozen=True)
class AlertRule:
    """Firing policy around one :class:`SloSpec`.

    ``for_windows`` consecutive breached windows fire the alert;
    ``clear_windows`` consecutive non-breached windows resolve it —
    the same hysteresis a Prometheus ``for:`` clause provides, but on
    deterministic simulated-time windows.  ``no_data`` windows count
    toward neither streak (a silent window neither pages nor gives the
    all-clear).
    """

    slo: SloSpec
    for_windows: int = 1
    clear_windows: int = 1
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.for_windows < 1:
            raise SimulationError(
                f"AlertRule {self.slo.name!r}: for_windows must be >= 1"
            )
        if self.clear_windows < 1:
            raise SimulationError(
                f"AlertRule {self.slo.name!r}: clear_windows must be >= 1"
            )

    @property
    def name(self) -> str:
        return self.slo.name


@dataclass
class _RuleState:
    """Mutable per-rule evaluation state."""

    breach_streak: int = 0
    ok_streak: int = 0
    firing: bool = False
    windows: int = 0
    breached: int = 0
    no_data: int = 0
    fired: int = 0
    resolved: int = 0
    worst: Optional[float] = None


class SloEvaluator:
    """Folds :class:`AlertRule` state machines over sample windows.

    One evaluator per sampler; :meth:`evaluate` is called once per
    sample boundary (in rule declaration order, so the record stream
    is deterministic) and returns the alert transition records to
    append to the telemetry stream.  :meth:`summaries` renders the
    end-of-run per-SLO rollup.
    """

    def __init__(self, rules: List[AlertRule]) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise SimulationError(
                f"SloEvaluator: duplicate rule names in {names}"
            )
        self.rules = list(rules)
        self._state: Dict[str, _RuleState] = {
            r.name: _RuleState() for r in rules
        }

    def evaluate(
        self,
        window_index: int,
        t: float,
        window: Mapping[str, Mapping[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Evaluate every rule against one window's statistics.

        Returns zero or more alert records — a ``firing`` record the
        window a rule's breach streak reaches ``for_windows``, a
        ``resolved`` record the window its ok streak reaches
        ``clear_windows`` while firing.
        """
        records: List[Dict[str, Any]] = []
        for rule in self.rules:
            state = self._state[rule.name]
            status, value, threshold = rule.slo.evaluate_window(window)
            state.windows += 1
            if status == NO_DATA:
                state.no_data += 1
                continue
            is_worse = self._is_worse(rule.slo, value, state.worst)
            if is_worse:
                state.worst = value
            if status == BREACH:
                state.breached += 1
                state.breach_streak += 1
                state.ok_streak = 0
                if (not state.firing
                        and state.breach_streak >= rule.for_windows):
                    state.firing = True
                    state.fired += 1
                    records.append(self._record(
                        rule, "firing", window_index, t, value, threshold))
            else:
                state.ok_streak += 1
                state.breach_streak = 0
                if state.firing and state.ok_streak >= rule.clear_windows:
                    state.firing = False
                    state.resolved += 1
                    records.append(self._record(
                        rule, "resolved", window_index, t, value, threshold))
        return records

    @staticmethod
    def _is_worse(slo: SloSpec, value: Optional[float],
                  worst: Optional[float]) -> bool:
        if value is None:
            return False
        if worst is None:
            return True
        # Availability degrades downward; latency and burn rate upward.
        if slo.kind == "availability":
            return value < worst
        return value > worst

    @staticmethod
    def _record(rule: AlertRule, state: str, window_index: int, t: float,
                value: Optional[float], threshold: float) -> Dict[str, Any]:
        return {
            "kind": "alert",
            "rule": rule.name,
            "slo_kind": rule.slo.kind,
            "state": state,
            "severity": rule.severity,
            "window": window_index,
            "t": t,
            "value": value,
            "threshold": threshold,
        }

    def summaries(self) -> List[Dict[str, Any]]:
        """One end-of-run ``slo`` record per rule, in rule order."""
        out: List[Dict[str, Any]] = []
        for rule in self.rules:
            state = self._state[rule.name]
            out.append({
                "kind": "slo",
                "rule": rule.name,
                "slo_kind": rule.slo.kind,
                "objective": rule.slo.objective,
                "windows": state.windows,
                "breached": state.breached,
                "no_data": state.no_data,
                "fired": state.fired,
                "resolved": state.resolved,
                "worst": state.worst,
                "final_state": "firing" if state.firing else "ok",
            })
        return out

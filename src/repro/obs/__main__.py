"""Analyze traces and gate benchmark baselines::

    python -m repro.bench tab1 --trace-jsonl tab1.jsonl
    python -m repro.obs report tab1.jsonl            # where did time go?

    python -m repro.bench --baseline-out BENCH_now.json
    python -m repro.obs gate --baseline BENCH_seed.json \
        --candidate BENCH_now.json --threshold 10%

Exit codes: ``report`` returns 0 (2 on unreadable input); ``gate``
returns 0 when no metric regresses beyond the threshold, 1 when one
does, 2 on unreadable/invalid baselines.

See docs/observability.md ("Analysis & regression gate") for the
report sections, the baseline schema, and a worked example.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.obs.analysis import analyze
from repro.obs.export import read_jsonl
from repro.obs.report import (
    gate_compare,
    load_baseline,
    parse_threshold,
    render_gate_report,
    render_trace_report,
)


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        events = read_jsonl(args.trace)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_trace_report(analyze(events), top=args.top))
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    try:
        threshold = parse_threshold(args.threshold)
        wall_threshold = (
            parse_threshold(args.wall_threshold)
            if args.wall_threshold else None
        )
        baseline = load_baseline(args.baseline)
        candidate = load_baseline(args.candidate)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = gate_compare(baseline, candidate, threshold=threshold,
                            wall_threshold=wall_threshold)
    print(render_gate_report(findings, threshold, verbose=args.verbose))
    return 1 if any(f.regression for f in findings) else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="trace analysis reports and the bench regression gate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render the analysis report for a JSONL trace"
    )
    report.add_argument("trace", help="trace file from --trace-jsonl")
    report.add_argument("--top", type=int, default=20,
                        help="rows per table section (default 20)")
    report.set_defaults(fn=_cmd_report)

    gate = sub.add_parser(
        "gate", help="compare two bench baselines; nonzero on regression"
    )
    gate.add_argument("--baseline", required=True,
                      help="reference snapshot (e.g. BENCH_seed.json)")
    gate.add_argument("--candidate", required=True,
                      help="snapshot from the current tree")
    gate.add_argument("--threshold", default="10%",
                      help="relative regression threshold, e.g. 10%% or 0.1")
    gate.add_argument("--wall-threshold", default=None,
                      help="opt in to gating the informational wall_clock "
                      "section at this threshold (e.g. 50%%); off by default "
                      "because wall time is host-dependent")
    gate.add_argument("--verbose", action="store_true",
                      help="also print metrics that did not move")
    gate.set_defaults(fn=_cmd_gate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Analyze traces, render telemetry timelines, gate bench baselines::

    python -m repro.bench tab1 --trace-jsonl tab1.jsonl
    python -m repro.obs report tab1.jsonl            # where did time go?
    python -m repro.obs report tab1.jsonl --format json   # machine-readable

    python -m repro.bench ext_faults --telemetry-out series.jsonl
    python -m repro.obs timeline series.jsonl        # when did it go there?

    python -m repro.bench --baseline-out BENCH_now.json
    python -m repro.obs gate --baseline BENCH_seed.json \
        --candidate BENCH_now.json --threshold 10%

Exit codes: ``report`` and ``timeline`` return 0 (2 on unreadable or
invalid input); ``gate`` returns 0 when no metric regresses beyond the
threshold, 1 when one does, 2 on unreadable/invalid baselines.

See docs/observability.md ("Analysis & regression gate", "Time series,
SLOs & alerts") for the report sections, the baseline and series
schemas, and worked examples.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.obs.analysis import analyze
from repro.obs.export import read_jsonl, read_series_jsonl
from repro.obs.report import (
    analysis_to_dict,
    gate_compare,
    load_baseline,
    parse_threshold,
    render_gate_report,
    render_timeline_report,
    render_trace_report,
)


def _check_top(top: int) -> int:
    """``--top`` must be positive (matches the ``Probe.render`` limit
    contract: a non-positive limit renders nothing, which as CLI
    output is never what anyone wants)."""
    if top <= 0:
        print(f"error: --top must be >= 1, got {top}", file=sys.stderr)
        return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    status = _check_top(args.top)
    if status:
        return status
    try:
        events = read_jsonl(args.trace)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    analysis = analyze(events)
    if args.format == "json":
        print(json.dumps(analysis_to_dict(analysis), indent=1,
                         sort_keys=True))
    else:
        print(render_trace_report(analysis, top=args.top))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    status = _check_top(args.top)
    if status:
        return status
    if args.width < 10:
        print(f"error: --width must be >= 10, got {args.width}",
              file=sys.stderr)
        return 2
    try:
        records = read_series_jsonl(args.series)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_timeline_report(records, top=args.top, width=args.width))
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    try:
        threshold = parse_threshold(args.threshold)
        wall_threshold = (
            parse_threshold(args.wall_threshold)
            if args.wall_threshold else None
        )
        baseline = load_baseline(args.baseline)
        candidate = load_baseline(args.candidate)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = gate_compare(baseline, candidate, threshold=threshold,
                            wall_threshold=wall_threshold)
    print(render_gate_report(findings, threshold, verbose=args.verbose))
    return 1 if any(f.regression for f in findings) else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="trace analysis reports and the bench regression gate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render the analysis report for a JSONL trace"
    )
    report.add_argument("trace", help="trace file from --trace-jsonl")
    report.add_argument("--top", type=int, default=20,
                        help="rows per table section (default 20)")
    report.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="text report or the full analysis rollup "
                        "as JSON (default text)")
    report.set_defaults(fn=_cmd_report)

    timeline = sub.add_parser(
        "timeline",
        help="render the time-resolved report for a telemetry series",
    )
    timeline.add_argument("series",
                          help="series file from --telemetry-out")
    timeline.add_argument("--top", type=int, default=20,
                          help="series rows shown (default 20)")
    timeline.add_argument("--width", type=int, default=60,
                          help="sparkline width in characters "
                          "(default 60)")
    timeline.set_defaults(fn=_cmd_timeline)

    gate = sub.add_parser(
        "gate", help="compare two bench baselines; nonzero on regression"
    )
    gate.add_argument("--baseline", required=True,
                      help="reference snapshot (e.g. BENCH_seed.json)")
    gate.add_argument("--candidate", required=True,
                      help="snapshot from the current tree")
    gate.add_argument("--threshold", default="10%",
                      help="relative regression threshold, e.g. 10%% or 0.1")
    gate.add_argument("--wall-threshold", default=None,
                      help="opt in to gating the informational wall_clock "
                      "section at this threshold (e.g. 50%%); off by default "
                      "because wall time is host-dependent")
    gate.add_argument("--verbose", action="store_true",
                      help="also print metrics that did not move")
    gate.set_defaults(fn=_cmd_gate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())

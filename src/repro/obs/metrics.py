"""The metrics registry: one named catalogue over every collector.

The simulation already has good collectors —
:class:`~repro.sim.stats.Counter`, :class:`~repro.sim.stats.Tally`,
:class:`~repro.sim.stats.TimeWeighted`,
:class:`~repro.sim.stats.Histogram` — but each component kept its own
ad-hoc handful, so "what did this run measure?" had no single answer.
A :class:`MetricsRegistry` unifies them: components register their
collectors (or zero-argument gauge callables) under dotted names with
optional labels, and ``snapshot()`` returns the whole run's state as
one plain dict, ready for JSON.

Every :class:`~repro.sim.engine.Engine` owns a registry
(``engine.metrics``); components register at construction, so the
catalogue is always complete without any per-event cost.

The registry dispatches on *structure*, not type, so it accepts any
object quacking like one of the standard collectors (and dataclasses
such as :class:`~repro.io.buffercache.CacheStats` — summarized field
by field).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named, labeled catalogue of metric collectors.

    Names are dotted strings (``"disk.service"``); registering a name
    that is already taken appends ``#2``, ``#3``, … so independent
    components never clobber each other (``register`` returns the
    final name).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._labels: Dict[str, Dict[str, Any]] = {}

    # -- registration -----------------------------------------------------------

    def register(self, name: str, collector: Any, **labels: Any) -> str:
        """Add ``collector`` under ``name``; returns the (possibly
        uniquified) name actually used."""
        if not name:
            raise SimulationError("metric name must be non-empty")
        final = name
        n = 1
        while final in self._metrics:
            n += 1
            final = f"{name}#{n}"
        self._metrics[final] = collector
        if labels:
            self._labels[final] = dict(labels)
        return final

    def gauge(self, name: str, fn: Callable[[], Any], **labels: Any) -> str:
        """Register a zero-argument callable sampled at snapshot time."""
        if not callable(fn):
            raise SimulationError(f"gauge {name!r} needs a callable, got {fn!r}")
        return self.register(name, fn, **labels)

    # -- queries ---------------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Any:
        try:
            return self._metrics[name]
        except KeyError:
            raise SimulationError(f"no metric named {name!r}") from None

    def labels_of(self, name: str) -> Dict[str, Any]:
        return dict(self._labels.get(name, {}))

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- snapshot ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """Summarize every registered metric into one JSON-ready dict.

        Each entry carries a ``type`` key (``counter``, ``tally``,
        ``time_weighted``, ``histogram``, ``gauge``, ``object`` or
        ``value``) plus type-specific fields; empty tallies report
        ``count: 0`` with ``None`` statistics rather than raising.
        """
        out: Dict[str, dict] = {}
        for name, collector in self._metrics.items():
            entry = _summarize(collector)
            labels = self._labels.get(name)
            if labels:
                entry["labels"] = dict(labels)
            out[name] = entry
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self._metrics)} metrics>"


def _summarize(obj: Any) -> dict:
    """Structural dispatch over the known collector shapes."""
    # Histogram: binned counts with under/overflow.
    if hasattr(obj, "bin_edges") and hasattr(obj, "counts"):
        return {
            "type": "histogram",
            "count": obj.count,
            "low": obj.low,
            "high": obj.high,
            "bins": obj.bins,
            "counts": [int(c) for c in obj.counts],
            "underflow": obj.underflow,
            "overflow": obj.overflow,
        }
    # Tally: per-observation statistics (guard the empty case).
    if hasattr(obj, "percentile") and hasattr(obj, "count"):
        if obj.count == 0:
            return {"type": "tally", "count": 0, "total": 0.0,
                    "mean": None, "min": None, "max": None}
        return {
            "type": "tally",
            "count": obj.count,
            "total": obj.total,
            "mean": obj.mean,
            "min": obj.minimum,
            "max": obj.maximum,
        }
    # TimeWeighted: piecewise-constant signal.
    if hasattr(obj, "current") and callable(getattr(obj, "mean", None)):
        return {
            "type": "time_weighted",
            "current": obj.current,
            "mean": obj.mean(),
            "max": obj.maximum,
        }
    # Counter: monotone value.
    if hasattr(obj, "add") and hasattr(obj, "value"):
        return {"type": "counter", "value": obj.value}
    # Dataclass (e.g. CacheStats): field-by-field.
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"type": "object", "fields": dataclasses.asdict(obj)}
    # Gauge: sample the callable now.
    if callable(obj):
        return {"type": "gauge", "value": obj()}
    return {"type": "value", "value": obj}

"""Bundled benchmark assemblies — the analyzer's standard corpus.

Every CIL program the repo ships as part of a benchmark is
constructible here by name, so ``python -m repro.analysis`` (and the
CI job) can sweep the whole corpus:

* ``microbench``    — the :mod:`repro.cli.microbench` kernel suite
  (``ext_cil``'s workload);
* ``trace_replay``  — the trace-replay dispatch loop
  (:func:`repro.traces.replay.build_replay_method`);
* ``webserver``     — the web-server handler chain
  (:func:`repro.webserver.server.build_handler_methods`);
* ``qcrd_cil``      — a CIL encoding of the QCRD application's phase
  structure (paper §2.2, Eqs. 9–10): Program 1's 12 alternating
  CPU/I-O cycles and Program 2's 13 identical I/O phases as managed
  driver loops over ``Qcrd.*`` intrinsics;
* ``cluster``       — the cluster coordinator's protocol loops
  (:mod:`repro.cluster.client`) as managed code: a failover read that
  walks the replica order with a protected region per attempt, and a
  replicated write that drives every replica before committing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set

from repro.cli.assembly import AssemblyBuilder, MethodBuilder
from repro.cli.cil import Op
from repro.cli.metadata import AssemblyDef, MethodDef
from repro.errors import CliError

__all__ = [
    "BUNDLED",
    "bundled_assembly",
    "build_microbench_assembly",
    "build_trace_replay_assembly",
    "build_webserver_assembly",
    "build_qcrd_cil_assembly",
    "build_cluster_assembly",
]


def _add_with_callees(
    ab: AssemblyBuilder, type_name: str, method: MethodDef, seen: Set[int]
) -> None:
    """Add ``method`` and every MethodDef it references (helpers built
    outside an assembly, e.g. the microbench ``call`` kernel's callee)."""
    if method.token in seen:
        return
    seen.add(method.token)
    for ins in method.body:
        if ins.op is Op.CALL and isinstance(ins.operand, MethodDef):
            _add_with_callees(ab, type_name, ins.operand, seen)
    ab.add_method(type_name, method)


def build_microbench_assembly() -> AssemblyDef:
    """All microbenchmark kernels (plus their helper callees)."""
    from repro.cli.microbench import KERNELS, build_kernel

    ab = AssemblyBuilder("Microbench")
    seen: Set[int] = set()
    for name in sorted(KERNELS):
        method, _expected = build_kernel(name)
        _add_with_callees(ab, "Kernels", method, seen)
    return ab.build()


def build_trace_replay_assembly() -> AssemblyDef:
    """The trace-replay dispatch loop, as the replayer assembles it."""
    from repro.traces.replay import build_replay_method

    ab = AssemblyBuilder("TraceBenchmark")
    ab.add_method("TraceBench", build_replay_method())
    return ab.build()


def build_webserver_assembly() -> AssemblyDef:
    """The web-server handler chain, as the server assembles it."""
    from repro.webserver.server import build_handler_methods

    ab = AssemblyBuilder("WebServerApp")
    for method in build_handler_methods():
        ab.add_method("Work", method)
    return ab.build()


def build_qcrd_cil_assembly() -> AssemblyDef:
    """QCRD's phase structure as managed driver loops.

    ``RunProgram1(cycles)`` runs ``cycles`` CPU/I-O cycle pairs
    (Eq. 9's alternating odd/even working sets); ``RunProgram2(phases)``
    runs ``phases`` identical I/O phases (Eq. 10); ``Main`` drives
    both with the paper's repetition counts (12 cycles, 13 phases) and
    returns the total phase count, also accumulated into the
    ``Qcrd::phases_total`` static for cross-thread observability.
    """
    program1 = (
        MethodBuilder("RunProgram1", returns=True)
        .arg("cycles").local("i").local("phases")
        .ldc(0).stloc("phases")
        .ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("cycles").clt().brfalse("done")
        .ldloc("i").call_intrinsic("Qcrd.ComputePhase", 1, False)
        .ldloc("i").call_intrinsic("Qcrd.IoPhase", 1, False)
        .ldloc("phases").ldc(2).add().stloc("phases")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done")
        .ldloc("phases").ret()
        .build()
    )
    program2 = (
        MethodBuilder("RunProgram2", returns=True)
        .arg("phases").local("i")
        .ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("phases").clt().brfalse("done")
        .ldloc("i").call_intrinsic("Qcrd.IoPhase", 1, False)
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done")
        .ldloc("i").conv("i8").ret()
        .build()
    )
    main = (
        MethodBuilder("Main", returns=True)
        .local("total")
        .ldc(12).call(program1)
        .ldc(13).call(program2)
        .add().conv("i4").stloc("total")
        .ldsfld("Qcrd::phases_total").ldloc("total").add()
        .stsfld("Qcrd::phases_total")
        .ldloc("total").ret()
        .build()
    )
    ab = AssemblyBuilder("QcrdCil")
    for method in (program1, program2, main):
        ab.add_method("Qcrd", method)
    return ab.build()


def build_cluster_assembly() -> AssemblyDef:
    """The cluster coordinator's protocol loops as managed code.

    ``FailoverRead(replicas)`` walks the replica order — a per-replica
    miss comes back as a 0-byte status and advances to the next
    candidate, only an exhausted order returns 0.
    ``ReadWithFallback(replicas)`` runs the walk in a protected region
    so a transport blow-up (``System.Net.*``) degrades to 0 bytes
    instead of unwinding the caller.  ``ReplicateWrite(replicas)``
    drives every replica, counts acknowledgements, and commits the
    tally — the replicate-before-ack shape the sanitizer's protocol
    invariant checks dynamically.  ``Main`` drives both at R=3 and
    accumulates into the ``Cluster::served_total`` static.
    """
    failover_read = (
        MethodBuilder("FailoverRead", returns=True)
        .arg("replicas").local("i").local("nbytes")
        .ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("replicas").clt().brfalse("miss")
        .ldloc("i").call_intrinsic("Cluster.TryReadReplica", 1, True)
        .stloc("nbytes")
        .ldloc("nbytes").ldc(0).ceq().brfalse("hit")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("hit")
        .ldloc("nbytes").ret()
        .label("miss")
        .ldc(0).ret()
        .build()
    )
    read_with_fallback = (
        # The handler is entered with conservative (may-uninit) locals,
        # so it touches none: it pops the exception and reports a
        # degraded (0-byte) read.
        MethodBuilder("ReadWithFallback", returns=True)
        .arg("replicas").local("nbytes")
        .begin_try()
        .ldarg("replicas").call(failover_read).stloc("nbytes")
        .end_try("degraded", catches="System.Net.")
        .ldloc("nbytes").ret()
        .label("degraded").pop()
        .ldc(0).ret()
        .build()
    )
    replicate_write = (
        MethodBuilder("ReplicateWrite", returns=True)
        .arg("replicas").local("i").local("acks")
        .ldc(0).stloc("acks")
        .ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("replicas").clt().brfalse("commit")
        .ldloc("i").call_intrinsic("Cluster.PostReplica", 1, True)
        .ldloc("acks").add().stloc("acks")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("commit")
        .ldloc("acks").call_intrinsic("Cluster.Commit", 1, False)
        .ldloc("acks").ret()
        .build()
    )
    main = (
        MethodBuilder("Main", returns=True)
        .local("total")
        .ldc(3).call(replicate_write)
        .ldc(3).call(read_with_fallback)
        .add().conv("i4").stloc("total")
        .ldsfld("Cluster::served_total").ldloc("total").add()
        .stsfld("Cluster::served_total")
        .ldloc("total").ret()
        .build()
    )
    ab = AssemblyBuilder("ClusterCoordinator")
    for method in (failover_read, read_with_fallback, replicate_write, main):
        ab.add_method("Coordinator", method)
    return ab.build()


#: name → builder for every bundled benchmark assembly.
BUNDLED: Dict[str, Callable[[], AssemblyDef]] = {
    "microbench": build_microbench_assembly,
    "trace_replay": build_trace_replay_assembly,
    "webserver": build_webserver_assembly,
    "qcrd_cil": build_qcrd_cil_assembly,
    "cluster": build_cluster_assembly,
}


def bundled_assembly(name: str) -> AssemblyDef:
    """Build one bundled assembly by registry name."""
    try:
        builder = BUNDLED[name]
    except KeyError:
        raise CliError(
            f"unknown bundled assembly {name!r}; choices: {sorted(BUNDLED)}"
        ) from None
    return builder()

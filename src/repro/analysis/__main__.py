"""CLI entry point: ``python -m repro.analysis``.

Analyze one or more CIL assemblies — bundled benchmark corpora by
registry name, or any importable module exposing assemblies/methods —
and report diagnostics::

    python -m repro.analysis --all
    python -m repro.analysis microbench webserver --format json
    python -m repro.analysis repro.traces.replay:build_replay_method
    python -m repro.analysis --all --fail-on warning

Exit codes: 0 — no diagnostic at/above the ``--fail-on`` threshold
(default ``error``); 1 — threshold reached; 2 — usage or target
resolution failure.  All output is deterministically ordered, so the
JSON document is byte-identical across runs in one interpreter.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity, render_text
from repro.analysis.driver import AssemblyAnalysis, analyze_assembly, resolve_targets
from repro.analysis.targets import BUNDLED
from repro.errors import CliError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis over CIL method bodies.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="ASSEMBLY",
        help="bundled assembly name (see --list) or importable "
        "module[:attr] exposing AssemblyDef/MethodDef values",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="analyze every bundled benchmark assembly",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list bundled assembly names and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--fail-on",
        metavar="SEVERITY",
        default="error",
        help="exit 1 if any diagnostic is at or above this severity "
        "(note|warning|error; default: error)",
    )
    return parser


def _render_text_report(analyses: Sequence[AssemblyAnalysis]) -> str:
    lines: List[str] = []
    for aa in analyses:
        s = aa.summary()
        lines.append(
            f"== {s['assembly']}: {s['methods']} method(s), "
            f"{s['instructions']} instruction(s), {s['blocks']} block(s), "
            f"max inline depth {s['max_inline_depth']}"
        )
        diags = aa.diagnostics
        if diags:
            lines.append(render_text(diags))
        else:
            lines.append("   (no diagnostics)")
    total = sum(len(aa.diagnostics) for aa in analyses)
    counts = {str(sev): 0 for sev in Severity}
    for aa in analyses:
        for d in aa.diagnostics:
            counts[str(d.severity)] += 1
    lines.append(
        f"-- {total} diagnostic(s): "
        + ", ".join(f"{counts[str(s)]} {s}" for s in Severity)
    )
    return "\n".join(lines)


def _render_json_report(analyses: Sequence[AssemblyAnalysis]) -> str:
    doc = {
        "assemblies": [aa.to_dict() for aa in analyses],
        "counts": {
            str(sev): sum(
                1
                for aa in analyses
                for d in aa.diagnostics
                if d.severity is sev
            )
            for sev in Severity
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(BUNDLED):
            print(name)
        return 0

    try:
        threshold = Severity.parse(args.fail_on)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    specs = list(args.targets)
    if args.all:
        specs = sorted(BUNDLED) + [s for s in specs if s not in BUNDLED]
    if not specs:
        parser.print_usage(sys.stderr)
        print(
            "error: no targets (name bundled assemblies, pass module paths, "
            "or use --all)",
            file=sys.stderr,
        )
        return 2

    try:
        resolved = resolve_targets(specs)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    analyses = [analyze_assembly(assembly) for _name, assembly in resolved]

    if args.format == "json":
        print(_render_json_report(analyses))
    else:
        print(_render_text_report(analyses))

    worst = max(
        (d.severity for aa in analyses for d in aa.diagnostics),
        default=None,
    )
    if worst is not None and worst >= threshold:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Static analysis over CIL method bodies (``repro.analysis``).

The subsystem decomposes into:

* :mod:`repro.analysis.cfg`         — basic blocks, edges (including
  exception-handler edges), dominators, reachability;
* :mod:`repro.analysis.lattice`     — the per-slot type lattice and
  the local-initialization lattice;
* :mod:`repro.analysis.typeflow`    — the worklist abstract
  interpreter producing per-pc entry states and dataflow facts;
* :mod:`repro.analysis.passes`      — the diagnostic pass suite;
* :mod:`repro.analysis.callgraph`   — assembly-level call-graph facts
  (recursion, inline depth, unresolved targets);
* :mod:`repro.analysis.driver`      — assembly orchestration and CLI
  target resolution;
* :mod:`repro.analysis.targets`     — the bundled benchmark corpus.

Run it: ``python -m repro.analysis --all`` (see ``--help``).  See
``docs/static-analysis.md`` for the design.
"""

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.cfg import CFG, BasicBlock, Edge, build_cfg
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    max_severity,
    render_json,
    render_text,
)
from repro.analysis.driver import (
    AssemblyAnalysis,
    analyze_assembly,
    resolve_targets,
)
from repro.analysis.lattice import Init, Kind, TypeVal
from repro.analysis.passes import PASSES, MethodAnalysis, analyze_method
from repro.analysis.targets import BUNDLED, bundled_assembly
from repro.analysis.typeflow import TypeFacts, analyze_types

__all__ = [
    "AssemblyAnalysis",
    "BUNDLED",
    "BasicBlock",
    "CFG",
    "CallGraph",
    "Diagnostic",
    "Edge",
    "Init",
    "Kind",
    "MethodAnalysis",
    "PASSES",
    "Severity",
    "TypeFacts",
    "TypeVal",
    "analyze_assembly",
    "analyze_method",
    "analyze_types",
    "build_callgraph",
    "build_cfg",
    "bundled_assembly",
    "max_severity",
    "render_json",
    "render_text",
    "resolve_targets",
]

"""Diagnostic records produced by the analysis passes.

Every pass emits :class:`Diagnostic` values rather than printing: the
CLI, the CI gate and the tests all consume the same structured
records.  Ordering is **deterministic** — diagnostics sort by
``(assembly, method, pc, code, message)`` — so two runs over the same
assemblies render byte-identical text and JSON.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Severity", "Diagnostic", "render_text", "render_json", "max_severity"]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choices: "
                f"{[s.name.lower() for s in cls]}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a coded, located, machine-sortable message.

    ``pc`` is the instruction index the finding anchors to, or None
    for method- or assembly-level facts (e.g. an unused argument or a
    recursion cycle).  ``data`` carries pass-specific structured
    details and must contain only JSON-serializable values.
    """

    code: str
    severity: Severity
    method: str
    message: str
    pc: Optional[int] = None
    assembly: str = ""
    data: Tuple[Tuple[str, object], ...] = field(default=())

    def sort_key(self):
        return (
            self.assembly,
            self.method,
            -1 if self.pc is None else self.pc,
            self.code,
            self.message,
        )

    @property
    def location(self) -> str:
        where = self.method if self.pc is None else f"{self.method}@{self.pc}"
        return f"{self.assembly}::{where}" if self.assembly else where

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "assembly": self.assembly,
            "method": self.method,
            "pc": self.pc,
            "message": self.message,
        }
        if self.data:
            doc["data"] = {k: v for k, v in self.data}
        return doc


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or None for an empty list."""
    if not diagnostics:
        return None
    return max(d.severity for d in diagnostics)


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """One line per diagnostic, deterministically ordered."""
    lines: List[str] = []
    for d in sorted(diagnostics, key=Diagnostic.sort_key):
        lines.append(f"{d.severity}: {d.code} {d.location}: {d.message}")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], summary: Optional[Dict[str, object]] = None) -> str:
    """Deterministic JSON document (sorted keys, sorted records)."""
    doc: Dict[str, object] = {
        "diagnostics": [
            d.to_dict() for d in sorted(diagnostics, key=Diagnostic.sort_key)
        ],
        "counts": {
            str(sev): sum(1 for d in diagnostics if d.severity is sev)
            for sev in Severity
        },
    }
    if summary is not None:
        doc["summary"] = summary
    return json.dumps(doc, indent=2, sort_keys=True)

"""Diagnostics passes over the CFG and the typed dataflow facts.

Each pass is a pure function ``(method, cfg, facts) -> [Diagnostic]``;
:func:`analyze_method` runs the whole registered suite and returns a
:class:`MethodAnalysis` bundling the CFG, the typed facts and the
deterministically ordered diagnostics.

Pass catalogue (code → meaning):

* ``unreachable-code``       — instructions no control path reaches;
* ``uninit-local``           — ``ldloc`` before any definite store
  (the VM zero-fills locals, so this is a lurking-logic warning);
* ``type-confusion``         — a join merged two distinct concrete
  types into ⊤ for a live slot;
* ``type-error``             — an operation certain to fault at
  runtime (``shl`` on a float, ``ldlen`` on an int, malformed call
  operands, unknown ``conv`` kinds);
* ``type-suspect``           — suspicious but not certainly fatal
  (``conv`` on a string, certain divide-by-zero — catchable);
* ``const-branch``           — a branch whose condition is proven
  constant (one edge can never be taken);
* ``const-compare``          — a comparison folding to a constant;
* ``dead-store``             — ``stloc`` whose value no path reads;
* ``unused-local`` / ``unused-arg`` — declared but never loaded;
* ``fallthrough-into-handler`` — a non-exception edge enters a
  protected region's handler block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Set, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.lattice import Init
from repro.analysis.typeflow import TypeFacts, analyze_types
from repro.cli.cil import Op
from repro.cli.metadata import MethodDef

__all__ = ["MethodAnalysis", "analyze_method", "PASSES"]

PassFn = Callable[[MethodDef, CFG, TypeFacts], List[Diagnostic]]


@dataclass
class MethodAnalysis:
    """Analysis bundle for one method."""

    method: MethodDef
    cfg: CFG
    facts: TypeFacts
    diagnostics: List[Diagnostic] = field(default_factory=list)


def _diag(
    code: str,
    severity: Severity,
    method: MethodDef,
    message: str,
    pc=None,
    **data,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        method=method.full_name,
        message=message,
        pc=pc,
        data=tuple(sorted(data.items())),
    )


# -- passes -------------------------------------------------------------------

def pass_unreachable_code(method, cfg, facts) -> List[Diagnostic]:
    """Contiguous runs of instructions no control path reaches."""
    out: List[Diagnostic] = []
    dead = [pc for pc, s in enumerate(facts.entry_states) if s is None]
    if not dead:
        return out
    runs: List[Tuple[int, int]] = []
    start = prev = dead[0]
    for pc in dead[1:]:
        if pc == prev + 1:
            prev = pc
            continue
        runs.append((start, prev))
        start = prev = pc
    runs.append((start, prev))
    for lo, hi in runs:
        span = f"pc {lo}" if lo == hi else f"pc {lo}..{hi}"
        out.append(_diag(
            "unreachable-code", Severity.WARNING, method,
            f"{span}: {hi - lo + 1} unreachable instruction(s)",
            pc=lo, first=lo, last=hi,
        ))
    return out


def pass_uninit_local(method, cfg, facts) -> List[Diagnostic]:
    out = []
    for pc, index, state in facts.uninit_reads:
        path = ("on every path" if state is Init.UNINIT
                else "on some path")
        out.append(_diag(
            "uninit-local", Severity.WARNING, method,
            f"local {index} is read before any store {path} "
            "(locals are zero-filled; likely a logic bug)",
            pc=pc, local=index, state=str(state),
        ))
    return out


def pass_type_confusion(method, cfg, facts) -> List[Diagnostic]:
    out = []
    for pc, slot, (ka, kb) in facts.join_confusions:
        out.append(_diag(
            "type-confusion", Severity.WARNING, method,
            f"{slot} merges {ka} and {kb} at a join (type becomes ⊤)",
            pc=pc, slot=slot, kinds=[ka, kb],
        ))
    return out


def pass_type_errors(method, cfg, facts) -> List[Diagnostic]:
    out = []
    for pc, message in facts.type_errors:
        out.append(_diag("type-error", Severity.ERROR, method, message, pc=pc))
    for pc, message in facts.type_warnings:
        out.append(_diag("type-suspect", Severity.WARNING, method, message, pc=pc))
    return out


def pass_const_branches(method, cfg, facts) -> List[Diagnostic]:
    out = []
    for pc, taken in facts.const_branches:
        op = method.body[pc].op.value
        edge = "always taken" if taken else "never taken"
        out.append(_diag(
            "const-branch", Severity.WARNING, method,
            f"{op} condition is constant: branch {edge}",
            pc=pc, taken=taken,
        ))
    for pc, op, value in facts.const_cmps:
        out.append(_diag(
            "const-compare", Severity.NOTE, method,
            f"{op} always evaluates to {value}",
            pc=pc, value=value,
        ))
    return out


def _liveness(method: MethodDef, cfg: CFG) -> Dict[int, Set[int]]:
    """Per-block live-in sets for locals (backwards dataflow).

    Exception edges are handled conservatively: a block inside a
    protected region keeps the handler's live-in alive at *every* pc,
    because unwinding may leave the block mid-way.
    """
    body = method.body
    use: Dict[int, Set[int]] = {}
    defs: Dict[int, Set[int]] = {}
    for b in cfg.blocks:
        u: Set[int] = set()
        d: Set[int] = set()
        for pc in b.pcs:
            ins = body[pc]
            if ins.op is Op.LDLOC and isinstance(ins.operand, int):
                if ins.operand not in d:
                    u.add(ins.operand)
            elif ins.op is Op.STLOC and isinstance(ins.operand, int):
                d.add(ins.operand)
        use[b.index] = u
        defs[b.index] = d

    live_in: Dict[int, Set[int]] = {b.index: set() for b in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for b in reversed(cfg.blocks):
            out: Set[int] = set()
            exc: Set[int] = set()
            for e in b.successors:
                if e.kind == "exception":
                    exc |= live_in[e.dst]
                else:
                    out |= live_in[e.dst]
            # Handler uses survive the whole block (mid-block unwind).
            new = use[b.index] | (out - defs[b.index]) | exc
            if new != live_in[b.index]:
                live_in[b.index] = new
                changed = True
    return live_in


def pass_dead_stores(method, cfg, facts) -> List[Diagnostic]:
    """``stloc`` instructions whose stored value no path ever reads."""
    body = method.body
    live_in = _liveness(method, cfg)
    out: List[Diagnostic] = []
    for b in cfg.blocks:
        if b.index not in cfg.reachable:
            continue  # unreachable code is its own diagnostic
        live: Set[int] = set()
        exc: Set[int] = set()
        for e in b.successors:
            if e.kind == "exception":
                exc |= live_in[e.dst]
            else:
                live |= live_in[e.dst]
        for pc in reversed(b.pcs):
            ins = body[pc]
            if ins.op is Op.STLOC and isinstance(ins.operand, int):
                if ins.operand not in live and ins.operand not in exc:
                    out.append(_diag(
                        "dead-store", Severity.NOTE, method,
                        f"value stored to local {ins.operand} is never read",
                        pc=pc, local=ins.operand,
                    ))
                live.discard(ins.operand)
            elif ins.op is Op.LDLOC and isinstance(ins.operand, int):
                live.add(ins.operand)
    return out


def pass_unused_slots(method, cfg, facts) -> List[Diagnostic]:
    """Locals never loaded and arguments never loaded, method-wide."""
    loaded_locals: Set[int] = set()
    loaded_args: Set[int] = set()
    for ins in method.body:
        if ins.op is Op.LDLOC and isinstance(ins.operand, int):
            loaded_locals.add(ins.operand)
        elif ins.op is Op.LDARG and isinstance(ins.operand, int):
            loaded_args.add(ins.operand)
    out: List[Diagnostic] = []
    for i in range(method.local_count):
        if i not in loaded_locals:
            out.append(_diag(
                "unused-local", Severity.NOTE, method,
                f"local {i} is never read", local=i,
            ))
    for i, name in enumerate(method.param_names):
        if i not in loaded_args:
            out.append(_diag(
                "unused-arg", Severity.NOTE, method,
                f"argument {i} ({name!r}) is never read", arg=i, name=name,
            ))
    return out


def pass_fallthrough_into_handler(method, cfg, facts) -> List[Diagnostic]:
    """Normal control flow entering a handler block: legal when the
    depths line up (the verifier allows it) but almost always a
    structuring mistake."""
    out: List[Diagnostic] = []
    for b in cfg.blocks:
        if not b.is_handler_entry:
            continue
        for e in b.predecessors:
            if e.kind != "exception" and e.src in cfg.reachable:
                out.append(_diag(
                    "fallthrough-into-handler", Severity.WARNING, method,
                    f"block B{e.src} enters handler block B{b.index} via a "
                    f"{e.kind} edge (handlers expect the exception object)",
                    pc=b.start, src_block=e.src, kind=e.kind,
                ))
    return out


#: The registered suite, in execution order.
PASSES: List[Tuple[str, PassFn]] = [
    ("unreachable-code", pass_unreachable_code),
    ("uninit-local", pass_uninit_local),
    ("type-confusion", pass_type_confusion),
    ("type-errors", pass_type_errors),
    ("const-branches", pass_const_branches),
    ("dead-stores", pass_dead_stores),
    ("unused-slots", pass_unused_slots),
    ("fallthrough-into-handler", pass_fallthrough_into_handler),
]


def analyze_method(method: MethodDef, assembly: str = "") -> MethodAnalysis:
    """CFG + typed dataflow + the full pass suite for one method."""
    cfg = build_cfg(method)
    facts = analyze_types(method)
    diagnostics: List[Diagnostic] = []
    for _name, fn in PASSES:
        found = fn(method, cfg, facts)
        if assembly:
            found = [
                Diagnostic(
                    code=d.code, severity=d.severity, method=d.method,
                    message=d.message, pc=d.pc, assembly=assembly,
                    data=d.data,
                )
                for d in found
            ]
        diagnostics.extend(found)
    diagnostics.sort(key=Diagnostic.sort_key)
    return MethodAnalysis(method, cfg, facts, diagnostics)

"""Assembly-level analysis orchestration.

:func:`analyze_assembly` runs the per-method pass suite plus the call
graph over one :class:`AssemblyDef`; :func:`resolve_targets` maps CLI
arguments (bundled registry names, ``module`` or ``module:attr``
paths) to assemblies.  Everything returned is deterministically
ordered and free of interpreter-session artifacts (no method tokens),
so two runs over the same corpus serialize byte-identically.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.passes import MethodAnalysis, analyze_method
from repro.analysis.targets import BUNDLED, bundled_assembly
from repro.cli.metadata import AssemblyDef, MethodDef
from repro.errors import CliError

__all__ = ["AssemblyAnalysis", "analyze_assembly", "resolve_targets"]


@dataclass
class AssemblyAnalysis:
    """Full analysis of one assembly: per-method results + call graph."""

    assembly: AssemblyDef
    methods: List[MethodAnalysis] = field(default_factory=list)
    callgraph: CallGraph = None  # type: ignore[assignment]

    @property
    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for m in self.methods:
            out.extend(m.diagnostics)
        out.extend(self.callgraph.diagnostics())
        out.sort(key=Diagnostic.sort_key)
        return out

    def summary(self) -> Dict[str, object]:
        total_pcs = sum(len(m.method.body) for m in self.methods)
        reachable = sum(len(m.facts.reachable_pcs()) for m in self.methods)
        return {
            "assembly": self.assembly.name,
            "methods": len(self.methods),
            "instructions": total_pcs,
            "reachable_instructions": reachable,
            "blocks": sum(len(m.cfg.blocks) for m in self.methods),
            "max_inline_depth": self.callgraph.max_inline_depth,
            "recursive_methods": len(self.callgraph.recursive),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "summary": self.summary(),
            "methods": [
                {
                    "name": m.method.full_name,
                    "instructions": len(m.method.body),
                    "blocks": len(m.cfg.blocks),
                    "reachable_blocks": len(m.cfg.reachable),
                    "max_stack": m.method.max_stack,
                    "handlers": len(m.method.handlers),
                }
                for m in self.methods
            ],
            "callgraph": self.callgraph.to_dict(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def analyze_assembly(assembly: AssemblyDef) -> AssemblyAnalysis:
    """Run the full suite over every method of ``assembly``."""
    out = AssemblyAnalysis(assembly)
    for tname in sorted(assembly.types):
        tdef = assembly.types[tname]
        for mname in sorted(tdef.methods):
            out.methods.append(
                analyze_method(tdef.methods[mname], assembly=assembly.name)
            )
    out.callgraph = build_callgraph(assembly)
    return out


def _assemblies_from_module(spec: str) -> List[Tuple[str, AssemblyDef]]:
    """Resolve ``module`` / ``module:attr`` into named assemblies.

    ``attr`` may be an :class:`AssemblyDef`, a :class:`MethodDef`
    (wrapped into a single-method assembly) or a zero-argument callable
    returning either.  Without ``attr``, module attributes holding
    assemblies or methods are collected in name order.
    """
    module_name, _, attr = spec.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise CliError(f"cannot import module {module_name!r}: {exc}") from exc

    def wrap(name: str, value) -> Tuple[str, AssemblyDef]:
        if callable(value) and not isinstance(value, (AssemblyDef, MethodDef)):
            value = value()
        if isinstance(value, AssemblyDef):
            return name, value
        if isinstance(value, MethodDef):
            from repro.cli.assembly import AssemblyBuilder

            ab = AssemblyBuilder("Adhoc")
            ab.add_method("Adhoc", value)
            return name, ab.build()
        raise CliError(
            f"{spec}: {name!r} is {type(value).__name__}, not an assembly "
            "or method"
        )

    if attr:
        if not hasattr(module, attr):
            raise CliError(f"module {module_name!r} has no attribute {attr!r}")
        return [wrap(f"{module_name}:{attr}", getattr(module, attr))]
    found = []
    for name in sorted(vars(module)):
        value = getattr(module, name)
        if isinstance(value, (AssemblyDef, MethodDef)):
            found.append(wrap(f"{module_name}:{name}", value))
    if not found:
        raise CliError(
            f"module {module_name!r} exposes no AssemblyDef/MethodDef "
            "attributes (use module:attr to name a builder)"
        )
    return found


def resolve_targets(specs: Iterable[str]) -> List[Tuple[str, AssemblyDef]]:
    """Map CLI target specs to ``(display name, assembly)`` pairs."""
    out: List[Tuple[str, AssemblyDef]] = []
    for spec in specs:
        if spec in BUNDLED:
            out.append((spec, bundled_assembly(spec)))
        else:
            out.extend(_assemblies_from_module(spec))
    return out

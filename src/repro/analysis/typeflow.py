"""Worklist abstract interpreter: typed facts at every pc.

This replaces the verifier's depth-only dataflow with **typed** facts:
for every reachable instruction the analyzer knows the abstract type
(and, where provable, the constant value) of each evaluation-stack
slot, plus the init state and type of every local and argument.

The flow mirrors the verifier and the template JIT exactly — same
successor relation, same unconditional handler seeding (stack cleared,
exception object pushed) — so "reachable" here means *compiled* by
:mod:`repro.cli.jitcompile`, which is what lets the analysis-backed
``native_eligible`` gate reason about conv/call safety per reachable
pc instead of syntactically over the whole body.

The analysis runs in two phases so every fact reflects the fixpoint,
not a transient state of the iteration:

1. **fixpoint** — propagate abstract states until stable (recording
   only join confusions, which are monotone);
2. **fact sweep** — one linear pass over the final entry states
   collects constant branches/comparisons, certain type errors,
   conv/call problems and may-uninitialized local reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.lattice import BOTTOM, TOP, Init, Kind, TypeVal, type_of_constant
from repro.cli.cil import Instruction, Op
from repro.cli.metadata import MethodDef
from repro.cli.verifier import _well_formed_call_tuple

__all__ = ["State", "TypeFacts", "analyze_types"]


_CONV_KINDS = {
    "i4": Kind.INT32, "int32": Kind.INT32,
    "i8": Kind.INT64, "int64": Kind.INT64,
    "r8": Kind.FLOAT64, "float64": Kind.FLOAT64,
}

_ARITH = (Op.ADD, Op.SUB, Op.MUL)
_BITOPS = (Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR)
_CMPS = (Op.CEQ, Op.CGT, Op.CLT)


def _truncdiv(a, b):
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    return a / b


def _truncrem(a, b):
    if isinstance(a, int) and isinstance(b, int):
        r = abs(a) % abs(b)
        return -r if a < 0 else r
    import math

    return math.fmod(a, b)


@dataclass(frozen=True)
class State:
    """Abstract machine state at one pc."""

    stack: Tuple[TypeVal, ...]
    locals_type: Tuple[TypeVal, ...]
    locals_init: Tuple[Init, ...]
    args_type: Tuple[TypeVal, ...]

    def join(self, other: "State") -> "State":
        assert len(self.stack) == len(other.stack)
        return State(
            stack=tuple(a.join(b) for a, b in zip(self.stack, other.stack)),
            locals_type=tuple(
                a.join(b) for a, b in zip(self.locals_type, other.locals_type)
            ),
            locals_init=tuple(
                a.join(b) for a, b in zip(self.locals_init, other.locals_init)
            ),
            args_type=tuple(
                a.join(b) for a, b in zip(self.args_type, other.args_type)
            ),
        )


@dataclass
class _Sink:
    """Fact collector handed to the transfer function (fact sweep
    phase); the fixpoint phase runs with ``None`` instead."""

    errors: List[Tuple[int, str]] = field(default_factory=list)
    warnings: List[Tuple[int, str]] = field(default_factory=list)
    const_branches: List[Tuple[int, bool]] = field(default_factory=list)
    const_cmps: List[Tuple[int, str, int]] = field(default_factory=list)
    uninit_reads: List[Tuple[int, int, Init]] = field(default_factory=list)


@dataclass
class TypeFacts:
    """Everything the abstract interpreter learned about one method."""

    method: MethodDef
    entry_states: List[Optional[State]]
    #: (pc, slot description, kind names) — joins that went to ⊤.
    join_confusions: List[Tuple[int, str, Tuple[str, str]]] = field(default_factory=list)
    #: (pc, always_taken) for brtrue/brfalse with a proven-constant condition.
    const_branches: List[Tuple[int, bool]] = field(default_factory=list)
    #: (pc, opcode, folded value) for comparisons proven constant.
    const_cmps: List[Tuple[int, str, int]] = field(default_factory=list)
    #: (pc, message) — would certainly fault at runtime (error severity).
    type_errors: List[Tuple[int, str]] = field(default_factory=list)
    #: (pc, message) — suspicious but not certainly fatal.
    type_warnings: List[Tuple[int, str]] = field(default_factory=list)
    #: (pc, local index, init state) for ldloc before any definite store.
    uninit_reads: List[Tuple[int, int, Init]] = field(default_factory=list)

    def reachable_pcs(self) -> List[int]:
        return [pc for pc, s in enumerate(self.entry_states) if s is not None]

    def stack_kinds(self) -> List[Optional[Tuple[Kind, ...]]]:
        """Per-pc entry stack types (the interpreter's debug-mode
        contract; attached as ``method.entry_types``)."""
        return [
            None if s is None else tuple(v.kind for v in s.stack)
            for s in self.entry_states
        ]


def _call_pops_pushes(ins: Instruction) -> Optional[Tuple[int, int]]:
    """(pops, pushes) for call-like instructions; None when malformed."""
    operand = ins.operand
    if ins.op is Op.CALL and isinstance(operand, MethodDef):
        return operand.param_count, 1 if operand.returns else 0
    if _well_formed_call_tuple(operand):
        _name, argc, returns = operand
        return argc, 1 if returns else 0
    return None


def _promote(a: TypeVal, b: TypeVal) -> Kind:
    if Kind.FLOAT64 in (a.kind, b.kind):
        return Kind.FLOAT64
    if Kind.INT64 in (a.kind, b.kind):
        return Kind.INT64
    return Kind.INT32


def _transfer(
    method: MethodDef,
    pc: int,
    state: State,
    sink: Optional[_Sink],
) -> Tuple[List[Tuple[int, State]], bool]:
    """Abstractly execute ``body[pc]`` from ``state``.

    Returns ``(successors, falls_through)`` where successors are
    explicit (branch) targets only; exception-edge propagation is the
    caller's job.  When ``sink`` is given, diagnostic facts about this
    pc are appended to it.
    """
    body = method.body
    n = len(body)
    ins = body[pc]
    op = ins.op
    stack = list(state.stack)
    locals_type = list(state.locals_type)
    locals_init = list(state.locals_init)
    args_type = list(state.args_type)

    def pop() -> TypeVal:
        if not stack:
            return BOTTOM  # underflow; the verifier reports it
        return stack.pop()

    def err(message: str) -> None:
        if sink is not None:
            sink.errors.append((pc, message))

    def warn(message: str) -> None:
        if sink is not None:
            sink.warnings.append((pc, message))

    successors: List[Tuple[int, State]] = []
    falls_through = True

    def out_state() -> State:
        return State(tuple(stack), tuple(locals_type),
                     tuple(locals_init), tuple(args_type))

    if op is Op.NOP:
        pass
    elif op is Op.LDC:
        stack.append(type_of_constant(ins.operand))
    elif op is Op.LDSTR:
        if isinstance(ins.operand, str):
            stack.append(type_of_constant(ins.operand))
        else:
            err(f"ldstr operand is {type(ins.operand).__name__}, not str")
            stack.append(TypeVal(Kind.STRING))
    elif op is Op.LDLOC:
        i = ins.operand
        if isinstance(i, int) and 0 <= i < method.local_count:
            if locals_init[i] is not Init.INIT and sink is not None:
                sink.uninit_reads.append((pc, i, locals_init[i]))
            stack.append(locals_type[i])
        else:
            stack.append(TOP)
    elif op is Op.STLOC:
        v = pop()
        i = ins.operand
        if isinstance(i, int) and 0 <= i < method.local_count:
            locals_type[i] = v
            locals_init[i] = Init.INIT
    elif op is Op.LDARG:
        i = ins.operand
        if isinstance(i, int) and 0 <= i < method.param_count:
            stack.append(args_type[i])
        else:
            stack.append(TOP)
    elif op is Op.STARG:
        v = pop()
        i = ins.operand
        if isinstance(i, int) and 0 <= i < method.param_count:
            args_type[i] = v
    elif op is Op.LDSFLD:
        # Statics are cross-thread mutable: statically unknown.
        stack.append(TOP)
    elif op is Op.STSFLD:
        pop()
    elif op is Op.DUP:
        v = pop()
        stack.append(v)
        stack.append(v)
    elif op is Op.POP:
        pop()
    elif op in _ARITH:
        b = pop()
        a = pop()
        if a.is_numeric and b.is_numeric:
            if a.known and b.known:
                val = {
                    Op.ADD: lambda: a.const + b.const,
                    Op.SUB: lambda: a.const - b.const,
                    Op.MUL: lambda: a.const * b.const,
                }[op]()
                stack.append(type_of_constant(val))
            else:
                stack.append(TypeVal(_promote(a, b)))
        elif op is Op.ADD and a.kind is Kind.STRING and b.kind is Kind.STRING:
            if a.known and b.known:
                stack.append(type_of_constant(a.const + b.const))
            else:
                stack.append(TypeVal(Kind.STRING))
        elif a.confused or b.confused or Kind.BOTTOM in (a.kind, b.kind):
            stack.append(TOP)
        else:
            err(f"{op.value} on {a.kind}, {b.kind}")
            stack.append(TOP)
    elif op in (Op.DIV, Op.REM):
        b = pop()
        a = pop()
        fold = _truncdiv if op is Op.DIV else _truncrem
        if b.known and b.const == 0 and b.is_int:
            warn(f"{op.value} by constant int 0 always raises "
                 "System.DivideByZeroException")
            stack.append(TypeVal(_promote(a, b))
                         if a.is_numeric and b.is_numeric else TOP)
        elif a.is_numeric and b.is_numeric:
            if a.known and b.known and b.const != 0:
                stack.append(type_of_constant(fold(a.const, b.const)))
            else:
                stack.append(TypeVal(_promote(a, b)))
        elif a.confused or b.confused or Kind.BOTTOM in (a.kind, b.kind):
            stack.append(TOP)
        else:
            err(f"{op.value} on {a.kind}, {b.kind}")
            stack.append(TOP)
    elif op in _BITOPS:
        b = pop()
        a = pop()
        if a.is_int and b.is_int:
            if a.known and b.known and not (
                op in (Op.SHL, Op.SHR) and b.const < 0
            ):
                val = {
                    Op.AND: lambda: a.const & b.const,
                    Op.OR: lambda: a.const | b.const,
                    Op.XOR: lambda: a.const ^ b.const,
                    Op.SHL: lambda: a.const << b.const,
                    Op.SHR: lambda: a.const >> b.const,
                }[op]()
                stack.append(type_of_constant(val))
            else:
                stack.append(TypeVal(_promote(a, b)))
        elif a.confused or b.confused or Kind.BOTTOM in (a.kind, b.kind):
            stack.append(TOP)
        else:
            err(f"{op.value} requires integers, got {a.kind}, {b.kind}")
            stack.append(TOP)
    elif op is Op.NEG:
        a = pop()
        if a.is_numeric:
            if a.known:
                stack.append(type_of_constant(-a.const))
            else:
                stack.append(TypeVal(a.kind))
        elif a.confused or a.kind is Kind.BOTTOM:
            stack.append(TOP)
        else:
            err(f"neg on {a.kind}")
            stack.append(TOP)
    elif op is Op.NOT:
        a = pop()
        if a.is_int:
            stack.append(type_of_constant(~a.const) if a.known
                         else TypeVal(a.kind))
        elif a.confused or a.kind is Kind.BOTTOM:
            stack.append(TypeVal(Kind.INT32) if a.confused else TOP)
        else:
            err(f"not on {a.kind} always raises TypeMismatch")
            stack.append(TypeVal(Kind.INT32))
    elif op in _CMPS:
        b = pop()
        a = pop()
        ordered = op in (Op.CGT, Op.CLT)
        comparable = (
            (a.is_numeric and b.is_numeric)
            or (a.kind is b.kind and a.kind is not Kind.TOP)
            or not ordered
        )
        if ordered and not comparable and not (
            a.confused or b.confused or Kind.BOTTOM in (a.kind, b.kind)
            or Kind.OBJECT in (a.kind, b.kind)
        ):
            err(f"{op.value} on {a.kind}, {b.kind}")
        folded = False
        if a.known and b.known and comparable:
            try:
                val = {
                    Op.CEQ: lambda: 1 if a.const == b.const else 0,
                    Op.CGT: lambda: 1 if a.const > b.const else 0,
                    Op.CLT: lambda: 1 if a.const < b.const else 0,
                }[op]()
            except TypeError:  # e.g. None comparisons
                pass
            else:
                if sink is not None:
                    sink.const_cmps.append((pc, op.value, val))
                stack.append(type_of_constant(val))
                folded = True
        if not folded:
            stack.append(TypeVal(Kind.INT32))
    elif op is Op.CONV:
        a = pop()
        kind = _CONV_KINDS.get(ins.operand)
        if kind is None:
            err(f"unknown conv kind {ins.operand!r} always raises "
                "ExecutionFault")
            stack.append(TOP)
        else:
            if not (a.is_numeric or a.confused or a.kind is Kind.BOTTOM):
                warn(f"conv {ins.operand} on {a.kind} value")
            stack.append(TypeVal(kind))
    elif op is Op.NEWARR:
        a = pop()
        if not (a.is_int or a.confused or a.kind is Kind.BOTTOM):
            err(f"newarr length is {a.kind}")
        stack.append(TypeVal(Kind.OBJECT))
    elif op is Op.LDLEN:
        a = pop()
        if a.kind is Kind.OBJECT and a.known and a.const is None:
            warn("ldlen on null always raises System.NullReferenceException")
        elif not (a.kind is Kind.OBJECT or a.confused
                  or a.kind is Kind.BOTTOM):
            err(f"ldlen on {a.kind}")
        stack.append(TypeVal(Kind.INT32))
    elif op is Op.BR:
        if isinstance(ins.operand, int):
            successors.append((ins.operand, out_state()))
        falls_through = False
    elif op in (Op.BRTRUE, Op.BRFALSE):
        cond = pop()
        if cond.known and sink is not None:
            truthy = bool(cond.const)
            sink.const_branches.append(
                (pc, truthy if op is Op.BRTRUE else not truthy)
            )
        out = out_state()
        # Both edges flow even for constant conditions: reachability
        # stays aligned with the verifier and the template JIT, and
        # the constant-branch pass reports the dead edge instead.
        if isinstance(ins.operand, int):
            successors.append((ins.operand, out))
        if pc + 1 < n:
            successors.append((pc + 1, out))
        falls_through = False
    elif op is Op.RET:
        falls_through = False
    elif op is Op.THROW:
        pop()
        falls_through = False
    elif op is Op.CALL or op is Op.CALLINTRINSIC:
        effect = _call_pops_pushes(ins)
        if effect is None:
            err(f"malformed {op.value} operand {ins.operand!r}")
            falls_through = False  # depth unknowable past this point
        else:
            pops, pushes = effect
            for _ in range(pops):
                pop()
            for _ in range(pushes):
                stack.append(TOP)
    else:  # pragma: no cover - exhaustive over opcode set
        raise AssertionError(f"unhandled opcode {op!r}")

    if falls_through and pc + 1 >= n:
        falls_through = False  # running off the end; verifier reports it
    if falls_through:
        successors.append((pc + 1, out_state()))
    return successors, falls_through


def analyze_types(method: MethodDef) -> TypeFacts:
    """Run the abstract interpreter to fixpoint over ``method``."""
    body = method.body
    n = len(body)
    facts = TypeFacts(method, entry_states=[None] * n)
    if n == 0:
        return facts
    entry = facts.entry_states

    init_state = State(
        stack=(),
        locals_type=tuple(type_of_constant(0)
                          for _ in range(method.local_count)),
        locals_init=tuple(Init.UNINIT for _ in range(method.local_count)),
        args_type=tuple(TOP for _ in range(method.param_count)),
    )

    confusions: Dict[Tuple[int, str], Tuple[str, str]] = {}
    worklist: List[int] = []

    def flow_to(target: int, state: State) -> None:
        if not (0 <= target < n):
            return  # verifier reports range errors
        known = entry[target]
        if known is None:
            entry[target] = state
            worklist.append(target)
            return
        if len(known.stack) != len(state.stack):
            return  # depth inconsistency is the verifier's error
        joined = known.join(state)
        if joined != known:
            for i, (a, b) in enumerate(zip(known.stack, state.stack)):
                j = a.join(b)
                if j.confused and not a.confused and not b.confused:
                    confusions[(target, f"stack[{i}]")] = (
                        str(a.kind), str(b.kind))
            for i, (a, b) in enumerate(
                zip(known.locals_type, state.locals_type)
            ):
                j = a.join(b)
                if j.confused and not a.confused and not b.confused:
                    confusions[(target, f"local[{i}]")] = (
                        str(a.kind), str(b.kind))
            entry[target] = joined
            worklist.append(target)

    flow_to(0, init_state)
    # Handlers are entered with the stack cleared and the exception
    # pushed — seeded unconditionally, exactly as the verifier and the
    # template JIT do.
    for h in method.handlers:
        flow_to(h.handler_start, State(
            stack=(TypeVal(Kind.OBJECT),),
            locals_type=init_state.locals_type,
            locals_init=init_state.locals_init,
            args_type=init_state.args_type,
        ))

    # Phase 1: fixpoint.
    while worklist:
        pc = worklist.pop()
        state = entry[pc]
        assert state is not None
        # Any pc inside a protected region may unwind to its handler
        # with the locals as they are *before* the instruction.
        for h in method.handlers:
            if h.covers(pc):
                flow_to(h.handler_start, State(
                    stack=(TypeVal(Kind.OBJECT),),
                    locals_type=state.locals_type,
                    locals_init=state.locals_init,
                    args_type=state.args_type,
                ))
        successors, _ = _transfer(method, pc, state, sink=None)
        for target, out in successors:
            flow_to(target, out)

    # Phase 2: fact sweep over the final states (deterministic order).
    sink = _Sink()
    for pc in range(n):
        state = entry[pc]
        if state is not None:
            _transfer(method, pc, state, sink=sink)

    facts.join_confusions = sorted(
        (pc, slot, kinds) for (pc, slot), kinds in confusions.items()
    )
    facts.const_branches = sink.const_branches
    facts.const_cmps = sink.const_cmps
    facts.type_errors = sink.errors
    facts.type_warnings = sink.warnings
    facts.uninit_reads = sink.uninit_reads
    return facts

"""Abstract-value lattices for the CIL type flow.

Two small lattices drive the worklist interpreter:

* :class:`TypeVal` — a per-slot **type + optional known constant**.
  Types form the flat lattice ``⊥ < {int32, int64, float64, string,
  object} < ⊤``; a value additionally carries a constant when the
  abstract interpreter can prove it (``ldc 3`` → ``int32 const 3``;
  ``3 < 5`` → ``int32 const 1``).  Joining equal types keeps the type
  and drops disagreeing constants; joining distinct concrete types
  yields ⊤ (the *type confusion* the join pass reports).

* :class:`Init` — the init-state lattice over locals: ``UNINIT``,
  ``INIT``, and their join ``MAYBE``.  The VM zero-fills locals, so a
  may-uninitialized read is a warning (lurking logic bug), not a
  safety error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["Kind", "TypeVal", "Init", "type_of_constant"]


class Kind(enum.Enum):
    """Flat type lattice elements."""

    BOTTOM = "bottom"    # no value / unreachable
    INT32 = "int32"
    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    OBJECT = "object"    # arrays, exceptions, null, foreign payloads
    TOP = "top"          # conflicting or statically unknown

    def __str__(self) -> str:
        return self.value


_INTS = (Kind.INT32, Kind.INT64)
_NUMERIC = (Kind.INT32, Kind.INT64, Kind.FLOAT64)
_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1


@dataclass(frozen=True)
class TypeVal:
    """One abstract stack/local value: a lattice kind plus an optional
    proven constant (``const`` is only meaningful when ``known``)."""

    kind: Kind
    const: Any = None
    known: bool = False

    def __str__(self) -> str:
        if self.known:
            return f"{self.kind}({self.const!r})"
        return str(self.kind)

    # -- lattice ---------------------------------------------------------------

    def join(self, other: "TypeVal") -> "TypeVal":
        if self.kind is Kind.BOTTOM:
            return other
        if other.kind is Kind.BOTTOM:
            return self
        if self.kind is other.kind:
            if (
                self.known
                and other.known
                and type(self.const) is type(other.const)
                and self.const == other.const
            ):
                return self
            return TypeVal(self.kind)
        if self.kind is Kind.TOP or other.kind is Kind.TOP:
            return TOP
        # Numeric widening keeps arithmetic joins useful: int32 ⊔
        # int64 = int64, int ⊔ float64 = float64.  Anything else is a
        # genuine confusion and goes to ⊤.
        if self.kind in _NUMERIC and other.kind in _NUMERIC:
            if Kind.FLOAT64 in (self.kind, other.kind):
                return TypeVal(Kind.FLOAT64)
            return TypeVal(Kind.INT64)
        return TOP

    @property
    def is_numeric(self) -> bool:
        return self.kind in _NUMERIC

    @property
    def is_int(self) -> bool:
        return self.kind in _INTS

    @property
    def confused(self) -> bool:
        return self.kind is Kind.TOP


BOTTOM = TypeVal(Kind.BOTTOM)
TOP = TypeVal(Kind.TOP)


def type_of_constant(value: Any) -> TypeVal:
    """Abstract value for an ``ldc`` operand / folded constant."""
    if isinstance(value, bool):
        return TypeVal(Kind.INT32, int(value), True)
    if isinstance(value, int):
        kind = Kind.INT32 if _I32_MIN <= value <= _I32_MAX else Kind.INT64
        return TypeVal(kind, value, True)
    if isinstance(value, float):
        return TypeVal(Kind.FLOAT64, value, True)
    if isinstance(value, str):
        return TypeVal(Kind.STRING, value, True)
    return TypeVal(Kind.OBJECT, value, value is None)


class Init(enum.IntEnum):
    """Init-state lattice for locals: join(UNINIT, INIT) = MAYBE."""

    UNINIT = 0
    INIT = 1
    MAYBE = 2

    def join(self, other: "Init") -> "Init":
        if self is other:
            return self
        return Init.MAYBE

    def __str__(self) -> str:
        return self.name.lower()

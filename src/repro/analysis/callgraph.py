"""Assembly-level call-graph facts.

Builds the static call graph of an :class:`AssemblyDef` from ``call``
operands (both direct :class:`MethodDef` references and forward
``(name, argc, returns)`` signatures resolved through the assembly),
then derives:

* **recursion** — self-loops and larger cycles (the template JIT can
  never inline through these);
* **max inline depth** — the longest acyclic managed-call chain
  rooted at each method (how deep a hypothetical inliner could go);
* **unresolved calls** — forward signatures naming no method in the
  assembly (late-bound or cross-assembly targets).

Intrinsic calls (``callintrinsic``) are class-library boundaries, not
managed edges, and are counted but not traversed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.cli.cil import Op
from repro.cli.metadata import AssemblyDef, MethodDef
from repro.errors import CliError

__all__ = ["CallGraph", "build_callgraph"]


@dataclass
class CallGraph:
    """Static call graph + derived facts for one assembly."""

    assembly: AssemblyDef
    #: caller full name → sorted callee full names (managed edges only).
    edges: Dict[str, List[str]] = field(default_factory=dict)
    #: caller full name → number of callintrinsic sites in its body.
    intrinsic_calls: Dict[str, int] = field(default_factory=dict)
    #: (caller, operand name) pairs that resolve to nothing here.
    unresolved: List[Tuple[str, str]] = field(default_factory=list)
    #: methods participating in a call cycle (sorted).
    recursive: List[str] = field(default_factory=list)
    #: method full name → longest acyclic managed-call chain below it
    #: (0 = leaf).  Methods in cycles report the chain to the cycle.
    inline_depth: Dict[str, int] = field(default_factory=dict)

    @property
    def max_inline_depth(self) -> int:
        return max(self.inline_depth.values(), default=0)

    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for name in self.recursive:
            out.append(Diagnostic(
                code="recursive-call", severity=Severity.NOTE,
                method=name, assembly=self.assembly.name,
                message="method participates in a call cycle "
                        "(uninlinable; unbounded stack depth possible)",
            ))
        for caller, target in self.unresolved:
            out.append(Diagnostic(
                code="unresolved-call", severity=Severity.NOTE,
                method=caller, assembly=self.assembly.name,
                message=f"call target {target!r} is not defined in this "
                        "assembly (late-bound or cross-assembly)",
            ))
        out.sort(key=Diagnostic.sort_key)
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "edges": {k: list(v) for k, v in sorted(self.edges.items())},
            "intrinsic_calls": dict(sorted(self.intrinsic_calls.items())),
            "unresolved": [list(pair) for pair in sorted(self.unresolved)],
            "recursive": list(self.recursive),
            "inline_depth": dict(sorted(self.inline_depth.items())),
            "max_inline_depth": self.max_inline_depth,
        }


def _methods(assembly: AssemblyDef) -> List[MethodDef]:
    out: List[MethodDef] = []
    for tname in sorted(assembly.types):
        tdef = assembly.types[tname]
        for mname in sorted(tdef.methods):
            out.append(tdef.methods[mname])
    return out


def build_callgraph(assembly: AssemblyDef) -> CallGraph:
    """Build the call graph and derive recursion/depth facts."""
    graph = CallGraph(assembly)
    methods = _methods(assembly)
    known = {m.full_name for m in methods}

    for m in methods:
        callees: Set[str] = set()
        intrinsics = 0
        for ins in m.body:
            if ins.op is Op.CALLINTRINSIC:
                intrinsics += 1
                continue
            if ins.op is not Op.CALL:
                continue
            operand = ins.operand
            if isinstance(operand, MethodDef):
                callees.add(operand.full_name)
                if operand.full_name not in known:
                    graph.unresolved.append((m.full_name, operand.full_name))
                continue
            if isinstance(operand, tuple) and len(operand) == 3:
                name = operand[0]
                try:
                    target = assembly.find_method(name)
                except CliError:
                    graph.unresolved.append((m.full_name, str(name)))
                else:
                    callees.add(target.full_name)
        graph.edges[m.full_name] = sorted(callees)
        graph.intrinsic_calls[m.full_name] = intrinsics

    graph.unresolved = sorted(set(graph.unresolved))

    # Cycle detection + longest acyclic chain, one DFS with colors.
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {name: WHITE for name in graph.edges}
    depth: Dict[str, int] = {}
    in_cycle: Set[str] = set()

    def visit(name: str, stack: List[str]) -> int:
        if color.get(name) == BLACK:
            return depth.get(name, 0)
        if color.get(name) == GREY:
            # Found a cycle: everyone from the first occurrence on.
            i = stack.index(name)
            in_cycle.update(stack[i:])
            return 0
        if name not in color:  # edge to a method outside the graph
            return 0
        color[name] = GREY
        stack.append(name)
        best = 0
        for callee in graph.edges.get(name, ()):
            if callee == name:
                in_cycle.add(name)
                continue
            best = max(best, 1 + visit(callee, stack))
        stack.pop()
        color[name] = BLACK
        depth[name] = best
        return best

    for name in sorted(graph.edges):
        if color[name] == WHITE:
            visit(name, [])
    graph.recursive = sorted(in_cycle)
    graph.inline_depth = {name: depth.get(name, 0) for name in graph.edges}
    return graph

"""Stale-read-across-wait lint for simulator source.

Both PR 8 concurrency bugs had the same static shape: a generator
cached a *mutable shared attribute* in a local, hit a wait point
(``yield`` / ``yield from``), and kept using the cached value after
resuming — while the world it described had moved on (a listener
stopped, a replica got readmitted).  This pass flags that shape.

A finding needs all three of:

1. a local assigned from an expression that reads a **shared-state
   attribute** — an attribute whose name is in :data:`SHARED_ATTRS`
   and whose owner is *not* plain ``self`` (a component caching its
   own private state is its own business; caching *another*
   component's health/membership/backlog state across a wait is the
   bug class);
2. a wait point between the assignment and a later use — either
   lexically (``R1``), or via a loop back edge when the loop body
   contains a wait (``R2``: the local is refreshed at the bottom of
   the loop but used at the top, ``R3``: the local is computed before
   the loop and never refreshed inside it);
3. no ``# sanitizer: allow`` pragma on the use or assignment line.
   Deliberate snapshots (a read walking a fixed replica order, a
   re-checked rebuild scan) carry the pragma plus a comment saying
   *why* the staleness is tolerated.

The lint is syntactic and line-based by design — it over-approximates
control flow the same way the determinism lint does, and the pragma is
the escape hatch.  Diagnostics are deterministic: sorted by
``(path, line, column, local)``.

Run via ``python tools/lint_staleread.py`` or
``python -m repro.sanitizer lint`` (see ``docs/static-analysis.md``).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "PRAGMA",
    "SHARED_ATTRS",
    "StaleReadFinding",
    "lint_file",
    "lint_paths",
    "lint_source",
]

PRAGMA = "sanitizer: allow"

#: Attribute/method names treated as mutable shared state when read off
#: an object other than plain ``self``.  Curated from the simulator's
#: cross-component surfaces: listener lifecycle, balancer health and
#: membership, replication-log promises, node liveness, and the
#: queue/resource occupancy counters.
SHARED_ATTRS = frozenset({
    # listener / network state
    "listening", "pending", "refused",
    # node liveness
    "is_up", "is_reachable", "rebuild_progress", "is_alive",
    # balancer membership + health
    "is_admitted", "is_in_sync", "admitted", "in_sync",
    "write_targets", "read_order", "healthy_nodes", "replicas",
    "is_fully_replicated",
    # replication-log promises
    "replicas_of", "expected_size", "stored_size",
    # resource / store / loop occupancy
    "count", "in_use", "available", "queued", "live", "live_workers",
    # buffer-cache residency
    "is_resident", "is_dirty", "resident_pages", "dirty_pages",
})


class StaleReadFinding:
    """One flagged use of a stale-cached shared read."""

    def __init__(self, path: Path, line: int, col: int, local: str,
                 shared_expr: str, assign_line: int, rule: str) -> None:
        self.path = path
        self.line = line
        self.col = col
        self.local = local
        self.shared_expr = shared_expr
        self.assign_line = assign_line
        self.rule = rule

    @property
    def message(self) -> str:
        return (
            f"local {self.local!r} caches shared state "
            f"({self.shared_expr!r}, line {self.assign_line}) and is used "
            f"across a wait point [{self.rule}]; re-read it after resuming "
            f"or annotate with '# {PRAGMA}'"
        )

    def to_dict(self) -> dict:
        return {
            "path": str(self.path),
            "line": self.line,
            "col": self.col,
            "local": self.local,
            "shared": self.shared_expr,
            "assign_line": self.assign_line,
            "rule": self.rule,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.message}"


def _dotted(node: ast.AST) -> str:
    """Best-effort source-ish rendering of an attribute chain."""
    if isinstance(node, ast.Attribute):
        return f"{_dotted(node.value)}.{node.attr}"
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _dotted(node.func)
    return "<expr>"


def _shared_read(expr: ast.AST) -> Optional[str]:
    """The first shared-state attribute read inside ``expr`` whose
    owner is not plain ``self``, rendered as a dotted chain."""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in SHARED_ATTRS
            and not (isinstance(node.value, ast.Name)
                     and node.value.id == "self")
        ):
            return _dotted(node)
    return None


class _Assign:
    __slots__ = ("line", "shared")

    def __init__(self, line: int, shared: Optional[str]) -> None:
        self.line = line
        self.shared = shared


class _FunctionScan:
    """Per-function facts: assignments, uses, waits, yielding loops.

    Nested function bodies are excluded — they are scanned as their
    own functions.
    """

    def __init__(self, func: ast.AST) -> None:
        self.assigns: Dict[str, List[_Assign]] = {}
        self.uses: Dict[str, List[Tuple[int, int]]] = {}
        self.yields: List[int] = []
        #: (start_line, end_line) of loops whose body contains a wait.
        self.yield_loops: List[Tuple[int, int]] = []
        for stmt in getattr(func, "body", []):
            self._scan(stmt)
        self.yields.sort()

    # -- collection --------------------------------------------------------

    def _scan(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # separate scope, scanned separately
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self.yields.append(node.lineno)
        elif isinstance(node, (ast.For, ast.While)):
            if self._contains_wait(node):
                self.yield_loops.append(
                    (node.lineno, node.end_lineno or node.lineno))
        if isinstance(node, ast.Assign):
            shared = _shared_read(node.value)
            for target in node.targets:
                self._record_target(target, node.lineno, shared)
            # Scan the RHS itself, not just its children: in
            # ``x = yield from f()`` the wait point *is* the RHS node.
            self._scan(node.value)
            return
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            self._record_target(node.target, node.lineno,
                                _shared_read(node.value))
            self._scan(node.value)
            return
        if isinstance(node, ast.AugAssign):
            # x += ... both uses and redefines x; the redefinition is
            # derived from the old value, so keep it untagged.
            if isinstance(node.target, ast.Name):
                self._record_use(node.target)
                self._record_target(node.target, node.lineno, None)
            self._scan(node.value)
            return
        if isinstance(node, ast.For):
            self._record_target(node.target, node.lineno, None)
            self._scan_children(node.iter)
            for child in node.body + node.orelse:
                self._scan(child)
            return
        if isinstance(node, ast.withitem) and node.optional_vars is not None:
            self._record_target(node.optional_vars, node.lineno
                                if hasattr(node, "lineno")
                                else node.context_expr.lineno, None)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self._record_use(node)
        self._scan_children(node)

    def _scan_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._scan(child)

    def _contains_wait(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)) and sub is not node:
                continue
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
        return False

    def _record_target(self, target: ast.AST, line: int,
                       shared: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            self.assigns.setdefault(target.id, []).append(
                _Assign(line, shared))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, line, None)

    def _record_use(self, node: ast.Name) -> None:
        self.uses.setdefault(node.id, []).append(
            (node.lineno, node.col_offset))

    # -- analysis ----------------------------------------------------------

    def _yield_between(self, after: int, before: int) -> bool:
        return any(after < line < before for line in self.yields)

    def _loops_containing(self, line: int) -> List[Tuple[int, int]]:
        return [(s, e) for s, e in self.yield_loops if s <= line <= e]

    def findings_for(self, path: Path) -> List[StaleReadFinding]:
        found: List[StaleReadFinding] = []
        for local, assigns in self.assigns.items():
            if not any(a.shared for a in assigns):
                continue
            assigns = sorted(assigns, key=lambda a: a.line)
            for line, col in self.uses.get(local, []):
                flagged = self._check_use(local, assigns, line, col, path)
                if flagged is not None:
                    found.append(flagged)
        return found

    def _check_use(self, local: str, assigns: List[_Assign], line: int,
                   col: int, path: Path) -> Optional[StaleReadFinding]:
        governing: Optional[_Assign] = None
        for assign in assigns:
            if assign.line <= line:
                governing = assign
            else:
                break
        # R1: a wait lies between the governing shared assignment and
        # this use.
        if (governing is not None and governing.shared
                and self._yield_between(governing.line, line)):
            return StaleReadFinding(path, line, col, local, governing.shared,
                                    governing.line, "R1:linear")
        for start, end in self._loops_containing(line):
            in_loop = [a for a in assigns if start <= a.line <= end]
            # R2: refreshed below this use inside the loop — the value
            # seen here crossed the back edge (and the loop's waits).
            refresher = next(
                (a for a in in_loop if a.shared and a.line > line), None)
            if refresher is not None:
                return StaleReadFinding(path, line, col, local,
                                        refresher.shared, refresher.line,
                                        "R2:loop-back-edge")
            # R3: computed before the loop, never refreshed inside it —
            # every iteration past the first reads a pre-wait snapshot.
            if (not in_loop and governing is not None and governing.shared
                    and governing.line < start):
                return StaleReadFinding(path, line, col, local,
                                        governing.shared, governing.line,
                                        "R3:pre-loop-snapshot")
        return None


def lint_source(source: str, path: Path) -> List[StaleReadFinding]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = StaleReadFinding(path, exc.lineno or 0, 0, "<syntax>",
                                   "<syntax error>", exc.lineno or 0,
                                   "parse")
        return [finding]
    allowed = {
        i
        for i, text in enumerate(source.splitlines(), start=1)
        if PRAGMA in text
    }
    findings: List[StaleReadFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scan = _FunctionScan(node)
        if not scan.yields:
            continue  # no wait points: nothing can go stale
        for finding in scan.findings_for(path):
            if finding.line in allowed or finding.assign_line in allowed:
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (str(f.path), f.line, f.col, f.local))
    return findings


def lint_file(path: Path) -> List[StaleReadFinding]:
    return lint_source(path.read_text(encoding="utf-8"), path)


def lint_paths(paths: List[Path]) -> List[StaleReadFinding]:
    """Lint files/directories; deterministic order."""
    findings: List[StaleReadFinding] = []
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                findings.extend(lint_file(file))
        else:
            findings.extend(lint_file(path))
    findings.sort(key=lambda f: (str(f.path), f.line, f.col, f.local))
    return findings

"""Control-flow graph over CIL method bodies.

The CFG is the substrate every pass (and the analysis-backed JIT gate)
consumes: basic blocks, normal and **exception** edges, dominators and
reachability.  Block boundaries follow the classic leader rule —
entry, branch targets, fall-through points after conditional branches,
and protected-region handler entries all start blocks; ``ret``,
``throw`` and unconditional branches end them.

Exception edges model ECMA-335 II.19 unwinding: every block that
overlaps a protected region gets an edge to that region's handler
block, because any instruction inside the ``try`` may transfer there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cli.cil import Op
from repro.cli.metadata import MethodDef

__all__ = ["BasicBlock", "Edge", "CFG", "build_cfg"]

_BRANCHES = (Op.BR, Op.BRTRUE, Op.BRFALSE)
_TERMINATORS = (Op.BR, Op.RET, Op.THROW)


@dataclass(frozen=True)
class Edge:
    """A directed CFG edge.  ``kind`` is ``"fall"`` (straight-line or
    not-taken conditional), ``"branch"`` (taken branch) or
    ``"exception"`` (potential unwind into a handler)."""

    src: int
    dst: int
    kind: str


@dataclass
class BasicBlock:
    """A maximal straight-line run ``body[start:end]``."""

    index: int
    start: int
    end: int
    successors: List[Edge] = field(default_factory=list)
    predecessors: List[Edge] = field(default_factory=list)
    is_handler_entry: bool = False

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock B{self.index} [{self.start},{self.end})>"


class CFG:
    """Basic blocks + edges + dominators for one method."""

    def __init__(self, method: MethodDef, blocks: List[BasicBlock]) -> None:
        self.method = method
        self.blocks = blocks
        self._block_of_pc: Dict[int, int] = {}
        for b in blocks:
            for pc in b.pcs:
                self._block_of_pc[pc] = b.index
        self.reachable: FrozenSet[int] = self._compute_reachable()
        self.dominators: Dict[int, FrozenSet[int]] = self._compute_dominators()

    # -- queries ---------------------------------------------------------------

    def block_at(self, pc: int) -> BasicBlock:
        return self.blocks[self._block_of_pc[pc]]

    def reachable_pcs(self) -> Set[int]:
        """Instruction indices inside reachable blocks."""
        out: Set[int] = set()
        for bi in self.reachable:
            out.update(self.blocks[bi].pcs)
        return out

    def dominates(self, a: int, b: int) -> bool:
        """Does block ``a`` dominate block ``b``?  Unreachable blocks
        dominate nothing and are dominated by everything (vacuous)."""
        return a in self.dominators.get(b, frozenset())

    @property
    def edges(self) -> List[Edge]:
        return [e for b in self.blocks for e in b.successors]

    # -- construction helpers --------------------------------------------------

    def _compute_reachable(self) -> FrozenSet[int]:
        seen: Set[int] = set()
        work = [0] if self.blocks else []
        while work:
            bi = work.pop()
            if bi in seen:
                continue
            seen.add(bi)
            for e in self.blocks[bi].successors:
                if e.dst not in seen:
                    work.append(e.dst)
        return frozenset(seen)

    def _compute_dominators(self) -> Dict[int, FrozenSet[int]]:
        """Iterative dataflow dominators over the reachable subgraph."""
        reach = self.reachable
        doms: Dict[int, Set[int]] = {}
        if not self.blocks:
            return {}
        doms[0] = {0}
        others = sorted(reach - {0})
        for bi in others:
            doms[bi] = set(reach)
        changed = True
        while changed:
            changed = False
            for bi in others:
                preds = [
                    e.src for e in self.blocks[bi].predecessors if e.src in reach
                ]
                if preds:
                    new = set.intersection(*(doms[p] for p in preds))
                else:  # only entry has no preds among reachable blocks
                    new = set()
                new = new | {bi}
                if new != doms[bi]:
                    doms[bi] = new
                    changed = True
        return {bi: frozenset(s) for bi, s in doms.items()}

    def format(self) -> str:
        """Deterministic text rendering (used by ``disasm --cfg``)."""
        lines = [f"cfg {self.method.full_name}: {len(self.blocks)} block(s)"]
        for b in self.blocks:
            flags = []
            if b.index not in self.reachable:
                flags.append("unreachable")
            if b.is_handler_entry:
                flags.append("handler")
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(f"  B{b.index} [{b.start},{b.end}){suffix}")
            for e in sorted(b.successors, key=lambda e: (e.dst, e.kind)):
                lines.append(f"    -> B{e.dst} ({e.kind})")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CFG {self.method.full_name} blocks={len(self.blocks)} "
            f"reachable={len(self.reachable)}>"
        )


def build_cfg(method: MethodDef) -> CFG:
    """Build the CFG for a (label-resolved) method body."""
    body = method.body
    n = len(body)
    leaders: Set[int] = {0} if n else set()
    for h in method.handlers:
        if 0 <= h.handler_start < n:
            leaders.add(h.handler_start)
        if 0 <= h.try_start < n:
            leaders.add(h.try_start)
        if 0 <= h.try_end < n:
            leaders.add(h.try_end)
    for pc, ins in enumerate(body):
        if ins.op in _BRANCHES and isinstance(ins.operand, int):
            if 0 <= ins.operand < n:
                leaders.add(ins.operand)
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif ins.op in (Op.RET, Op.THROW) and pc + 1 < n:
            leaders.add(pc + 1)

    starts = sorted(leaders)
    blocks: List[BasicBlock] = []
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else n
        blocks.append(BasicBlock(index=i, start=start, end=end))
    block_of = {b.start: b.index for b in blocks}
    handler_entries = {h.handler_start for h in method.handlers}
    for b in blocks:
        if b.start in handler_entries:
            b.is_handler_entry = True

    def connect(src: int, dst_pc: int, kind: str) -> None:
        dst = block_of.get(dst_pc)
        if dst is None:
            return  # malformed target; the verifier reports it
        edge = Edge(src=src, dst=dst, kind=kind)
        blocks[src].successors.append(edge)
        blocks[dst].predecessors.append(edge)

    for b in blocks:
        if b.start >= b.end:  # pragma: no cover - empty body guard
            continue
        last_pc = b.end - 1
        last = body[last_pc]
        op = last.op
        if op is Op.BR:
            if isinstance(last.operand, int):
                connect(b.index, last.operand, "branch")
        elif op in (Op.BRTRUE, Op.BRFALSE):
            if isinstance(last.operand, int):
                connect(b.index, last.operand, "branch")
            if b.end < n:
                connect(b.index, b.end, "fall")
        elif op in (Op.RET, Op.THROW):
            pass
        elif b.end < n:
            connect(b.index, b.end, "fall")
        # Exception edges: any pc of this block inside a protected
        # region may unwind to its handler.
        seen_handlers: Set[int] = set()
        for h in method.handlers:
            if h.handler_start in seen_handlers:
                continue
            if not (0 <= h.handler_start < n):
                continue
            if max(b.start, h.try_start) < min(b.end, h.try_end):
                seen_handlers.add(h.handler_start)
                connect(b.index, h.handler_start, "exception")

    return CFG(method, blocks)

"""Seeded random-number streams.

All stochastic behaviour in the library (trace jitter, client think
times, file placement...) flows through :class:`SeededStreams` so a
single integer seed makes an entire experiment bit-for-bit
reproducible.  Each named stream is an independent ``numpy`` generator
derived from the root seed with ``SeedSequence.spawn``-style keying, so
adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["SeededStreams", "stream_seed"]


def stream_seed(root_seed: int, name: str) -> int:
    """Derive a deterministic 64-bit child seed for a named stream.

    Uses CRC32 of the stream name mixed into the root seed; stable
    across Python versions (unlike ``hash``) and across runs.
    """
    mix = zlib.crc32(name.encode("utf-8"))
    return (root_seed * 0x9E3779B97F4A7C15 + mix) & 0xFFFFFFFFFFFFFFFF


class SeededStreams:
    """A family of independently seeded RNG streams.

    >>> streams = SeededStreams(seed=42)
    >>> a = streams.get("disk-jitter")
    >>> b = streams.get("client-arrivals")
    >>> a is streams.get("disk-jitter")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(stream_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "SeededStreams":
        """Create a child family keyed off this family's seed and ``name``.

        Useful when a subsystem wants to hand out its own sub-streams
        without risking collisions with its parent's names.
        """
        return SeededStreams(stream_seed(self.seed, "fork:" + name))

    def reset(self) -> None:
        """Drop all streams; subsequent ``get`` calls start fresh."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededStreams(seed={self.seed}, active={sorted(self._streams)})"

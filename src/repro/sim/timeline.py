"""ASCII activity timelines from probe entries.

Buckets probe events over simulated time and renders one density row
per category — a quick visual answer to "what was the disk doing while
the server was slow?".

::

    probe = Probe(engine)
    ... run ...
    print(render_timeline(probe, buckets=60))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.sim.probe import Probe, ProbeEntry

__all__ = ["bucket_counts", "render_timeline"]

#: Density ramp: blank → light → heavy.
_RAMP = " .:-=+*#%@"


def bucket_counts(
    entries: Sequence[ProbeEntry],
    buckets: int,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> "tuple[Dict[str, List[int]], float, float]":
    """Histogram entries per (category, bucket).

    Returns ``(counts, start, end)``; bounds default to the entries'
    time span.
    """
    if buckets < 1:
        raise SimulationError(f"buckets must be >= 1, got {buckets}")
    if not entries:
        raise SimulationError("no probe entries to bucket")
    lo = min(e.time for e in entries) if start is None else start
    hi = max(e.time for e in entries) if end is None else end
    if hi <= lo:
        hi = lo + 1e-12
    width = (hi - lo) / buckets
    counts: Dict[str, List[int]] = {}
    for entry in entries:
        if not (lo <= entry.time <= hi):
            continue
        idx = min(buckets - 1, int((entry.time - lo) / width))
        row = counts.get(entry.category)
        if row is None:
            row = [0] * buckets
            counts[entry.category] = row
        row[idx] += 1
    return counts, lo, hi


def render_timeline(
    probe: Probe,
    buckets: int = 60,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> str:
    """One density row per category, aligned over a shared time axis."""
    counts, lo, hi = bucket_counts(probe.entries, buckets, start, end)
    peak = max((max(row) for row in counts.values()), default=0)
    lines = [f"timeline: {lo:.6g}s .. {hi:.6g}s ({buckets} buckets, peak {peak}/bucket)"]
    label_width = max((len(c) for c in counts), default=0)
    for category in sorted(counts):
        row = counts[category]
        cells = "".join(
            _RAMP[min(len(_RAMP) - 1, (n * (len(_RAMP) - 1)) // peak)] if peak else " "
            for n in row
        )
        lines.append(f"{category.rjust(label_width)} |{cells}|")
    return "\n".join(lines)

"""The event engine: virtual clock + ordered event queue.

The engine owns simulated time.  It never consults the wall clock;
``run()`` drains the queue until a stop condition.  Two-key ordering
``(time, seq)`` with a monotonic sequence counter makes same-time
events fire in the order they were scheduled, which keeps every
experiment deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Engine"]


class Engine:
    """Deterministic discrete-event engine.

    Parameters
    ----------
    start:
        Initial value of the simulated clock (seconds).
    tracer:
        A :class:`repro.obs.Tracer` to receive spans from every
        component built on this engine (``engine.tracer`` is how the
        stack reaches it); default is the zero-cost
        :data:`~repro.obs.NULL_TRACER`.
    metrics:
        A :class:`repro.obs.MetricsRegistry`; components register
        their collectors here at construction.  A fresh registry is
        created when omitted.
    """

    def __init__(self, start: float = 0.0, tracer=None, metrics=None) -> None:
        self._now: float = float(start)
        self._seq: int = 0
        # Heap items: (time, seq, kind, payload).  ``kind`` is a payload
        # tag — 1 for an Event whose callbacks should run, 0 for a bare
        # callable, 2 for a *background* callable (see
        # :meth:`schedule_background`) — so the drain loop dispatches on
        # an int compare instead of isinstance.  seq is unique, so kind
        # never takes part in heap ordering.
        self._queue: List[Tuple[float, int, int, Any]] = []
        # Background entries currently queued; when every remaining
        # queue entry is background, they are discarded unrun so they
        # never extend a run past its last foreground event.
        self._background: int = 0
        self._live_processes: int = 0
        self._running = False
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.attach(self)
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry()
        )

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event (trigger it with ``succeed``/``fail``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> Process:
        """Start a new process driving ``generator``; returns the process
        (itself an event that triggers when the generator finishes).

        ``daemon=True`` marks server-loop processes (disk arms, listen
        loops) that legitimately block forever: they are excluded from
        deadlock detection when the event queue drains.

        When a tracer is attached, each finishing process leaves a
        ``"sim"``-category span covering its lifetime.
        """
        proc = Process(self, generator, name=name, daemon=daemon)
        tracer = self.tracer
        if tracer.enabled:
            started = self._now
            label = proc.name
            proc.add_callback(
                lambda ev: tracer.complete(
                    f"process:{label}", "sim", started, daemon=daemon
                )
            )
        return proc

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that succeeds when every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that succeeds when the first event in ``events`` does."""
        return AnyOf(self, events)

    # -- scheduling internals ----------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, 1, event))

    def _schedule_call(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, 0, fn))

    def schedule_background(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        """Schedule ``fn`` as a *background* call ``delay`` seconds from now.

        Background calls run at their timestamp like any queued call,
        with one difference: when every entry left in the queue is
        background, the remaining background entries are discarded
        without running and **without advancing the clock**.  That is
        the contract telemetry sampling needs — a periodic scraper that
        reschedules itself forever must neither keep the run alive nor
        stretch ``engine.now`` past the workload's final event.

        Background callables must not schedule foreground work (events
        or plain calls); doing so would resurrect a run the workload
        considers finished.  Scheduling further background calls —
        the self-rescheduling sampler pattern — is the intended use.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        self._background += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, 2, fn))

    # -- main loop ----------------------------------------------------------

    def step(self) -> None:
        """Process exactly one queued entry, advancing the clock to it."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, kind, payload = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - heap invariant
            raise SimulationError("time went backwards")
        self._now = when
        if kind == 1:
            callbacks = payload.callbacks
            payload.callbacks = None  # mark processed
            if callbacks:
                for cb in callbacks:
                    cb(payload)
            # A failed event nobody waited on is a programming error we
            # surface rather than swallow (mirrors SimPy semantics).
            elif not payload._ok and not isinstance(payload, Process):
                raise payload.value
        else:
            # step() is explicit single-stepping: background calls run
            # unconditionally here (the only-background discard rule
            # lives in the run() drain loops).
            if kind == 2:
                self._background -= 1
            payload()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock would pass ``until``.

        Returns the final simulated time.  Raises :class:`DeadlockError`
        if the queue empties while processes are still alive (every
        process is blocked on an event nothing will trigger).

        The drain loop is inlined (rather than calling :meth:`step`)
        and dispatches on the heap entry's payload tag: this loop is
        the simulator's innermost hot path, and the saved call +
        isinstance per event is a measurable fraction of total wall
        time on macro experiments.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        run_started = self._now
        queue = self._queue
        heappop = heapq.heappop
        try:
            if until is None:
                while queue:  # unbounded drain: no per-event bound check
                    when, _seq, kind, payload = heappop(queue)
                    if kind == 1:
                        self._now = when
                        callbacks = payload.callbacks
                        payload.callbacks = None  # mark processed
                        if callbacks:
                            for cb in callbacks:
                                cb(payload)
                        elif not payload._ok and not isinstance(payload, Process):
                            raise payload.value
                    elif kind == 0:
                        self._now = when
                        payload()
                    else:
                        # Background call: discarded (clock untouched)
                        # when nothing but background work remains.
                        self._background -= 1
                        if len(queue) == self._background:
                            continue
                        self._now = when
                        payload()
            else:
                while queue:
                    if queue[0][0] > until:
                        self._now = until
                        return self._now
                    when, _seq, kind, payload = heappop(queue)
                    if kind == 1:
                        self._now = when
                        callbacks = payload.callbacks
                        payload.callbacks = None  # mark processed
                        if callbacks:
                            for cb in callbacks:
                                cb(payload)
                        elif not payload._ok and not isinstance(payload, Process):
                            raise payload.value
                    elif kind == 0:
                        self._now = when
                        payload()
                    else:
                        self._background -= 1
                        if len(queue) == self._background:
                            continue
                        self._now = when
                        payload()
            if self._live_processes > 0:
                raise DeadlockError(
                    f"{self._live_processes} live process(es) blocked forever "
                    "with an empty event queue"
                )
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False
            if self.tracer.enabled:
                self.tracer.complete("engine.run", "sim", run_started)

    def run_process(self, generator: Generator[Event, Any, Any]) -> Any:
        """Convenience: start ``generator`` as a process, run to completion,
        and return the generator's return value (re-raising its error)."""
        proc = self.process(generator)
        self.run()
        if not proc.triggered:  # pragma: no cover - defensive
            raise SimulationError("process did not finish")
        if not proc.ok:
            raise proc.value
        return proc.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self._now:.6g} queued={len(self._queue)}>"

"""Statistics collectors used across the simulation.

All collectors are cheap to update on the hot path (O(1) appends or
integer adds); aggregate queries (percentiles, means) vectorize with
NumPy only when asked.
"""

from __future__ import annotations

import math
import numbers
from typing import List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["Counter", "Tally", "TimeWeighted", "Histogram"]


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n``.

        ``n`` must be a non-negative integer; anything else raises
        :class:`~repro.errors.SimulationError` (the same error type
        every collector in this module uses for bad input — callers
        can catch one exception class for all of them).
        """
        if not isinstance(n, numbers.Integral):
            raise SimulationError(
                f"Counter {self.name!r}: add() needs an integer, got {n!r}"
            )
        if n < 0:
            raise SimulationError(f"Counter {self.name!r}: add of negative {n}")
        self.value += int(n)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class Tally:
    """Accumulates individual observations (e.g. per-request latencies)."""

    def __init__(self, name: str = "tally") -> None:
        self.name = name
        self._values: List[float] = []

    def record(self, value: float) -> None:
        """Add one observation.

        ``value`` must be a finite real number; non-numeric or NaN
        input raises :class:`~repro.errors.SimulationError` (matching
        :meth:`Counter.add` — one error type across the collectors).
        """
        self._values.append(self._check(value))

    def extend(self, values: Sequence[float]) -> None:
        """Add many observations (validated like :meth:`record`)."""
        self._values.extend(self._check(v) for v in values)

    def _check(self, value: float) -> float:
        try:
            out = float(value)
        except (TypeError, ValueError):
            raise SimulationError(
                f"Tally {self.name!r}: non-numeric observation {value!r}"
            ) from None
        if math.isnan(out):
            raise SimulationError(f"Tally {self.name!r}: NaN observation")
        return out

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        """The raw observations (copy — safe to mutate)."""
        return list(self._values)

    def values_since(self, index: int) -> List[float]:
        """Observations recorded at or after position ``index``.

        The windowed-telemetry access pattern: a sampler remembers the
        count at the last scrape and asks for everything newer.  A
        negative ``index`` is rejected (it would silently alias
        Python's from-the-end slicing); an ``index`` beyond the current
        count returns the empty list.
        """
        if index < 0:
            raise SimulationError(
                f"Tally {self.name!r}: values_since index must be >= 0, "
                f"got {index}"
            )
        return self._values[index:]

    def as_array(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    @property
    def total(self) -> float:
        return float(sum(self._values))

    @property
    def mean(self) -> float:
        if not self._values:
            raise SimulationError(f"Tally {self.name!r}: mean of no observations")
        return self.total / len(self._values)

    @property
    def minimum(self) -> float:
        if not self._values:
            raise SimulationError(f"Tally {self.name!r}: min of no observations")
        return min(self._values)

    @property
    def maximum(self) -> float:
        if not self._values:
            raise SimulationError(f"Tally {self.name!r}: max of no observations")
        return max(self._values)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        if not self._values:
            raise SimulationError(f"Tally {self.name!r}: std of no observations")
        return float(np.std(self.as_array()))

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100]."""
        if not self._values:
            raise SimulationError(f"Tally {self.name!r}: percentile of no observations")
        return float(np.percentile(self.as_array(), q))

    def __repr__(self) -> str:  # pragma: no cover
        if not self._values:
            return f"<Tally {self.name} empty>"
        return f"<Tally {self.name} n={self.count} mean={self.mean:.4g}>"


class TimeWeighted:
    """A piecewise-constant signal integrated over simulated time.

    Used for utilization and queue-length tracking: ``record(v)`` marks
    that the signal takes value ``v`` from *now* on; ``mean()`` is the
    time-weighted average since creation.
    """

    def __init__(self, engine: "Engine", initial: float = 0.0) -> None:
        self.engine = engine
        self._start = engine.now
        self._last_time = engine.now
        self._last_value = float(initial)
        self._area = 0.0
        self._max = float(initial)

    def record(self, value: float) -> None:
        """The signal becomes ``value`` at the current simulated time."""
        now = self.engine.now
        self._area += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = float(value)
        if value > self._max:
            self._max = float(value)

    @property
    def current(self) -> float:
        return self._last_value

    @property
    def maximum(self) -> float:
        return self._max

    def mean(self, until: Optional[float] = None) -> float:
        """Time-weighted mean over [start, until] (default: now)."""
        end = self.engine.now if until is None else until
        span = end - self._start
        if span <= 0:
            return self._last_value
        area = self._area + self._last_value * (end - self._last_time)
        return area / span

    def integral(self, until: Optional[float] = None) -> float:
        """Area under the signal from creation to ``until`` (default:
        now).

        Differences of successive integrals give exact window means —
        ``(I(t1) - I(t0)) / (t1 - t0)`` — which is how windowed
        telemetry reports a per-window utilization without replaying
        the signal.  ``until`` must not precede the last recorded
        change (the signal's past is already folded into ``_area``).
        """
        end = self.engine.now if until is None else until
        if end < self._last_time:
            raise SimulationError(
                "TimeWeighted.integral: until precedes the last recorded "
                f"change ({end} < {self._last_time})"
            )
        return self._area + self._last_value * (end - self._last_time)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TimeWeighted current={self._last_value:g} mean={self.mean():.4g}>"


class Histogram:
    """Fixed-width binned histogram with under/overflow buckets."""

    def __init__(self, low: float, high: float, bins: int, name: str = "hist") -> None:
        if bins < 1:
            raise SimulationError(f"bins must be >= 1, got {bins}")
        if not (high > low):
            raise SimulationError(f"need high > low, got [{low}, {high}]")
        self.name = name
        self.low = float(low)
        self.high = float(high)
        self.bins = bins
        self._width = (high - low) / bins
        self.counts = np.zeros(bins, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0
        self._n = 0

    def record(self, value: float) -> None:
        """Add one observation to the appropriate bin."""
        self._n += 1
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            idx = int((value - self.low) / self._width)
            # Guard against float edge landing exactly on `high`.
            self.counts[min(idx, self.bins - 1)] += 1

    @property
    def count(self) -> int:
        return self._n

    def bin_edges(self) -> np.ndarray:
        return np.linspace(self.low, self.high, self.bins + 1)

    def mode_bin(self) -> int:
        """Index of the most populated in-range bin."""
        if self.counts.sum() == 0:
            raise SimulationError(f"Histogram {self.name!r}: empty")
        return int(np.argmax(self.counts))

    def merge(self, other: "Histogram") -> "Histogram":
        """New histogram holding this one's mass plus ``other``'s.

        Both inputs must share the exact same binning (``low``,
        ``high``, ``bins``); anything else raises
        :class:`~repro.errors.SimulationError`.  Because bin counts are
        additive, the merge of two windows' histograms reports the
        same percentiles as one histogram fed the concatenated samples
        — the property windowed telemetry relies on when it rolls
        per-window distributions up into longer spans
        (``tests/sim/test_stats.py`` pins it for the bundled
        quantiles).
        """
        if not isinstance(other, Histogram):
            raise SimulationError(
                f"Histogram {self.name!r}: cannot merge with "
                f"{type(other).__name__}"
            )
        if (self.low, self.high, self.bins) != (other.low, other.high, other.bins):
            raise SimulationError(
                f"Histogram {self.name!r}: merge needs identical binning, "
                f"got [{self.low:g},{self.high:g})x{self.bins} vs "
                f"[{other.low:g},{other.high:g})x{other.bins}"
            )
        out = Histogram(self.low, self.high, self.bins,
                        name=f"{self.name}+{other.name}")
        out.counts = self.counts + other.counts
        out.underflow = self.underflow + other.underflow
        out.overflow = self.overflow + other.overflow
        out._n = self._n + other._n
        return out

    def percentile(self, q: float) -> float:
        """Percentile estimated from the binned counts, ``q`` in [0, 100].

        Mass is interpolated linearly within each bin.  The histogram
        does not retain exact sample values, so underflow mass counts
        as sitting at ``low`` and overflow mass at ``high`` — the
        estimate is always within ``[low, high]``.  An empty histogram
        or an out-of-range ``q`` raises
        :class:`~repro.errors.SimulationError`.
        """
        if not 0.0 <= q <= 100.0:
            raise SimulationError(
                f"Histogram {self.name!r}: percentile q={q} outside [0, 100]"
            )
        if self._n == 0:
            raise SimulationError(
                f"Histogram {self.name!r}: percentile of no observations"
            )
        if q == 0.0:
            # Left edge of the first recorded mass.
            if self.underflow:
                return self.low
            nonzero = np.flatnonzero(self.counts)
            if nonzero.size:
                return self.low + int(nonzero[0]) * self._width
            return self.high  # only overflow recorded
        target = (q / 100.0) * self._n
        cum = float(self.underflow)
        if self.underflow and target <= cum:
            return self.low
        for i, c in enumerate(self.counts):
            c = int(c)
            if c and target <= cum + c:
                frac = (target - cum) / c
                return self.low + (i + frac) * self._width
            cum += c
        return self.high  # target lands in the overflow mass

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Histogram {self.name} n={self._n} [{self.low:g},{self.high:g})x{self.bins}>"

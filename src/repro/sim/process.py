"""Processes: generator coroutines driven by the event engine.

A process wraps a Python generator.  Each value the generator yields
must be an :class:`~repro.sim.event.Event`; the process suspends until
that event is processed, then resumes with the event's value (or with
the event's exception thrown into the generator).  The process itself
is an event that triggers when the generator returns (value = the
``StopIteration`` value) or raises.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sanitizer import runtime as _sanitizer
from repro.sim.event import Event, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["Process"]


class Process(Event):
    """A running simulation process.

    Created via :meth:`Engine.process`; do not instantiate directly
    except in tests.
    """

    # ``_san_ctx`` holds the sanitizer's per-process vector-clock
    # context; the slot stays unset unless a detector is active.
    __slots__ = ("generator", "name", "daemon", "_waiting_on", "_san_ctx")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Engine.process() needs a generator, got {type(generator).__name__}"
            )
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Daemon processes (e.g. a disk's server loop) may block forever
        # without tripping deadlock detection when the queue drains.
        self.daemon = daemon
        self._waiting_on: Optional[Event] = None
        if not daemon:
            engine._live_processes += 1
        if _sanitizer.active is not None:
            _sanitizer.active.on_spawn(self, self.name)
        # Kick off at the current time.
        engine._schedule_call(self._resume_first)

    # -- driving ----------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def _resume_first(self) -> None:
        self._step(None, None)

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if _sanitizer.active is not None:
            _sanitizer.active.on_wakeup(self, event)
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.value)

    def _retire(self) -> None:
        """Bookkeeping when the generator finishes for any reason."""
        if not self.daemon:
            self.engine._live_processes -= 1

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self.is_alive:  # pragma: no cover - defensive
            return
        det = _sanitizer.active
        prev = det.enter(self) if det is not None else None
        try:
            try:
                if exc is None:
                    target = self.generator.send(value)
                else:
                    target = self.generator.throw(exc)
            except StopIteration as stop:
                self._retire()
                self.succeed(stop.value)
                return
            except BaseException as error:
                self._retire()
                self.fail(error)
                return

            if not isinstance(target, Event):
                self._retire()
                bad = SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event instances"
                )
                self.fail(bad)
                return
            if target.engine is not self.engine:
                self._retire()
                self.fail(SimulationError("yielded an event from a different engine"))
                return
            self._waiting_on = target
            target.add_callback(self._on_event)
        finally:
            if det is not None:
                det.leave(prev)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else ("ok" if self._ok else "failed")
        return f"<Process {self.name} {state}>"

"""Cooperative task multiplexing inside a single simulation process.

A :class:`Process` is the kernel's unit of concurrency, but it is also
the simulator's memory proxy: the webserver bench counts live
processes the way a real benchmark would count thread stacks.  An
event-driven server that held one process per connection would be
indistinguishable from thread-per-connection on that axis.

:class:`TaskLoop` is the missing primitive: it multiplexes any number
of coroutine *tasks* inside **one** process.  Each task is an ordinary
simulation generator (it yields :class:`~repro.sim.event.Event`
instances exactly as a process would); the loop steps every ready task
until it blocks on an event, parks itself when no task is runnable,
and is woken by the events its tasks are waiting on.  Ten thousand
tasks cost ten thousand generators — and a single process.

Determinism: tasks become ready in the order their awaited events are
processed by the engine (the engine's ``(time, seq)`` order), and the
ready queue is FIFO, so a ``TaskLoop`` run is bit-for-bit reproducible
like everything else on the engine.

Usage::

    loop = TaskLoop(engine, name="server.loop")
    loop.start()                      # one daemon process, forever
    task = loop.spawn(handle(conn))   # from any callback or process
    task.add_done_callback(lambda t: ...)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sanitizer import runtime as _sanitizer
from repro.sim.event import Event

__all__ = ["Task", "TaskLoop"]


class Task:
    """One coroutine scheduled on a :class:`TaskLoop`.

    Not an :class:`Event` (tasks are cheaper than events on purpose);
    processes that need to wait for one can yield
    :meth:`completion_event`.
    """

    __slots__ = ("generator", "label", "done", "ok", "result", "error",
                 "_done_callbacks", "_san_ctx")

    def __init__(self, generator: Generator[Event, Any, Any],
                 label: Optional[str] = None) -> None:
        self.generator = generator
        self.label = label or getattr(generator, "__name__", "task")
        self.done = False
        self.ok = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done_callbacks: List[Callable[["Task"], None]] = []

    def add_done_callback(self, callback: Callable[["Task"], None]) -> None:
        """Run ``callback(task)`` when the task finishes (immediately if
        it already has)."""
        if self.done:
            callback(self)
        else:
            self._done_callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "live"
        if self.done and not self.ok:
            state = f"failed: {self.error!r}"
        return f"<Task {self.label} {state}>"


class TaskLoop:
    """A readiness/completion event loop running many tasks in one process.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.sim.engine.Engine`.
    name:
        Process name for the driver (shows up in ``sim`` spans).
    error_handler:
        Called with the :class:`Task` whenever a task dies on an
        uncaught exception.  The loop itself never crashes on a task
        error — one bad connection must not take down the server —
        but unhandled errors are not silent either: with no handler
        and no done callbacks, the error is raised out of
        ``engine.run()`` at the failing step's timestamp.
    """

    def __init__(self, engine, name: str = "taskloop",
                 error_handler: Optional[Callable[[Task], None]] = None) -> None:
        self.engine = engine
        self.name = name
        self.error_handler = error_handler
        #: (task, send_value, throw_exc) triples runnable right now.
        self._ready: Deque[Tuple[Task, Any, Optional[BaseException]]] = deque()
        self._wake: Optional[Event] = None
        self._process = None
        self._live = 0
        self.peak_live = 0
        self.tasks_spawned = 0
        self.tasks_failed = 0

    # -- introspection -----------------------------------------------------

    @property
    def live(self) -> int:
        """Tasks spawned and not yet finished."""
        return self._live

    @property
    def started(self) -> bool:
        return self._process is not None

    # -- lifecycle ----------------------------------------------------------

    def start(self, daemon: bool = True):
        """Start the single driver process (daemon by default: an idle
        loop parks forever and must not trip deadlock detection)."""
        if self._process is not None:
            raise SimulationError(f"{self.name}: loop already started")
        self._process = self.engine.process(
            self._run(), name=self.name, daemon=daemon)
        return self._process

    def spawn(self, generator: Generator[Event, Any, Any],
              label: Optional[str] = None) -> Task:
        """Schedule a new task; it first runs when the loop next drains
        its ready queue (same timestamp, FIFO order)."""
        task = Task(generator, label)
        if _sanitizer.active is not None:
            _sanitizer.active.on_spawn(task, task.label)
        self._live += 1
        self.tasks_spawned += 1
        if self._live > self.peak_live:
            self.peak_live = self._live
        self._ready.append((task, None, None))
        self._wake_up()
        return task

    def completion_event(self, task: Task) -> Event:
        """An engine event that mirrors ``task``'s outcome — the bridge
        for ordinary processes to wait on a task."""
        ev = Event(self.engine)

        def _mirror(t: Task) -> None:
            if t.ok:
                ev.succeed(t.result)
            else:
                ev.fail(t.error)

        task.add_done_callback(_mirror)
        return ev

    # -- driving -----------------------------------------------------------

    def _wake_up(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _run(self):
        while True:
            while self._ready:
                task, value, exc = self._ready.popleft()
                self._step(task, value, exc)
            self._wake = self.engine.event()
            yield self._wake
            self._wake = None

    def _step(self, task: Task, value: Any,
              exc: Optional[BaseException]) -> None:
        """Advance one task until it blocks on an event or finishes."""
        det = _sanitizer.active
        prev = det.enter(task) if det is not None else None
        try:
            try:
                if exc is None:
                    target = task.generator.send(value)
                else:
                    target = task.generator.throw(exc)
            except StopIteration as stop:
                self._finish(task, stop.value, None)
                return
            except BaseException as error:
                self._finish(task, None, error)
                return
            if not isinstance(target, Event):
                self._finish(task, None, SimulationError(
                    f"task {task.label!r} yielded {target!r}; "
                    "tasks must yield Event instances"))
                return
            if target.engine is not self.engine:
                self._finish(task, None, SimulationError(
                    f"task {task.label!r} yielded an event from a different engine"))
                return
            target.add_callback(lambda ev, t=task: self._resume(t, ev))
        finally:
            if det is not None:
                det.leave(prev)

    def _resume(self, task: Task, event: Event) -> None:
        if _sanitizer.active is not None:
            _sanitizer.active.on_wakeup(task, event)
        if event.ok:
            self._ready.append((task, event.value, None))
        else:
            self._ready.append((task, None, event.value))
        self._wake_up()

    def _finish(self, task: Task, result: Any,
                error: Optional[BaseException]) -> None:
        self._live -= 1
        task.done = True
        task.ok = error is None
        task.result = result
        task.error = error
        if error is not None:
            self.tasks_failed += 1
            if self.error_handler is not None:
                self.error_handler(task)
            elif not task._done_callbacks:
                # Surface the error out of ``engine.run()``: a failed
                # non-Process event nobody waits on is raised by the
                # drain loop (raising here would only fail the loop's
                # own daemon process, which nothing observes).
                Event(self.engine).fail(error)
        for callback in task._done_callbacks:
            callback(task)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TaskLoop {self.name} live={self._live} "
                f"ready={len(self._ready)} peak={self.peak_live}>")

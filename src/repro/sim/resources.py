"""Shared resources for simulation processes.

:class:`Resource`
    A counted resource (e.g. a pool of CPU cores or a disk's command
    slot).  FIFO grant order.

:class:`Store`
    An unbounded FIFO of items with blocking ``get`` (e.g. a listen
    backlog of incoming connections).

:class:`Channel`
    A serialized communication link with latency and bandwidth —
    models the interconnect used by communication bursts and the
    simulated TCP transport.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sanitizer import runtime as _sanitizer
from repro.sim.engine import Engine
from repro.sim.event import Event
from repro.sim.stats import TimeWeighted

__all__ = ["Resource", "Store", "Channel"]


class _Request(Event):
    """Grant event handed out by :meth:`Resource.acquire`."""

    __slots__ = ("resource",)

    def __init__(self, engine: Engine, resource: "Resource") -> None:
        super().__init__(engine)
        self.resource = resource


class Resource:
    """A counted resource with FIFO queuing.

    >>> res = Resource(engine, capacity=2)
    >>> req = res.acquire()   # inside a process: yield req
    >>> res.release(req)
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[_Request] = deque()
        self.utilization = TimeWeighted(engine, initial=0.0)
        self.queue_length = TimeWeighted(engine, initial=0.0)

    # -- introspection -----------------------------------------------------

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    # -- operations ---------------------------------------------------------

    def acquire(self) -> _Request:
        """Request one slot.  Yield the returned event to wait for grant."""
        req = _Request(self.engine, self)
        if self._in_use < self.capacity:
            self._in_use += 1
            self._record()
            req.succeed(self)
        else:
            self._waiters.append(req)
            self._record()
        return req

    def release(self, request: _Request) -> None:
        """Return the slot granted by ``request``."""
        if not isinstance(request, _Request) or request.resource is not self:
            raise SimulationError("release() of a request not issued by this resource")
        if not request.triggered:
            # Cancelled while still queued.
            try:
                self._waiters.remove(request)
            except ValueError:
                raise SimulationError("request neither granted nor queued") from None
            self._record()
            return
        if self._in_use <= 0:  # pragma: no cover - defensive
            raise SimulationError(f"{self.name}: release with nothing in use")
        if self._waiters:
            nxt = self._waiters.popleft()
            nxt.succeed(self)  # slot transfers directly; _in_use unchanged
        else:
            self._in_use -= 1
        self._record()

    def _record(self) -> None:
        self.utilization.record(self._in_use / self.capacity)
        self.queue_length.record(len(self._waiters))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name} {self._in_use}/{self.capacity} "
            f"queued={len(self._waiters)}>"
        )


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that succeeds with
    the oldest item as soon as one is available.
    """

    def __init__(self, engine: Engine, name: str = "store") -> None:
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of items currently buffered."""
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            # Hand-off through the getter's event: the sanitizer edge
            # rides succeed() for free.
            self._getters.popleft().succeed(item)
        else:
            if _sanitizer.active is not None:
                # Buffered: stash the putter's clock alongside the item
                # so the eventual getter inherits the edge.
                _sanitizer.active.on_store_put(self)
            self._items.append(item)

    def get(self) -> Event:
        """Event that succeeds with the next item (immediately if buffered)."""
        ev = Event(self.engine)
        if self._items:
            if _sanitizer.active is not None:
                # Join the buffered putter's clock into the getter
                # *before* succeed() stamps the trigger clock.
                _sanitizer.active.on_store_get(self)
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> list:
        """Remove and return every buffered item (oldest first).

        Waiting getters are untouched: they stay parked until the next
        :meth:`put`.  Used by teardown paths (e.g. a crashing cluster
        node flushing its accept backlog) that must dispose of queued
        items without waking consumers.
        """
        if _sanitizer.active is not None:
            _sanitizer.active.on_store_drain(self)
        items = list(self._items)
        self._items.clear()
        return items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Store {self.name} items={len(self._items)} waiting={len(self._getters)}>"


class Channel:
    """A serialized link with latency and bandwidth.

    A transfer of ``nbytes`` occupies the link for ``nbytes /
    bandwidth`` seconds and completes ``latency`` seconds after its
    transmission finishes (cut-through pipelining of the propagation
    delay).  Transfers are serialized FIFO, modelling a shared
    interconnect or a NIC.
    """

    def __init__(
        self,
        engine: Engine,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "channel",
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise SimulationError(f"latency must be >= 0, got {latency}")
        self.engine = engine
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self._link = Resource(engine, capacity=1, name=f"{name}.link")
        self.bytes_sent = 0
        self.transfers = 0

    def transfer_time(self, nbytes: int) -> float:
        """Pure service time for ``nbytes`` (no queueing)."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def send(self, nbytes: int):
        """Process generator: occupy the link and delay for the transfer.

        Usage inside a process::

            yield from channel.send(nbytes)
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        grant = self._link.acquire()
        yield grant
        try:
            yield self.engine.timeout(nbytes / self.bandwidth)
        finally:
            self._link.release(grant)
        # Propagation delay does not hold the link.
        if self.latency > 0:
            yield self.engine.timeout(self.latency)
        self.bytes_sent += nbytes
        self.transfers += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name} bw={self.bandwidth:g}B/s lat={self.latency:g}s>"

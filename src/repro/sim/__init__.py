"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine event engine in the style
of SimPy, purpose-built for this reproduction: simulated CPUs, disks,
network channels and managed threads are all processes scheduled on
one :class:`Engine`.

Quick tour::

    from repro.sim import Engine

    eng = Engine()

    def worker(eng, results):
        yield eng.timeout(1.5)
        results.append(eng.now)

    results = []
    eng.process(worker(eng, results))
    eng.run()
    assert results == [1.5]

Determinism: events scheduled for the same timestamp fire in FIFO
order of scheduling (stable sequence numbers); no wall-clock or
global RNG is consulted anywhere in the kernel.
"""

from repro.sim.event import Event, Timeout, AllOf, AnyOf
from repro.sim.process import Process
from repro.sim.engine import Engine
from repro.sim.resources import Resource, Store, Channel
from repro.sim.stats import Counter, Tally, TimeWeighted, Histogram
from repro.sim.probe import NULL_PROBE, NullProbe, Probe, ProbeEntry
from repro.sim.taskloop import Task, TaskLoop
from repro.sim.timeline import bucket_counts, render_timeline

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Task",
    "TaskLoop",
    "Resource",
    "Store",
    "Channel",
    "Counter",
    "Tally",
    "TimeWeighted",
    "Histogram",
    "Probe",
    "ProbeEntry",
    "NullProbe",
    "NULL_PROBE",
    "bucket_counts",
    "render_timeline",
]

"""Event probes: structured, timestamped instrumentation.

.. deprecated::
    ``Probe`` predates the unified observability layer and is kept as
    a thin back-compatible adapter over :class:`repro.obs.Tracer`:
    every ``record()`` becomes an *instant* trace event on an internal
    (or shared) tracer, and all queries read back from it.  New code
    should use ``engine.tracer`` / :mod:`repro.obs` directly — spans,
    counters and exporters live there.  See ``docs/observability.md``.

A :class:`Probe` collects ``(time, category, message, fields)``
entries from instrumented components (disk, buffer cache, file
system).  Probes are opt-in and cost nothing when absent — components
hold a :class:`NullProbe` by default whose ``record`` is a no-op.

Usage::

    probe = Probe(engine, categories={"disk", "cache"})
    disk = Disk(engine, probe=probe)
    ...
    print(probe.render(limit=50))

To get probe records into an exported trace, hand the probe the same
tracer the engine uses::

    tracer = Tracer()
    engine = Engine(tracer=tracer)
    probe = Probe(engine, tracer=tracer)   # records merge into tracer
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["ProbeEntry", "Probe", "NullProbe", "NULL_PROBE"]


@dataclass(frozen=True)
class ProbeEntry:
    """One instrumentation event."""

    time: float
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:14.9f}] {self.category:8s} {self.message}" + (
            f" ({extra})" if extra else ""
        )


class NullProbe:
    """Instrumentation sink that discards everything (the default)."""

    __slots__ = ()
    enabled = False

    def record(self, category: str, message: str, **fields: Any) -> None:
        """No-op."""

    def wants(self, category: str) -> bool:
        return False


#: Shared do-nothing instance; safe because NullProbe is stateless.
NULL_PROBE = NullProbe()


class Probe:
    """Recording probe with optional category filtering and a cap.

    Parameters
    ----------
    engine:
        Supplies timestamps.
    categories:
        If given, only these categories are recorded.
    capacity:
        Maximum retained entries (oldest dropped beyond it); None =
        unbounded.
    tracer:
        Record into this :class:`repro.obs.Tracer` instead of a
        private one — pass the engine's tracer to merge probe records
        into an exported trace.  Category filtering and the capacity
        cap then apply tracer-wide only when the probe created the
        tracer itself.
    """

    enabled = True

    def __init__(
        self,
        engine: "Engine",
        categories: Optional[Iterable[str]] = None,
        capacity: Optional[int] = 100_000,
        tracer: Optional[Tracer] = None,
    ) -> None:
        warnings.warn(
            "Probe is deprecated; use repro.obs.Tracer via engine.tracer "
            "instead (see docs/observability.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1 or None, got {capacity}")
        self.engine = engine
        self.categories = set(categories) if categories is not None else None
        self.capacity = capacity
        if tracer is None:
            tracer = Tracer(capacity=capacity)
            tracer.attach(engine, name="probe")
        self._tracer = tracer

    @property
    def tracer(self) -> Tracer:
        """The backing tracer (share it to merge with other sources)."""
        return self._tracer

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def record(self, category: str, message: str, **fields: Any) -> None:
        """Append one entry (filtered by category, capped by capacity)."""
        if not self.wants(category):
            return
        self._tracer.instant(message, category, **fields)

    @property
    def entries(self) -> List[ProbeEntry]:
        """All recorded entries, oldest first (rebuilt per access from
        the backing tracer's instant events)."""
        return [
            ProbeEntry(e.start, e.category, e.name, dict(e.attrs))
            for e in self._tracer.events
            if e.kind == "instant"
        ]

    @property
    def dropped(self) -> int:
        return self._tracer.dropped

    def by_category(self, category: str) -> List[ProbeEntry]:
        return [e for e in self.entries if e.category == category]

    def between(self, start: float, end: float) -> List[ProbeEntry]:
        """Entries with ``start <= time < end``."""
        return [e for e in self.entries if start <= e.time < end]

    def clear(self) -> None:
        self._tracer.clear()

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable log of the most recent entries.

        Contract: ``limit=None`` renders every entry; ``limit > 0``
        renders the most recent ``limit`` entries; ``limit <= 0``
        renders none (returns the empty string) — a zero or negative
        budget never means "everything".
        """
        if limit is not None and limit <= 0:
            return ""
        items = self.entries
        if limit is not None:
            items = items[-limit:]
        return "\n".join(e.render() for e in items)

    def __len__(self) -> int:
        return sum(1 for e in self._tracer.events if e.kind == "instant")

"""Event probes: structured, timestamped instrumentation.

A :class:`Probe` collects ``(time, category, message, fields)``
entries from instrumented components (disk, buffer cache, file
system).  Probes are opt-in and cost nothing when absent — components
hold a :class:`NullProbe` by default whose ``record`` is a no-op.

Usage::

    probe = Probe(engine, categories={"disk", "cache"})
    disk = Disk(engine, probe=probe)
    ...
    print(probe.render(limit=50))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["ProbeEntry", "Probe", "NullProbe", "NULL_PROBE"]


@dataclass(frozen=True)
class ProbeEntry:
    """One instrumentation event."""

    time: float
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:14.9f}] {self.category:8s} {self.message}" + (
            f" ({extra})" if extra else ""
        )


class NullProbe:
    """Instrumentation sink that discards everything (the default)."""

    __slots__ = ()
    enabled = False

    def record(self, category: str, message: str, **fields: Any) -> None:
        """No-op."""

    def wants(self, category: str) -> bool:
        return False


#: Shared do-nothing instance; safe because NullProbe is stateless.
NULL_PROBE = NullProbe()


class Probe:
    """Recording probe with optional category filtering and a cap.

    Parameters
    ----------
    engine:
        Supplies timestamps.
    categories:
        If given, only these categories are recorded.
    capacity:
        Maximum retained entries (oldest dropped beyond it); None =
        unbounded.
    """

    enabled = True

    def __init__(
        self,
        engine: "Engine",
        categories: Optional[Iterable[str]] = None,
        capacity: Optional[int] = 100_000,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1 or None, got {capacity}")
        self.engine = engine
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self.capacity = capacity
        self.entries: List[ProbeEntry] = []
        self.dropped = 0

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def record(self, category: str, message: str, **fields: Any) -> None:
        """Append one entry (filtered by category, capped by capacity)."""
        if not self.wants(category):
            return
        if self.capacity is not None and len(self.entries) >= self.capacity:
            self.entries.pop(0)
            self.dropped += 1
        self.entries.append(
            ProbeEntry(self.engine.now, category, message, dict(fields))
        )

    def by_category(self, category: str) -> List[ProbeEntry]:
        return [e for e in self.entries if e.category == category]

    def between(self, start: float, end: float) -> List[ProbeEntry]:
        """Entries with ``start <= time < end``."""
        return [e for e in self.entries if start <= e.time < end]

    def clear(self) -> None:
        self.entries.clear()
        self.dropped = 0

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable log (most recent ``limit`` entries)."""
        items = self.entries if limit is None else self.entries[-limit:]
        return "\n".join(e.render() for e in items)

    def __len__(self) -> int:
        return len(self.entries)

"""Events: the unit of synchronization in the simulation kernel.

An :class:`Event` starts *pending*, is *triggered* exactly once with
either a value (``succeed``) or an exception (``fail``), and then has
its callbacks run by the engine.  Processes wait on events by yielding
them.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sanitizer import runtime as _sanitizer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["PENDING", "Event", "Timeout", "AllOf", "AnyOf"]


class _Pending:
    """Sentinel for 'not yet triggered'."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot synchronization point.

    Attributes
    ----------
    engine:
        The owning :class:`~repro.sim.engine.Engine`.
    callbacks:
        Callables invoked (in order) when the event is processed.
        ``None`` once the event has been processed.
    """

    # ``_vc`` is the sanitizer's happens-before edge: the triggering
    # context's vector clock, stamped at ``succeed``/``fail`` time and
    # joined into each waiter when it resumes.  The slot stays unset
    # (not even None) unless a detector is active.
    __slots__ = ("engine", "callbacks", "_value", "_ok", "_vc")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has run the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (meaningless before trigger)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully and schedule its callbacks now.

        Pushes onto the engine's heap directly (a zero-delay schedule
        needs neither the negative-delay check nor the time addition):
        event triggering is on the simulator's hot path.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        if _sanitizer.active is not None:
            _sanitizer.active.on_trigger(self)
        engine = self.engine
        engine._seq += 1
        heappush(engine._queue, (engine._now, engine._seq, 1, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        if _sanitizer.active is not None:
            _sanitizer.active.on_trigger(self)
        engine = self.engine
        engine._seq += 1
        heappush(engine._queue, (engine._now, engine._seq, 1, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs immediately via the queue if
        the event was already processed."""
        if self.callbacks is None:
            # Already processed: schedule a zero-delay wake-up preserving
            # FIFO ordering rather than calling synchronously.
            self.engine._schedule_call(lambda: callback(self))
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        if self.processed:
            state += ",processed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay.

    The constructor initializes fields and pushes onto the engine's
    heap inline (no ``super().__init__`` / ``_schedule_event``
    indirection): the interpreter's dispatch-quantum accounting makes
    this the most-constructed object in the whole simulator.  A zero
    delay — the common "reschedule me" idiom — skips the time
    addition, reusing the engine's current clock value directly.
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.engine = engine
        self.callbacks = []
        self._ok = True
        self._value = value
        self.delay = delay
        if _sanitizer.active is not None:
            # The creator's clock is the timeout's trigger clock: a
            # Timeout never calls succeed(), its value is set here.
            _sanitizer.active.on_trigger(self)
        engine._seq += 1
        heappush(
            engine._queue,
            (engine._now + delay if delay else engine._now, engine._seq, 1, self),
        )


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: List[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            # add_callback defers via the queue if the event was already
            # processed; a merely *triggered* event (e.g. a Timeout, whose
            # value is set at creation) still delivers at its fire time.
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        return {ev: ev.value for ev in self.events if ev.triggered and ev.ok}


class AllOf(_Condition):
    """Succeeds when *all* child events have succeeded.

    Fails as soon as any child fails, propagating that exception.
    The success value is ``{event: value}`` for all children.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if _sanitizer.active is not None:
            # Callbacks run in the engine's drain loop (root context),
            # so child clocks must be accumulated explicitly for the
            # condition's eventual trigger to order after every child.
            _sanitizer.active.on_condition(self, event)
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds as soon as *any* child event succeeds.

    The success value is ``{event: value}`` for the children that have
    triggered successfully at that moment.  Fails if a child fails
    before any succeeds.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if _sanitizer.active is not None:
            _sanitizer.active.on_condition(self, event)
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(self._collect())

"""Run experiments and print/save the report::

    python -m repro.bench                       # everything, to stdout
    python -m repro.bench fig4 tab1             # a subset
    python -m repro.bench --output report.txt   # also save the text
    python -m repro.bench --json results.json   # machine-readable dump
    python -m repro.bench tab1 --trace-out t.json   # Chrome/Perfetto trace
    python -m repro.bench tab1 --trace-jsonl t.jsonl  # JSONL event dump
    python -m repro.bench --baseline-out BENCH_now.json  # gate snapshot

See docs/observability.md for the trace formats, the baseline schema,
and the regression gate (``python -m repro.obs gate``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS, run_experiment
from repro.bench.report import render_table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help=f"experiment ids (default: all of {', '.join(sorted(ALL_EXPERIMENTS))})",
    )
    parser.add_argument("--output", help="also write the text report to this file")
    parser.add_argument("--json", dest="json_path",
                        help="write results as JSON to this file")
    parser.add_argument(
        "--trace-out",
        dest="trace_out",
        help="record simulation spans and write a Chrome trace_event JSON "
        "file (open in ui.perfetto.dev or chrome://tracing)",
    )
    parser.add_argument(
        "--trace-jsonl",
        dest="trace_jsonl",
        help="record simulation spans and write them as JSON-lines",
    )
    parser.add_argument(
        "--baseline-out",
        dest="baseline_out",
        help="write a machine-readable metric snapshot for the "
        "regression gate (python -m repro.obs gate)",
    )
    args = parser.parse_args(argv)

    tracer = None
    if args.trace_out or args.trace_jsonl:
        from repro.obs import Tracer

        tracer = Tracer()

    exp_ids = args.experiments or sorted(ALL_EXPERIMENTS)
    blocks = []
    dumps = []
    results = []
    for exp_id in exp_ids:
        t0 = time.perf_counter()
        result = run_experiment(exp_id, tracer=tracer)
        elapsed = time.perf_counter() - t0
        block = render_table(result) + f"\n  (ran in {elapsed:.2f}s wall)"
        print(block)
        print()
        blocks.append(block)
        results.append(result)
        entry = result.to_dict()
        entry["wall_seconds"] = round(elapsed, 3)
        dumps.append(entry)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(blocks) + "\n")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(dumps, fh, indent=2)
    if args.baseline_out:
        from repro.obs.report import write_baseline

        doc = write_baseline(args.baseline_out, results,
                             label=" ".join(exp_ids))
        n_metrics = sum(len(e["metrics"]) for e in doc["experiments"].values())
        print(f"wrote baseline for {len(doc['experiments'])} experiments "
              f"({n_metrics} metrics) to {args.baseline_out}")
    if tracer is not None:
        from repro.obs import write_chrome_trace, write_jsonl

        if args.trace_out:
            n = write_chrome_trace(args.trace_out, tracer)
            print(f"wrote {n} trace events to {args.trace_out} "
                  f"(categories: {', '.join(tracer.categories_seen())})")
        if args.trace_jsonl:
            n = write_jsonl(args.trace_jsonl, tracer)
            print(f"wrote {n} events to {args.trace_jsonl}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Run experiments and print/save the report::

    python -m repro.bench                       # everything, to stdout
    python -m repro.bench fig4 tab1             # a subset
    python -m repro.bench --jobs 4              # across worker processes
    python -m repro.bench --profile prof/       # cProfile per experiment
    python -m repro.bench --output report.txt   # also save the text
    python -m repro.bench --json results.json   # machine-readable dump
    python -m repro.bench tab1 --trace-out t.json   # Chrome/Perfetto trace
    python -m repro.bench tab1 --trace-jsonl t.jsonl  # JSONL event dump
    python -m repro.bench --baseline-out BENCH_now.json  # gate snapshot
    python -m repro.bench ext_scale --wallclock-append BENCH_wallclock.jsonl
    python -m repro.bench ext_faults --telemetry-out series.jsonl
    python -m repro.bench ext_cluster --sanitize     # race detector on

Simulated metrics are deterministic, so ``--jobs N`` output is
byte-identical to a serial run (wall seconds aside).  Tracing and
telemetry force ``--jobs 1``: a single collector cannot span
processes.

``--telemetry-out`` samples each telemetry-aware experiment's metrics
registry on simulated time into a windowed series file (render it with
``python -m repro.obs timeline``); sampling never perturbs simulated
results, and two same-seed runs write byte-identical series.

See docs/observability.md for the trace formats, the baseline schema,
and the regression gate (``python -m repro.obs gate``);
docs/performance.md for profiling and the wall-clock workflow.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.bench.experiments import ALL_EXPERIMENTS, run_experiment
from repro.bench.report import render_table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help=f"experiment ids (default: all of {', '.join(sorted(ALL_EXPERIMENTS))})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments across N worker processes "
        "(default 1 = serial; output is byte-identical either way)",
    )
    parser.add_argument(
        "--profile",
        dest="profile_dir",
        metavar="DIR",
        help="run each experiment under cProfile and write "
        "DIR/<exp_id>.pstats",
    )
    parser.add_argument("--output", help="also write the text report to this file")
    parser.add_argument("--json", dest="json_path",
                        help="write results as JSON to this file")
    parser.add_argument(
        "--trace-out",
        dest="trace_out",
        help="record simulation spans and write a Chrome trace_event JSON "
        "file (open in ui.perfetto.dev or chrome://tracing)",
    )
    parser.add_argument(
        "--trace-jsonl",
        dest="trace_jsonl",
        help="record simulation spans and write them as JSON-lines",
    )
    parser.add_argument(
        "--baseline-out",
        dest="baseline_out",
        help="write a machine-readable metric snapshot for the "
        "regression gate (python -m repro.obs gate); includes an "
        "informational wall_clock section",
    )
    parser.add_argument(
        "--telemetry-out",
        dest="telemetry_out",
        metavar="PATH",
        help="sample each experiment's metrics registry on simulated "
        "time and write the windowed series as deterministic JSONL "
        "(render with: python -m repro.obs timeline PATH)",
    )
    parser.add_argument(
        "--telemetry-interval-ms",
        dest="telemetry_interval_ms",
        type=float,
        default=100.0,
        metavar="MS",
        help="telemetry sampling interval in simulated milliseconds "
        "(default 100)",
    )
    parser.add_argument(
        "--wallclock-append",
        dest="wallclock_append",
        metavar="PATH",
        help="append one JSON line of per-experiment wall seconds to "
        "PATH (the committed BENCH_wallclock.jsonl trajectory)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the happens-before race detector "
        "(repro.sanitizer); simulated metrics are unchanged, exit "
        "status 1 if any race is reported (forces --jobs 1)",
    )
    args = parser.parse_args(argv)

    detector = None
    if args.sanitize:
        from repro.sanitizer import enable

        detector = enable()
        if args.jobs != 1:
            # The detector's clocks live in this process's engines.
            print("sanitizer requested: forcing --jobs 1")
            args.jobs = 1

    tracer = None
    if args.trace_out or args.trace_jsonl:
        from repro.obs import Tracer

        tracer = Tracer()
        if args.jobs != 1:
            # One Tracer cannot observe engines in other processes.
            print("tracing requested: forcing --jobs 1")
            args.jobs = 1

    telemetry = None
    if args.telemetry_out:
        from repro.obs import Telemetry, TelemetryConfig

        telemetry = Telemetry(TelemetryConfig(
            interval=args.telemetry_interval_ms * 1e-3))
        if args.jobs != 1:
            # One hub cannot collect samplers in other processes.
            print("telemetry requested: forcing --jobs 1")
            args.jobs = 1
        if args.profile_dir is not None:
            print("telemetry is not collected under --profile "
                  "(profiled runs execute in the worker harness)")
            telemetry = None

    exp_ids = args.experiments or sorted(ALL_EXPERIMENTS)

    if args.jobs != 1:
        from repro.bench.parallel import run_experiments_parallel

        timed = run_experiments_parallel(
            exp_ids, args.jobs, profile_dir=args.profile_dir
        )
    else:
        timed = []
        for exp_id in exp_ids:
            if args.profile_dir is not None:
                from repro.bench.parallel import run_one

                _exp_id, payload, elapsed = run_one(exp_id, args.profile_dir)
                from repro.bench.report import ExperimentResult

                timed.append((ExperimentResult.from_dict(payload), elapsed))
            else:
                t0 = time.perf_counter()  # det: allow - wall-time measurement is the point
                result = run_experiment(exp_id, tracer=tracer,
                                        telemetry=telemetry)
                timed.append((result, time.perf_counter() - t0))  # det: allow - wall-time measurement

    blocks = []
    dumps = []
    results = []
    wall_seconds = {}
    for (result, elapsed), exp_id in zip(timed, exp_ids):
        block = render_table(result) + f"\n  (ran in {elapsed:.2f}s wall)"
        print(block)
        print()
        blocks.append(block)
        results.append(result)
        wall_seconds[exp_id] = elapsed
        entry = result.to_dict()
        entry["wall_seconds"] = round(elapsed, 3)
        dumps.append(entry)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(blocks) + "\n")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(dumps, fh, indent=2)
    if args.baseline_out:
        from repro.obs.report import write_baseline

        doc = write_baseline(args.baseline_out, results,
                             label=" ".join(exp_ids),
                             wall_seconds=wall_seconds)
        n_metrics = sum(len(e["metrics"]) for e in doc["experiments"].values())
        print(f"wrote baseline for {len(doc['experiments'])} experiments "
              f"({n_metrics} metrics) to {args.baseline_out}")
    if args.wallclock_append:
        line = {
            "date": time.strftime("%Y-%m-%d"),  # det: allow - wall-clock log timestamp
            "jobs": args.jobs,
            "experiments": {k: round(v, 3) for k, v in wall_seconds.items()},
            "total_wall_seconds": round(sum(wall_seconds.values()), 3),
        }
        with open(args.wallclock_append, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(line, sort_keys=True) + "\n")
        print(f"appended wall-clock snapshot to {args.wallclock_append}")
    if telemetry is not None:
        n = telemetry.write(args.telemetry_out)
        print(f"wrote {n} telemetry records to {args.telemetry_out} "
              f"(render with: python -m repro.obs timeline "
              f"{args.telemetry_out})")
    if tracer is not None:
        from repro.obs import write_chrome_trace, write_jsonl

        if args.trace_out:
            n = write_chrome_trace(args.trace_out, tracer)
            print(f"wrote {n} trace events to {args.trace_out} "
                  f"(categories: {', '.join(tracer.categories_seen())})")
        if args.trace_jsonl:
            n = write_jsonl(args.trace_jsonl, tracer)
            print(f"wrote {n} events to {args.trace_jsonl}")
    if detector is not None:
        from repro.sanitizer import disable

        disable()
        print(detector.format_report())
        if detector.races:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

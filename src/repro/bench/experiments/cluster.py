"""The replicated-cluster experiment (the scale-out robustness axis).

``ext_cluster`` sweeps a sharded, R-way-replicated file-service
cluster (:mod:`repro.cluster`) across topology (N×R), read-routing
policy, and fault plan, under a Zipf-popularity open-arrival fleet:

* three clean 3-node rows isolate the routing policies against the
  same traffic;
* crash rows kill one member mid-run and measure the full degraded
  lifecycle — failovers, client retries, balancer ejection, and the
  re-replication traffic that makes the node trustworthy again;
* a partition row shows the cheaper failure mode: unreachable but
  alive, so rejoin needs only the writes it missed.

Every faulted row re-verifies the durability invariant — **no
acknowledged write lost** — and the experiment refuses to report
otherwise.  With a telemetry hub attached, each scenario's engine is
sampled into per-node series (``node=`` labels), and the crash
scenarios carry an availability SLO over degraded completions that
fires during the outage and resolves once re-replication catches the
rejoined node up.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.report import ExperimentResult
from repro.errors import BenchmarkError
from repro.faults import FaultPlan, FaultSpec
from repro.obs.analysis import percentiles
from repro.units import to_ms

__all__ = ["run_ext_cluster"]

#: One member dies in this simulated window — late enough that every
#: policy has warmed up, early enough that the fleet (~0.4 s of
#: arrivals) is still firing when it rejoins and rebuilds.
_CRASH_WINDOW = (0.10, 0.22)
_TELEMETRY_INTERVAL = 0.02


def _availability_rules():
    """Availability SLO over degraded completions (local import keeps
    the experiment importable without the telemetry subsystem)."""
    from repro.obs.slo import AlertRule, SloSpec

    return (
        AlertRule(
            SloSpec("cluster-availability", "availability",
                    "cluster.degraded", objective=0.9,
                    total_metric="cluster.requests"),
            for_windows=1, clear_windows=2,
        ),
    )


def _scenarios(seed: int):
    """(name, nodes, replication, policy, fault_plan) per row."""
    crash = FaultPlan(seed=seed, specs=(
        FaultSpec(kind="node.crash", target="node-1",
                  start=_CRASH_WINDOW[0], end=_CRASH_WINDOW[1]),
    ))
    partition = FaultPlan(seed=seed, specs=(
        FaultSpec(kind="node.partition", target="node-1",
                  start=_CRASH_WINDOW[0], end=_CRASH_WINDOW[1]),
    ))
    return (
        ("n3-r2-round_robin", 3, 2, "round_robin", None),
        ("n3-r2-least_conn", 3, 2, "least_conn", None),
        ("n3-r2-consistent", 3, 2, "consistent", None),
        ("n3-r2-crash", 3, 2, "round_robin", crash),
        ("n5-r3-crash", 5, 3, "least_conn", crash),
        ("n3-r2-partition", 3, 2, "consistent", partition),
    )


def run_ext_cluster(requests: int = 200, seed: int = 31,
                    tracer: Optional[object] = None,
                    telemetry: Optional[object] = None) -> ExperimentResult:
    """Cluster sweep: N×R topology, routing policy, and node faults.

    ``tracer`` records every cluster point event (``node.down``,
    ``node.up``, ``failover``, ``rebalance.move``, ``lb.eject``) for
    ``repro.obs report``'s instant summary.  ``telemetry`` (a
    :class:`repro.obs.Telemetry` hub) samples every scenario's engine
    into ``scenario=``/``node=``-labeled series; the faulted scenarios
    additionally run the availability SLO of
    :func:`_availability_rules`.  The experiment rows are
    byte-identical with or without either attached.
    """
    from repro.cluster import (
        ClusterConfig,
        ClusterWorkload,
        ClusterWorkloadConfig,
        FileCluster,
    )

    rows = []
    for name, nodes, replication, policy, plan in _scenarios(seed):
        cluster = FileCluster(ClusterConfig(
            nodes=nodes, replication=replication, policy=policy,
            num_keys=24, seed=seed, fault_plan=plan, tracer=tracer,
        ))
        sampler = None
        if telemetry is not None:
            sampler = telemetry.attach(
                cluster.engine,
                rules=_availability_rules() if plan is not None else None,
                interval=_TELEMETRY_INTERVAL,
                scenario=name,
            )
        workload = ClusterWorkload(cluster, ClusterWorkloadConfig(
            requests=requests, arrival_rate=500.0, seed=seed,
        ))
        result = workload.run()
        if sampler is not None:
            sampler.finish()
        durability = cluster.verify_durability()
        lost = durability["lost_acked_writes"]
        if plan is not None and lost != 0:
            raise BenchmarkError(
                f"{name}: {lost} acknowledged write(s) lost: "
                f"{durability['lost'][:3]}")
        pcts = percentiles(result.latencies.values, (50, 99))
        rows.append(
            (
                name,
                result.attempted,
                result.completed,
                result.aborted,
                round(result.throughput, 1),
                round(to_ms(pcts[50]), 3),
                round(to_ms(pcts[99]), 3),
                result.failovers,
                result.retries,
                result.ejections,
                result.rebuilt_keys,
                result.degraded,
                lost,
            )
        )
    notes = [
        "a crashed member costs availability, not durability: reads "
        "fail over to surviving replicas and every acknowledged write "
        "is re-verified present after the node rejoins (lost_acked "
        "is asserted zero)",
        "the balancer ejects the dead member after consecutive failed "
        "probes, so the failover/retry burst is confined to the grey "
        "window between crash and ejection",
        "on rejoin the node is admitted for writes immediately but "
        "serves no reads until re-replication rebuilds its stale "
        "shards (rebuilt_keys counts that traffic)",
        "a partition is the cheaper failure: storage never diverges "
        "beyond the writes missed while unreachable, so rejoin "
        "rebuilds only those",
    ]
    return ExperimentResult(
        exp_id="ext_cluster",
        title="Extension: replicated cluster under node crash and partition",
        columns=("scenario", "attempted", "completed", "aborted",
                 "throughput_rps", "p50_ms", "p99_ms", "failovers",
                 "retries", "ejections", "rebuilt_keys", "degraded",
                 "lost_acked"),
        rows=rows,
        notes=notes,
    )

"""Tables 1–4: trace-replay per-operation timings.

Tables 1 and 2 (Dmine, Titan) report steady-state per-op means — we
replay with a warm-up pass.  Tables 3 and 4 (LU, Cholesky) expose
per-request behaviour including fault spikes — we replay cold.

Paper values are embedded for side-by-side comparison; absolute
magnitudes of *faulting* operations differ (our misses hit a modeled
mechanical disk; the paper's 1 GB file lived substantially in the
Windows page cache), but the orderings and bimodality reproduce.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.bench.report import ExperimentResult
from repro.traces import (
    IOOp,
    ReplayConfig,
    TraceReplayer,
    generate_cholesky,
    generate_dmine,
    generate_lu,
    generate_titan,
)

__all__ = ["run_tab1", "run_tab2", "run_tab3", "run_tab4", "PAPER"]

#: Published values (ms) for the comparison columns.
PAPER = {
    "dmine": {"size": 131072, "read": 0.0025, "open": 0.0006, "close": 0.0072,
              "seek": 7.88e-5},
    "titan": {"size": 187681, "read": 0.002, "open": 0.0005, "close": 0.005},
    "lu": {"open": 0.0006, "close": 0.4566,
           "seeks": [(66617088, 9.43e-5), (66092544, 7.54e-5), (64518912, 9.69e-5),
                     (63994368, 7.27e-5), (62945280, 2e-4), (60322560, 9.60e-5)]},
    "cholesky": {"open": 0.00067, "close": 0.0071,
                 "reads": [(4, 7.33e-5), (28044, 7.54e-5), (28048, 0.0169),
                           (133692, 7.27e-5), (136108, 0.01), (143452, 0.01),
                           (132128, 0.025), (149052, 0.015), (144642, 0.004),
                           (84140, 7.92e-5), (217832, 8.26e-5), (624548, 8.16e-5),
                           (916884, 7.92e-5), (1592356, 8.15e-5), (2018308, 1.2e-4),
                           (2446612, 7.54e-5)]},
}


def _mean(result, op):
    s = result.timings.stats(op)
    return s.mean_ms if s is not None else None


def _config(config: Optional[ReplayConfig], tracer, **defaults) -> ReplayConfig:
    """Default config for a table, with an optional shared tracer."""
    cfg = config or ReplayConfig(**defaults)
    if tracer is not None and cfg.tracer is None:
        cfg = replace(cfg, tracer=tracer)
    return cfg


def run_tab1(config: Optional[ReplayConfig] = None, tracer=None) -> ExperimentResult:
    """Table 1: the data-mining application (steady state)."""
    header, records = generate_dmine()
    cfg = _config(config, tracer, warmup=True)
    result = TraceReplayer(cfg).replay(header, records, "dmine")
    p = PAPER["dmine"]
    rows = [
        ("read", p["size"], round(_mean(result, IOOp.READ), 6), p["read"]),
        ("open", p["size"], round(_mean(result, IOOp.OPEN), 6), p["open"]),
        ("close", p["size"], round(_mean(result, IOOp.CLOSE), 6), p["close"]),
        ("seek", p["size"], round(_mean(result, IOOp.SEEK), 7), p["seek"]),
    ]
    notes = [
        "shape: seek < open < read < close, exactly the paper's ordering",
        f"cache hit ratio {result.cache_hits}/{result.cache_hits + result.cache_misses}",
    ]
    return ExperimentResult(
        exp_id="tab1",
        title="Results for the data mining application (ms)",
        columns=("operation", "data_size_bytes", "measured_ms", "paper_ms"),
        rows=rows,
        notes=notes,
    )


def run_tab2(config: Optional[ReplayConfig] = None, tracer=None) -> ExperimentResult:
    """Table 2: the Titan remote-sensing database (steady state)."""
    header, records = generate_titan()
    cfg = _config(config, tracer, warmup=True)
    result = TraceReplayer(cfg).replay(header, records, "titan")
    p = PAPER["titan"]
    rows = [
        ("read", p["size"], round(_mean(result, IOOp.READ), 6), p["read"]),
        ("open", p["size"], round(_mean(result, IOOp.OPEN), 6), p["open"]),
        ("close", p["size"], round(_mean(result, IOOp.CLOSE), 6), p["close"]),
    ]
    notes = ["shape: close > open; reads microsecond-scale from the buffer cache"]
    return ExperimentResult(
        exp_id="tab2",
        title="Results for the Titan application (ms)",
        columns=("operation", "data_size_bytes", "measured_ms", "paper_ms"),
        rows=rows,
        notes=notes,
    )


def run_tab3(config: Optional[ReplayConfig] = None, tracer=None) -> ExperimentResult:
    """Table 3: LU factorization — per-request seek times plus the
    open/close pair the paper quotes in prose."""
    header, records = generate_lu()
    cfg = _config(config, tracer, warmup=False)
    result = TraceReplayer(cfg).replay(header, records, "lu")
    paper_seeks = dict(PAPER["lu"]["seeks"])
    seek_rows = result.rows_for(IOOp.SEEK)
    rows = []
    seen = set()
    for offset, ms in seek_rows:
        if offset in paper_seeks and offset not in seen:
            seen.add(offset)
            rows.append((len(rows) + 1, offset, round(ms, 7), paper_seeks[offset]))
    open_ms = round(_mean(result, IOOp.OPEN), 6)
    close_ms = round(_mean(result, IOOp.CLOSE), 6)
    notes = [
        "shape: seek times are flat and tiny (bookkeeping + async prefetch)",
        f"open {open_ms} ms vs close {close_ms} ms (paper: 0.0006 vs 0.4566) — "
        "close pays for the dirty pages LU's panel writes left behind",
    ]
    return ExperimentResult(
        exp_id="tab3",
        title="Results for the LU application: seek times (ms)",
        columns=("request", "data_size_bytes", "measured_seek_ms", "paper_seek_ms"),
        rows=rows,
        notes=notes,
    )


def run_tab4(config: Optional[ReplayConfig] = None, tracer=None) -> ExperimentResult:
    """Table 4: sparse Cholesky — per-request seek and read times."""
    header, records = generate_cholesky()
    cfg = _config(config, tracer, warmup=False)
    result = TraceReplayer(cfg).replay(header, records, "cholesky")
    seeks = result.rows_for(IOOp.SEEK)
    reads = result.rows_for(IOOp.READ)
    paper_reads = PAPER["cholesky"]["reads"]
    rows = []
    for i, ((size, read_ms), (_off, seek_ms)) in enumerate(zip(reads, seeks), start=1):
        paper_ms = paper_reads[i - 1][1] if i <= len(paper_reads) else None
        rows.append((i, size, round(seek_ms, 7), round(read_ms, 6), paper_ms))
    fast = [r for r in rows if r[3] < 0.05]
    slow = [r for r in rows if r[3] >= 0.05]
    notes = [
        f"shape: bimodal reads — {len(fast)} buffer-cache hits vs {len(slow)} "
        "page-faulting requests, orders of magnitude apart (paper: 10 fast / 6 faulting)",
        f"open {round(_mean(result, IOOp.OPEN), 6)} ms vs close "
        f"{round(_mean(result, IOOp.CLOSE), 6)} ms (paper: 0.00067 vs 0.0071)",
    ]
    return ExperimentResult(
        exp_id="tab4",
        title="Results for the Cholesky application (ms)",
        columns=("request", "data_size_bytes", "seek_ms", "read_ms", "paper_read_ms"),
        rows=rows,
        notes=notes,
    )

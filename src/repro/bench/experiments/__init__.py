"""Experiment registry."""

import inspect

from repro.bench.experiments.fig2_fig3_qcrd import run_fig2, run_fig3
from repro.bench.experiments.fig4_fig5_speedup import run_fig4, run_fig5
from repro.bench.experiments.tables_traces import run_tab1, run_tab2, run_tab3, run_tab4
from repro.bench.experiments.tab5_tab6_webserver import run_tab5, run_tab6
from repro.bench.experiments.extensions import (
    run_ext_cil,
    run_ext_comm,
    run_ext_dist,
    run_ext_eviction,
    run_ext_pgrep,
    run_ext_prefetch,
    run_ext_scheduler,
    run_ext_vm,
)
from repro.bench.experiments.arch import run_ext_arch
from repro.bench.experiments.cluster import run_ext_cluster
from repro.bench.experiments.faults import run_ext_degraded, run_ext_faults
from repro.bench.experiments.scale import run_ext_scale

from repro.errors import BenchmarkError

#: experiment id → runner.  fig*/tab* regenerate the paper's evaluation;
#: ext_* are the DESIGN.md §6 extensions.
ALL_EXPERIMENTS = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "tab1": run_tab1,
    "tab2": run_tab2,
    "tab3": run_tab3,
    "tab4": run_tab4,
    "tab5": run_tab5,
    "tab6": run_tab6,
    "ext_prefetch": run_ext_prefetch,
    "ext_scheduler": run_ext_scheduler,
    "ext_vm": run_ext_vm,
    "ext_comm": run_ext_comm,
    "ext_cil": run_ext_cil,
    "ext_dist": run_ext_dist,
    "ext_eviction": run_ext_eviction,
    "ext_pgrep": run_ext_pgrep,
    "ext_faults": run_ext_faults,
    "ext_degraded": run_ext_degraded,
    "ext_scale": run_ext_scale,
    "ext_arch": run_ext_arch,
    "ext_cluster": run_ext_cluster,
}

__all__ = ["ALL_EXPERIMENTS", "run_experiment"] + sorted(
    f"run_{k}" for k in ALL_EXPERIMENTS
)


def run_experiment(exp_id: str, **kwargs):
    """Run one experiment by id (``fig2`` ... ``tab6``).

    Optional kwargs (e.g. ``tracer=``) that a particular runner does
    not accept are dropped rather than raising, so callers can hand
    the same instrumentation to every experiment in a sweep.
    """
    try:
        runner = ALL_EXPERIMENTS[exp_id]
    except KeyError:
        raise BenchmarkError(
            f"unknown experiment {exp_id!r}; choices: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    params = inspect.signature(runner).parameters
    if not any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        kwargs = {k: v for k, v in kwargs.items() if k in params}
    return runner(**kwargs)

"""Figures 4 and 5: QCRD speedup vs disks and vs CPUs.

Figure 4 sweeps the number of (per-node) disks over {2,4,8,16,32} and
finds the speedup "changes slightly", because the application's
makespan is dominated by the CPU-bound Program 1.  Figure 5 sweeps
CPUs and finds meaningful speedup (~2.1–2.4) that saturates once the
serial I/O fraction dominates (Amdahl).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.report import ExperimentResult
from repro.model import (
    MachineConfig,
    build_qcrd,
    cpu_speedup_study,
    disk_speedup_study,
    predict_speedup,
    speedup_bound,
)

__all__ = ["run_fig4", "run_fig5", "PAPER_COUNTS"]

PAPER_COUNTS = (2, 4, 8, 16, 32)


def run_fig4(
    counts: Sequence[int] = PAPER_COUNTS,
    machine: Optional[MachineConfig] = None,
) -> ExperimentResult:
    """Figure 4: speedup as a function of the number of disks."""
    app = build_qcrd()
    speedups = disk_speedup_study(app, counts=counts, machine=machine)
    predicted = predict_speedup(app, "disks", counts)
    rows = [(n, round(speedups[n], 3), round(predicted[n], 3)) for n in counts]
    spread = max(r[1] for r in rows) - min(r[1] for r in rows)
    notes = [
        "shape: speedup changes only slightly with disk count "
        f"(range {min(r[1] for r in rows):.2f}-{max(r[1] for r in rows):.2f}, "
        f"spread {spread:.2f}) — Program 1 (CPU-bound, longest) dominates",
        f"analytic Amdahl limit for disks: {speedup_bound(app, 'disks'):.2f}",
    ]
    return ExperimentResult(
        exp_id="fig4",
        title="QCRD speedup vs number of disks",
        columns=("disks", "speedup", "predicted"),
        rows=rows,
        notes=notes,
    )


def run_fig5(
    counts: Sequence[int] = PAPER_COUNTS,
    machine: Optional[MachineConfig] = None,
) -> ExperimentResult:
    """Figure 5: speedup as a function of the number of CPUs."""
    app = build_qcrd()
    speedups = cpu_speedup_study(app, counts=counts, machine=machine)
    predicted = predict_speedup(app, "cpus", counts)
    rows = [(n, round(speedups[n], 3), round(predicted[n], 3)) for n in counts]
    notes = [
        "shape: speedup rises steeply at small CPU counts, then saturates "
        f"around {rows[-1][1]:.2f} (paper: ~2.1-2.4) as the serial I/O "
        "fraction binds",
        f"analytic Amdahl limit for CPUs: {speedup_bound(app, 'cpus'):.2f}",
    ]
    return ExperimentResult(
        exp_id="fig5",
        title="QCRD speedup vs number of CPUs",
        columns=("cpus", "speedup", "predicted"),
        rows=rows,
        notes=notes,
    )

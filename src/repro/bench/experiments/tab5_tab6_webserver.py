"""Tables 5 and 6 (and Figure 6): the web-server micro-benchmark.

Table 5: one GET and one POST per image file, on a cold VM — per-file
read/write times.  Table 6 / Figure 6: six consecutive GETs of the
~14 KB file — the first is slowest (JIT + cold buffers), subsequent
reads come from the I/O buffers.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.bench.report import ExperimentResult
from repro.webserver import HostConfig, WebServerHost


def _host(config: Optional[HostConfig], tracer) -> WebServerHost:
    cfg = config or HostConfig()
    if tracer is not None and cfg.tracer is None:
        cfg = replace(cfg, tracer=tracer)
    return WebServerHost(cfg)

__all__ = ["run_tab5", "run_tab6", "PAPER_TAB5", "PAPER_TAB6"]

#: Table 5: (data size, read ms, write ms) in the paper's request order.
PAPER_TAB5 = [
    (7501, 2.1175, 2.8538),
    (50607, 2.2319, 2.7442),
    (14063, 1.6764, 2.4026),
]

#: Table 6: read ms per trial for the ~14 KB file.
PAPER_TAB6 = [9.0181, 6.7331, 6.5070, 7.4598, 5.9489, 3.2441]

_FILES_BY_SIZE = {
    7501: "/images/photo2.jpg",
    50607: "/images/photo1.jpg",
    14063: "/images/photo3.jpg",
}


def run_tab5(config: Optional[HostConfig] = None, tracer=None) -> ExperimentResult:
    """Table 5: response time of read and write operations."""
    host = _host(config, tracer)
    requests = []
    for size, _r, _w in PAPER_TAB5:
        requests.append(("GET", _FILES_BY_SIZE[size]))
        requests.append(("POST", "/upload", size))
    host.run_request_sequence(requests)
    gets = host.metrics.gets()
    posts = host.metrics.posts()
    rows = []
    for i, (size, paper_read, paper_write) in enumerate(PAPER_TAB5):
        rows.append(
            (
                i + 1,
                size,
                round(gets[i].read_ms, 4),
                paper_read,
                round(posts[i].write_ms, 4),
                paper_write,
            )
        )
    notes = [
        "shape: the server's first I/O operation is the slowest for its size; "
        "durable writes are slower than warm reads (paper: writes > reads)",
        "absolute GET times exceed the paper's — our cold misses hit a modeled "
        "mechanical disk, the paper's hit Windows' partially-warm page cache",
    ]
    return ExperimentResult(
        exp_id="tab5",
        title="Web server: response time of read and write operations (ms)",
        columns=(
            "request",
            "data_size_bytes",
            "read_ms",
            "paper_read_ms",
            "write_ms",
            "paper_write_ms",
        ),
        rows=rows,
        notes=notes,
    )


def run_tab6(
    trials: int = 6, config: Optional[HostConfig] = None, tracer=None
) -> ExperimentResult:
    """Table 6 / Figure 6: repeated reads of the same ~14 KB file."""
    host = _host(config, tracer)
    path = _FILES_BY_SIZE[14063]
    host.run_request_sequence([("GET", path)] * trials)
    gets = host.metrics.gets()
    rows = []
    for i, rec in enumerate(gets, start=1):
        paper = PAPER_TAB6[i - 1] if i <= len(PAPER_TAB6) else None
        rows.append((i, rec.data_bytes, round(rec.read_ms, 4), paper))
    first, rest = rows[0][2], [r[2] for r in rows[1:]]
    notes = [
        f"shape: first read {first} ms vs subsequent max {max(rest)} ms — "
        "JIT compilation plus cold I/O buffers make trial 1 the slowest "
        "(paper: 9.02 ms decaying to 3.24 ms)",
        "deviation: our buffer cache makes re-reads microsecond-scale, a "
        "sharper drop than the paper's network/OS-noise-dominated trials",
    ]
    return ExperimentResult(
        exp_id="tab6",
        title="Web server: repeated reads of the same file (Table 6 / Figure 6)",
        columns=("trial", "data_size_bytes", "read_ms", "paper_read_ms"),
        rows=rows,
        notes=notes,
    )

"""The ``ext_arch`` experiment: server architecture as a bench axis.

The paper's server is thread-per-connection by construction; the
repo's :data:`~repro.webserver.host.SERVER_ARCHITECTURES` registry
makes that a knob.  This experiment sweeps concurrency for both
designs — the paper's threaded server and the single-process
event-driven one — under a clean network and under injected
connection drops with client-side retry, and reports what each
architecture pays:

* ``throughput_rps`` and ``p50/p90/p99`` latency — the service the
  client sees (identical protocol semantics, so differences are pure
  scheduling);
* ``peak_processes`` — the memory proxy: live simulated processes at
  the run's high-water mark.  Thread-per-connection grows with
  concurrency (acceptor + one worker per in-flight request); the
  event loop is pinned at 1.

Every row uses the same workload seed, so the request mix and think
times are identical across architectures; results are deterministic
and byte-reproducible like the rest of the suite.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.report import ExperimentResult
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.units import to_ms
from repro.webserver import HostConfig, WebServerHost
from repro.webserver.workload import WorkloadConfig, WorkloadGenerator

__all__ = ["run_ext_arch"]

#: Closed-loop client counts swept per architecture.
_CONCURRENCY = (4, 16, 64)


def run_ext_arch(total_requests: int = 256, seed: int = 29,
                 telemetry: Optional[object] = None) -> ExperimentResult:
    """Sweep concurrency × architecture × fault condition.

    With a ``telemetry`` hub, every scenario's engine is sampled into
    windowed series labeled ``architecture=`` / ``scenario=`` /
    ``node=`` — the two architectures' latency and shed trajectories
    land side by side in one stream.
    """
    rows = []
    for faulted in (False, True):
        for arch in ("thread", "eventloop"):
            for clients in _CONCURRENCY:
                rows.append(_run_scenario(
                    arch, clients, total_requests, seed, faulted,
                    telemetry=telemetry))
    notes = [
        "identical seeds per scenario: both architectures serve the "
        "same request mix, so throughput/latency deltas are pure "
        "scheduling (thread-start overhead vs. task switching)",
        "peak_processes is the memory proxy: the threaded server holds "
        "acceptor + one process per in-flight connection, the event "
        "loop exactly one process at any concurrency",
        "faulted rows drop server-side connections with probability "
        "0.05; clients re-issue under a retry budget, and both "
        "architectures degrade identically at the protocol level",
    ]
    return ExperimentResult(
        exp_id="ext_arch",
        title="Extension: server architecture sweep (thread vs. event loop)",
        columns=("scenario", "requests", "throughput_rps", "p50_ms",
                 "p90_ms", "p99_ms", "peak_processes", "retries",
                 "aborted"),
        rows=rows,
        notes=notes,
    )


def _run_scenario(arch: str, clients: int, total_requests: int,
                  seed: int, faulted: bool,
                  telemetry: Optional[object] = None):
    per_client, remainder = divmod(total_requests, clients)
    if remainder:
        raise ValueError(
            f"total_requests ({total_requests}) must divide evenly "
            f"across {clients} clients")
    plan = None
    retry = None
    if faulted:
        plan = FaultPlan(seed=seed, specs=(
            FaultSpec(kind="net.drop", target="server", probability=0.05),
        ))
        retry = RetryPolicy(max_attempts=6)
    host = WebServerHost(HostConfig(architecture=arch, fault_plan=plan))
    sampler = None
    if telemetry is not None:
        sampler = telemetry.attach(
            host.engine,
            architecture=arch,
            node="server-0",
            scenario=f"{arch}-c{clients}" + ("-faults" if faulted else ""),
        )
    outcome = WorkloadGenerator(host, WorkloadConfig(
        num_clients=clients,
        requests_per_client=per_client,
        get_fraction=0.9,
        mean_think_time=1e-3,
        seed=seed,
        retry=retry,
    )).run()
    if sampler is not None:
        sampler.finish()
    if not faulted and outcome.error_count:
        raise AssertionError(
            f"ext_arch clean run {arch}/c{clients} saw "
            f"{outcome.error_count} errors")
    scenario = f"{arch}-c{clients}" + ("-faults" if faulted else "")
    lat = outcome.latencies
    return (
        scenario,
        outcome.count,
        round(outcome.throughput, 3),
        round(to_ms(lat.percentile(50)), 4),
        round(to_ms(lat.percentile(90)), 4),
        round(to_ms(lat.percentile(99)), 4),
        outcome.peak_processes,
        outcome.retries,
        outcome.aborted,
    )

"""Fault-injection experiments (the robustness extension).

* ``ext_faults``   — the Dmine trace replayed fault-free, under
  transient media errors absorbed by retries, and on a degraded
  (slowed) disk: what resilience costs and what it buys.
* ``ext_degraded`` — a mirrored array read workload healthy, with one
  failed member (degraded reads), and through a rebuild.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.report import ExperimentResult
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry, MirroredArray
from repro.traces import IOOp, ReplayConfig, TraceReplayer, generate_dmine
from repro.units import MiB, to_ms

__all__ = ["run_ext_faults", "run_ext_degraded"]

#: Simulated-time window in which the telemetry showcase scenario arms
#: its media errors, and the sampling interval that resolves it.  The
#: dmine replay runs ~0.2 simulated seconds, so [80ms, 140ms) sits
#: mid-run with clean windows on both sides at 10 ms sampling.
_TELEMETRY_FAULT_WINDOW = (0.08, 0.14)
_TELEMETRY_INTERVAL = 0.01


def _fault_window_rules():
    """SLO rules for the telemetry fault-window scenario.

    Local import so the experiment stays importable without the
    telemetry subsystem in play (and costs nothing when unused).
    """
    from repro.obs.slo import AlertRule, SloSpec

    return (
        # Burn-rate alert on the retry channel: every retried read is
        # budget spend against a 95%-first-attempt-success objective.
        AlertRule(
            SloSpec("retry-burn", "error_budget", "retry.retries",
                    objective=0.95, total_metric="retry.attempts",
                    burn_threshold=1.0),
            for_windows=1, clear_windows=2,
        ),
        # Windowed availability of the same channel.
        AlertRule(
            SloSpec("read-availability", "availability", "retry.retries",
                    objective=0.5, total_metric="retry.attempts"),
            for_windows=1, clear_windows=2,
        ),
    )


def _run_telemetry_fault_window(seed: int, telemetry) -> None:
    """Extra telemetry-only replay: a windowed fault burst + repair.

    This scenario exists purely for the time axis — its results feed
    the telemetry stream, never the experiment rows (the committed
    ``BENCH_seed.json`` statistics must stay byte-identical).  Media
    errors are armed only inside :data:`_TELEMETRY_FAULT_WINDOW`, so
    the series shows clean windows, a degraded burst with a firing
    alert, and recovery after the window closes.
    """
    start, end = _TELEMETRY_FAULT_WINDOW
    header, records = generate_dmine(dataset_size=8 * MiB, passes=1)
    cfg = ReplayConfig(
        warmup=False, file_size=32 * MiB,
        fault_plan=FaultPlan(seed=seed, specs=(
            FaultSpec(kind="disk.media_error", target="local-disk",
                      probability=0.6, start=start, end=end),
        )),
        retry=RetryPolicy(max_attempts=5),
        telemetry=telemetry,
        telemetry_labels=(("scenario", "fault-window"),),
        telemetry_rules=_fault_window_rules(),
        telemetry_interval=_TELEMETRY_INTERVAL,
    )
    TraceReplayer(cfg).replay(header, records, "faults-fault-window")


def run_ext_faults(seed: int = 11,
                   telemetry: Optional[object] = None) -> ExperimentResult:
    """Faulted trace replay: transient faults vs. retry resilience.

    ``telemetry`` (a :class:`repro.obs.Telemetry` hub) additionally
    samples every scenario into windowed series and runs one extra
    telemetry-only scenario with a mid-run fault burst (see
    :func:`_run_telemetry_fault_window`); the experiment rows are
    byte-identical either way.
    """
    scenarios = (
        ("fault-free", None),
        ("media-errors+retry", FaultPlan(seed=seed, specs=(
            FaultSpec(kind="disk.media_error", target="local-disk",
                      probability=0.03),
        ))),
        ("slow-disk+retry", FaultPlan(seed=seed, specs=(
            FaultSpec(kind="disk.slow", target="local-disk",
                      probability=0.25, slow_factor=6.0),
        ))),
    )
    policy = RetryPolicy(max_attempts=5)
    rows = []
    for name, plan in scenarios:
        header, records = generate_dmine(dataset_size=8 * MiB, passes=1)
        cfg = ReplayConfig(
            warmup=False, file_size=32 * MiB,
            fault_plan=plan, retry=policy if plan is not None else None,
            telemetry=telemetry,
            telemetry_labels=(("scenario", name),),
        )
        result = TraceReplayer(cfg).replay(header, records, f"faults-{name}")
        rows.append(
            (
                name,
                result.faults_injected,
                result.retries,
                result.retries_exhausted,
                round(result.timings.mean_ms(IOOp.READ), 4),
                round(result.total_time, 4),
            )
        )
    notes = [
        "transient media errors are absorbed entirely by the retry "
        "policy (zero exhausted budgets): the workload completes with "
        "per-read latency inflated only on the faulted reads",
        "a slowed disk injects no errors, so retries stay at zero and "
        "the cost appears purely as elongated service times",
    ]
    if telemetry is not None:
        _run_telemetry_fault_window(seed, telemetry)
    return ExperimentResult(
        exp_id="ext_faults",
        title="Extension: trace replay under deterministic fault injection",
        columns=("scenario", "faults_injected", "retries",
                 "retries_exhausted", "mean_read_ms", "total_time_s"),
        rows=rows,
        notes=notes,
    )


def run_ext_degraded(nreads: int = 120, seed: int = 23,
                     telemetry: Optional[object] = None) -> ExperimentResult:
    """Mirrored-array reads: healthy, degraded, and rebuilt.

    With a ``telemetry`` hub, each scenario's engine is sampled into
    windowed series labeled ``scenario=`` — the degraded-read and
    failover counters become visible as trajectories.
    """
    import numpy as np

    geo = DiskGeometry(cylinders=2000, heads=2, sectors_per_track=40)
    scenarios = (
        ("healthy", None, False),
        # m1 fails at t=0 and stays down: every read it would have
        # served fails over to m0.
        ("degraded", FaultPlan(seed=seed, specs=(
            FaultSpec(kind="disk.fail", target="m1"),
        )), False),
        # m1 fails and is swapped at t=5; after the workload the array
        # rebuilds the replacement from the surviving mirror.
        ("rebuilt", FaultPlan(seed=seed, specs=(
            FaultSpec(kind="disk.fail", target="m1", end=5.0),
        )), True),
    )
    rows = []
    for name, plan, do_rebuild in scenarios:
        engine = Engine()
        injector = None
        if plan is not None:
            from repro.faults import FaultInjector

            injector = FaultInjector(engine, plan)
        disks = [
            Disk(engine, geometry=geo, name=f"m{i}", injector=injector)
            for i in range(2)
        ]
        array = MirroredArray(engine, disks)
        rng = np.random.default_rng(seed)
        lbas = [int(x) for x in
                rng.integers(0, array.total_blocks - 8, size=nreads)]

        read_phase_end = [0.0]

        def workload():
            for lba in lbas:
                yield array.submit_range(lba, 8)
            read_phase_end[0] = engine.now
            if do_rebuild:
                # Wait out the drive swap (the fault window ends at
                # t=5), then resilver the replacement.
                yield engine.timeout(max(0.0, 6.0 - engine.now))
                copied = yield from array.rebuild(1)
                return copied
            return 0

        sampler = None
        if telemetry is not None:
            sampler = telemetry.attach(engine, scenario=name)
        copied = engine.run_process(workload())
        if sampler is not None:
            sampler.finish()
        rows.append(
            (
                name,
                nreads,
                array.degraded_reads.value,
                array.failovers.value,
                round(to_ms(read_phase_end[0] / nreads), 3),
                copied,
                sorted(array.in_sync_members()),
            )
        )
    notes = [
        "with one mirror down the array keeps serving every read from "
        "the survivor — availability costs the loss of arm parallelism, "
        "visible as a higher per-read time",
        "after the drive swap, rebuild copies the full extent from the "
        "surviving mirror and returns the array to two in-sync members",
    ]
    return ExperimentResult(
        exp_id="ext_degraded",
        title="Extension: mirrored array under whole-disk failure",
        columns=("scenario", "reads", "degraded_reads", "failovers",
                 "mean_read_ms", "rebuild_blocks", "in_sync"),
        rows=rows,
        notes=notes,
    )

"""The ``ext_scale`` macro experiment: the paper's workloads at 10×+.

The ROADMAP's north star is serving workloads far beyond the paper's
scale; this experiment is the harness's proof (and its wall-clock
canary).  Three phases:

* a Dmine replay over a dataset 10× the ``ext_prefetch``
  configuration, scanned twice — the second pass runs hot and
  exercises the buffer cache's sequential-hit fast path;
* a multi-thousand-request web-server run with concurrent closed-loop
  clients — every request dispatches through the CIL handler methods;
* the ``ext_cil`` microbenchmark kernels at 300×+ their usual
  iteration count — millions of CIL instructions, so wall time here
  is dominated by the execution engine itself and the JIT's
  template-compiled tier carries the run.

Simulated results are deterministic (seeded workload, virtual clock);
the experiment's *wall* time is what ``--jobs``/``wall_clock``
baselines track.
"""

from __future__ import annotations

from repro.bench.report import ExperimentResult
from repro.traces import IOOp, ReplayConfig, TraceReplayer, generate_dmine
from repro.units import MiB
from repro.webserver import HostConfig, WebServerHost
from repro.webserver.workload import WorkloadConfig, WorkloadGenerator

__all__ = ["run_ext_scale"]

#: Loop kernels from :mod:`repro.cli.microbench` run in phase 3 (the
#: ``call``/``alloc`` kernels are event-bound, not execution-bound, so
#: they stay at ``ext_cil`` scale).
_SCALE_KERNELS = ("arith", "branch")


def run_ext_scale(
    scale: int = 10,
    web_clients: int = 8,
    web_requests: int = 4000,
    kernel_n: int = 100_000,
) -> ExperimentResult:
    """Run the macro phases; rows are one-per-phase summaries."""
    from repro.cli.microbench import run_kernel

    rows = []

    # Phase 1: Dmine replay at ``scale``× the ext_prefetch dataset,
    # two passes so the second runs entirely from cache.
    header, records = generate_dmine(
        dataset_size=scale * 16 * MiB, passes=2, compute_gap=1e-4,
    )
    cfg = ReplayConfig(
        warmup=False, prefetch_policy="adaptive", prefetch_window=32,
        file_size=scale * 64 * MiB,
    )
    replay = TraceReplayer(cfg).replay(header, records, f"dmine-x{scale}")
    rows.append(
        (
            f"dmine_replay_x{scale}",
            len(records),
            replay.instructions,
            round(replay.timings.mean_ms(IOOp.READ), 4),
            round(replay.total_time, 4),
        )
    )

    # Phase 2: closed-loop web serving, thousands of requests across
    # concurrent clients (mostly-GET mix over the paper's image files).
    per_client, remainder = divmod(web_requests, web_clients)
    if remainder:
        raise ValueError(
            f"web_requests ({web_requests}) must divide evenly across "
            f"web_clients ({web_clients})"
        )
    host = WebServerHost(HostConfig())
    workload = WorkloadGenerator(
        host,
        WorkloadConfig(
            num_clients=web_clients,
            requests_per_client=per_client,
            get_fraction=0.9,
            mean_think_time=1e-3,
            seed=11,
        ),
    )
    outcome = workload.run()
    rows.append(
        (
            f"webserver_{web_requests}req",
            outcome.count,
            host.runtime.interpreter.instructions_executed.value,
            round(outcome.mean_latency_ms, 4),
            round(outcome.duration, 4),
        )
    )
    if outcome.error_count:
        raise AssertionError(
            f"ext_scale webserver phase saw {outcome.error_count} errors"
        )

    # Phase 3: the paper's CIL loop kernels at 300×+ the ext_cil
    # iteration count (n=300 there).  Each run_kernel call executes the
    # kernel twice (cold, then warm), so the phase retires millions of
    # CIL instructions — the execution engine IS the workload.
    instructions = 0
    sim_time = 0.0
    warm_times = []
    for kernel in _SCALE_KERNELS:
        result = run_kernel(kernel, n=kernel_n)
        if not result.correct:
            raise AssertionError(
                f"ext_scale kernel {kernel!r} returned {result.result}, "
                f"expected {result.expected}"
            )
        instructions += result.instructions
        sim_time += result.first_call_time + result.warm_call_time
        warm_times.append(result.warm_call_time)
    rows.append(
        (
            f"cil_kernels_n{kernel_n}",
            2 * len(_SCALE_KERNELS),
            instructions,
            round(1e3 * sum(warm_times) / len(warm_times), 4),
            round(sim_time, 4),
        )
    )
    notes = [
        f"Dmine at {scale}x the ext_prefetch dataset: pass 2 runs hot, "
        "so the cache's sequential-hit fast path carries half the records",
        f"{web_requests} requests from {web_clients} concurrent clients all "
        "execute CIL handler methods",
        f"{'/'.join(_SCALE_KERNELS)} kernels at n={kernel_n} retire "
        f"{instructions} CIL instructions — the JIT's compiled tier "
        "dominates the wall-time profile",
        "simulated metrics are deterministic; wall time for this experiment "
        "is tracked in the baseline's informational wall_clock section",
    ]
    return ExperimentResult(
        exp_id="ext_scale",
        title="Extension: macro workloads at 10-300x scale (wall-clock canary)",
        columns=("phase", "operations", "instructions", "mean_latency_ms",
                 "sim_time_s"),
        rows=rows,
        notes=notes,
    )

"""Extension experiments beyond the paper (DESIGN.md §6).

* ``ext_prefetch``  — prefetch-policy ablation on the Dmine scan.
* ``ext_scheduler`` — disk-arm scheduler ablation on a random backlog.
* ``ext_vm``        — the Table 6 experiment across CLI implementations
  (the paper's §5 future work).
* ``ext_comm``      — a communication-intensive application in the
  behavioral model (the paper's Figure 1 example), exercising γ.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import ExperimentResult
from repro.cli.profiles import VM_PROFILES
from repro.model import (
    Application,
    ApplicationExecutor,
    MachineConfig,
    Program,
    WorkingSet,
)
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry, IORequest, SCHEDULERS
from repro.traces import IOOp, ReplayConfig, TraceReplayer, generate_dmine  # noqa: F401
from repro.units import MiB, to_ms
from repro.webserver import HostConfig, WebServerHost

__all__ = [
    "run_ext_prefetch",
    "run_ext_scheduler",
    "run_ext_vm",
    "run_ext_comm",
    "run_ext_cil",
    "run_ext_dist",
    "run_ext_eviction",
    "run_ext_pgrep",
]


def run_ext_prefetch() -> ExperimentResult:
    """Prefetch-policy ablation: cold Dmine scan with compute gaps."""
    rows = []
    for policy in ("none", "fixed", "adaptive"):
        header, records = generate_dmine(
            dataset_size=16 * MiB, passes=1, compute_gap=3e-3
        )
        cfg = ReplayConfig(
            warmup=False, prefetch_policy=policy, prefetch_window=32,
            file_size=64 * MiB,
        )
        result = TraceReplayer(cfg).replay(header, records, f"dmine-{policy}")
        rows.append(
            (
                policy,
                result.cache_misses,
                round(result.timings.mean_ms(IOOp.READ), 4),
                round(result.total_time, 4),
            )
        )
    notes = [
        "adaptive read-ahead overlaps I/O with the mining computation, "
        "removing nearly all cold misses (the §3.4 prefetch mechanism)",
    ]
    return ExperimentResult(
        exp_id="ext_prefetch",
        title="Ablation: prefetch policy on the Dmine sequential scan",
        columns=("policy", "cold_misses", "mean_read_ms", "total_time_s"),
        rows=rows,
        notes=notes,
    )


def run_ext_scheduler(nrequests: int = 200, seed: int = 7) -> ExperimentResult:
    """Disk-scheduler ablation: drain a deep random backlog."""
    geo = DiskGeometry(cylinders=20_000, heads=4, sectors_per_track=200)
    rng = np.random.default_rng(seed)
    lbas = [int(x) for x in rng.integers(0, geo.total_blocks - 8, size=nrequests)]
    rows = []
    for name in sorted(SCHEDULERS):
        engine = Engine()
        disk = Disk(engine, geometry=geo, scheduler=name)
        events = [disk.submit(IORequest(lba=lba, nblocks=8)) for lba in lbas]

        def waiter():
            yield engine.all_of(events)

        engine.run_process(waiter())
        rows.append(
            (
                name,
                round(engine.now, 4),
                round(to_ms(disk.service_times.mean), 3),
                round(to_ms(disk.response_times.percentile(95)), 1),
            )
        )
    notes = [
        "position-aware policies (SSTF/SCAN/C-SCAN/C-LOOK) drain a deep "
        "random backlog ~2.3x faster than FCFS — with the whole backlog "
        "visible up front they all converge to near-sorted sweeps",
    ]
    return ExperimentResult(
        exp_id="ext_scheduler",
        title="Ablation: disk-arm scheduler draining a 200-request random backlog",
        columns=("scheduler", "drain_time_s", "mean_service_ms", "p95_response_ms"),
        rows=rows,
        notes=notes,
    )


def run_ext_vm(trials: int = 6) -> ExperimentResult:
    """Table 6 across CLI implementations (paper §5 future work)."""
    rows = []
    for name, profile in VM_PROFILES.items():
        host = WebServerHost(HostConfig(vm_profile=name))
        host.run_request_sequence([("GET", "/images/photo3.jpg")] * trials)
        responses = [r.response_ms for r in host.metrics.gets()]
        rows.append(
            (
                name,
                round(responses[0], 4),
                round(sum(responses[1:]) / (trials - 1), 4),
                round(responses[0] / (sum(responses[1:]) / (trials - 1)), 2),
            )
        )
    notes = [
        "the optimizing JIT pays the largest first-request penalty but has "
        "the fastest steady state; the pure interpreter has no compile "
        "delay yet still shows warm-up (cold I/O buffers)",
    ]
    return ExperimentResult(
        exp_id="ext_vm",
        title="Extension: repeated-read warm-up across CLI implementations",
        columns=("vm_profile", "first_response_ms", "warm_response_ms", "warmup_ratio"),
        rows=rows,
        notes=notes,
    )


def run_ext_pgrep() -> ExperimentResult:
    """The fifth traced application: parallel text search (Pgrep).

    The paper lists Pgrep among its five applications but prints no
    table for it; with the concurrent replayer we can complete the
    set — per-op times plus the sequential-vs-concurrent replay
    comparison its multi-process trace enables.
    """
    from repro.traces import generate_pgrep
    from repro.units import MiB

    header, records = generate_pgrep(file_size=32 * MiB, num_processes=4)
    rows = []
    results = {}
    setups = (
        ("sequential-fcfs", False, "fcfs"),
        ("concurrent-fcfs", True, "fcfs"),
        ("concurrent-sstf", True, "sstf"),
    )
    for mode, concurrent, scheduler in setups:
        cfg = ReplayConfig(
            warmup=False, concurrent=concurrent, scheduler=scheduler,
            file_size=64 * MiB,
        )
        result = TraceReplayer(cfg).replay(header, records, f"pgrep-{mode}")
        results[mode] = result
        rows.append(
            (
                mode,
                result.streams,
                round(result.timings.mean_ms(IOOp.READ), 4),
                round(result.timings.mean_ms(IOOp.OPEN), 5),
                round(result.timings.mean_ms(IOOp.CLOSE), 5),
                round(result.total_time, 4),
            )
        )
    inflation = (
        results["concurrent-fcfs"].timings.mean_ms(IOOp.READ)
        / results["sequential-fcfs"].timings.mean_ms(IOOp.READ)
    )
    sched_response_gain = (
        results["concurrent-fcfs"].timings.mean_ms(IOOp.READ)
        / results["concurrent-sstf"].timings.mean_ms(IOOp.READ)
    )
    notes = [
        "close > open in every mode (the paper's universal observation "
        "extends to its fifth application)",
        "the disk is the bottleneck either way: concurrent replay matches "
        f"sequential throughput while per-read response inflates {inflation:.1f}x "
        "from queueing — the classic open- vs closed-loop distinction",
        f"a position-aware arm scheduler trims {(sched_response_gain - 1) * 100:.0f}% "
        "off the concurrent per-read response (throughput stays work-bound "
        "with only four outstanding requests)",
    ]
    return ExperimentResult(
        exp_id="ext_pgrep",
        title="Extension: the Pgrep application (per-op times, replay modes)",
        columns=("mode", "streams", "read_ms", "open_ms", "close_ms", "total_s"),
        rows=rows,
        notes=notes,
    )


def run_ext_eviction(rounds: int = 40) -> ExperimentResult:
    """Cache eviction-policy ablation: a hot/cold working set.

    Four hot pages are touched every round with a cold stream of fresh
    pages interleaved — the access mix where recency-aware policies
    earn their keep.
    """
    from repro.io import CacheParams, FileSystem
    from repro.io.eviction import EVICTION_POLICIES
    from repro.io.prefetch import NoPrefetch

    rows = []
    for eviction in sorted(EVICTION_POLICIES):
        engine = Engine()
        disk = Disk(
            engine,
            geometry=DiskGeometry(cylinders=2000, heads=2, sectors_per_track=40),
        )
        fs = FileSystem(
            engine,
            disk,
            cache_params=CacheParams(capacity_pages=8, eviction=eviction),
            prefetch_policy=NoPrefetch(),
        )
        engine.run_process(fs.create("/hotcold", size_bytes=4096 * 4096))
        ino = fs.stat("/hotcold")

        def workload():
            cold = 8
            for _round in range(rounds):
                for hot in range(4):
                    yield from fs.cache.access(ino, hot, 1)
                for _ in range(3):
                    yield from fs.cache.access(ino, cold, 1)
                    cold += 1

        engine.run_process(workload())
        stats = fs.cache.stats
        rows.append(
            (
                eviction,
                round(stats.hit_ratio, 4),
                stats.misses,
                stats.evictions,
            )
        )
    notes = [
        "LRU protects the hot set; CLOCK approximates it with reference "
        "bits; FIFO evicts hot pages regardless of reuse",
    ]
    return ExperimentResult(
        exp_id="ext_eviction",
        title="Ablation: cache eviction policy on a hot/cold working set",
        columns=("policy", "hit_ratio", "misses", "evictions"),
        rows=rows,
        notes=notes,
    )


def run_ext_dist() -> ExperimentResult:
    """Distributed environments (paper §5 future work): a
    communication-intensive application on different interconnects."""
    from repro.model import (
        CLUSTER_LINK,
        WAN_LINK,
        distributed_machine,
    )

    app = Application(
        "comm-app",
        [
            Program(f"p{i}", [WorkingSet(0.1, 0.7, 0.25, 4)], 2.0)
            for i in range(4)
        ],
    )
    setups = [
        ("shared-switch", MachineConfig()),
        ("ring-lan", distributed_machine(pattern="ring", link=CLUSTER_LINK)),
        ("all-to-all-lan", distributed_machine(pattern="all", link=CLUSTER_LINK)),
        ("master-lan", distributed_machine(pattern="master", link=CLUSTER_LINK)),
        ("ring-wan", distributed_machine(pattern="ring", link=WAN_LINK)),
    ]
    rows = []
    for name, machine in setups:
        result = ApplicationExecutor(app, machine).run()
        comm = sum(p.comm_busy for p in result.programs.values())
        rows.append((name, round(result.makespan, 4), round(comm, 4)))
    notes = [
        "dedicated point-to-point links let concurrent bursts overlap "
        "(faster than the shared switch); WAN latency dominates a widely "
        "distributed deployment — the §5 future-work comparison",
    ]
    return ExperimentResult(
        exp_id="ext_dist",
        title="Extension: communication fabrics for distributed execution",
        columns=("fabric", "makespan_s", "total_comm_busy_s"),
        rows=rows,
        notes=notes,
    )


def run_ext_cil(n: int = 300) -> ExperimentResult:
    """CIL microbenchmark kernels across VM profiles: the execution
    engine characterized independently of I/O."""
    from repro.cli.microbench import run_suite

    results = run_suite(n=n)
    rows = []
    for r in results:
        rows.append(
            (
                r.profile,
                r.kernel,
                round(to_ms(r.first_call_time), 4),
                round(to_ms(r.warm_call_time), 4),
                round(r.warmup_ratio, 2),
                r.gc_collections,
            )
        )
    assert all(r.correct for r in results)
    notes = [
        "every kernel's CIL result matches a pure-Python oracle",
        "the optimizing-JIT profile pays the largest first-call cost and "
        "has the fastest warm calls; the interpreter shows no JIT warm-up",
        "the alloc kernel triggers gen-0 collections (pause model exercised)",
    ]
    return ExperimentResult(
        exp_id="ext_cil",
        title=f"Extension: CIL microbenchmarks (n={n}) across VM profiles",
        columns=(
            "vm_profile",
            "kernel",
            "first_call_ms",
            "warm_call_ms",
            "warmup_ratio",
            "gc_collections",
        ),
        rows=rows,
        notes=notes,
    )


def run_ext_comm() -> ExperimentResult:
    """Communication-intensive application: the paper's Figure 1
    example program Γ = [(0.52,0.29,0.287,1), (0,0.85,0.185,2),
    (0,0.57,0.194,1), (0.81,0,0.148,1)] executed on the machine."""
    program = Program(
        "fig1-example",
        [
            WorkingSet(0.52, 0.29, 0.287, 1),
            WorkingSet(0.00, 0.85, 0.185, 2),
            WorkingSet(0.00, 0.57, 0.194, 1),
            WorkingSet(0.81, 0.00, 0.148, 1),
        ],
        total_time=60.0,
    )
    app = Application("fig1-app", [program])
    result = ApplicationExecutor(app, MachineConfig()).run()
    pr = result.programs["fig1-example"]
    rows = [
        ("model", round(program.cpu_requirement, 2),
         round(program.disk_requirement, 2), round(program.comm_requirement, 2)),
        ("measured", round(pr.cpu_busy, 2), round(pr.io_busy, 2),
         round(pr.comm_busy, 2)),
    ]
    notes = [
        "the communication fraction γ (the paper's extension over Rosti "
        "et al.) is exercised over a shared interconnect channel; "
        "measured burst times track the model's Eqs. 3-5 requirements",
    ]
    return ExperimentResult(
        exp_id="ext_comm",
        title="Extension: communication-intensive program (paper Figure 1 example)",
        columns=("source", "cpu_s", "io_s", "comm_s"),
        rows=rows,
        notes=notes,
    )

"""Figures 2 and 3: QCRD execution-time decomposition.

Figure 2 "plots the execution times of computation and disk I/O for
the QCRD application as well as its two independent programs"; Figure
3 is the same data as percentages.  Each program is measured on its
own (uncontended) node — the configuration in which the paper reports
<10% error against the real implementation — and the application bars
are the per-program sums.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.report import ExperimentResult
from repro.model import (
    Application,
    ApplicationExecutor,
    MachineConfig,
    build_qcrd,
)

__all__ = ["run_fig2", "run_fig3", "measure_qcrd_decomposition"]


def measure_qcrd_decomposition(machine: Optional[MachineConfig] = None):
    """Per-program solo runs; returns {name: (cpu_s, io_s)} plus the
    application aggregate under the key "Application"."""
    app = build_qcrd()
    machine = machine or MachineConfig()
    out = {}
    total_cpu = total_io = 0.0
    for program in app.programs:
        solo = ApplicationExecutor(
            Application(f"{program.name}-solo", [program]), machine
        ).run()
        pr = solo.programs[program.name]
        out[program.name] = (pr.cpu_busy, pr.io_busy)
        total_cpu += pr.cpu_busy
        total_io += pr.io_busy
    out["Application"] = (total_cpu, total_io)
    return out, app


def run_fig2(machine: Optional[MachineConfig] = None) -> ExperimentResult:
    """Figure 2: absolute CPU and disk-I/O execution times (seconds)."""
    measured, app = measure_qcrd_decomposition(machine)
    rows = []
    for name in ("Application", "Program1", "Program2"):
        cpu, io = measured[name]
        if name == "Application":
            model_cpu, model_io = app.cpu_requirement, app.disk_requirement
        else:
            prog = app.program(name)
            model_cpu, model_io = prog.cpu_requirement, prog.disk_requirement
        err = 100.0 * abs((cpu + io) - (model_cpu + model_io)) / (model_cpu + model_io)
        rows.append((name, round(cpu, 2), round(io, 2), round(err, 2)))
    notes = [
        "shape: Program2's I/O time exceeds its CPU time; Program1 is CPU-dominated",
        "paper reports <10% error between simulation and the real QCRD; "
        f"our max model-vs-measured error is {max(r[3] for r in rows):.2f}%",
    ]
    return ExperimentResult(
        exp_id="fig2",
        title="Execution time of computation and disk I/O for QCRD (seconds)",
        columns=("component", "cpu_s", "io_s", "model_error_pct"),
        rows=rows,
        notes=notes,
    )


def run_fig3(machine: Optional[MachineConfig] = None) -> ExperimentResult:
    """Figure 3: percentage of execution time (CPU vs disk I/O)."""
    measured, _app = measure_qcrd_decomposition(machine)
    rows = []
    for name in ("Application", "Program1", "Program2"):
        cpu, io = measured[name]
        total = cpu + io
        rows.append(
            (name, round(100.0 * cpu / total, 1), round(100.0 * io / total, 1))
        )
    notes = [
        "shape: the application spends a noticeably large share on I/O; "
        "Program2's I/O share is far higher than Program1's",
    ]
    return ExperimentResult(
        exp_id="fig3",
        title="Percentage of execution time: computation vs disk I/O",
        columns=("component", "cpu_pct", "io_pct"),
        rows=rows,
        notes=notes,
    )

"""Experiment result container and plain-text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.errors import BenchmarkError

__all__ = ["ExperimentResult", "render_table", "render_report", "render_series"]


@dataclass
class ExperimentResult:
    """Measured output of one experiment.

    ``rows`` are tuples matching ``columns``; ``notes`` records shape
    findings and paper-comparison commentary.
    """

    exp_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]]
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise BenchmarkError(
                    f"{self.exp_id}: row {row!r} does not match columns "
                    f"{list(self.columns)!r}"
                )

    def column(self, name: str) -> List[Any]:
        """All values of one column, by name."""
        try:
            idx = list(self.columns).index(name)
        except ValueError:
            raise BenchmarkError(f"{self.exp_id}: no column {name!r}") from None
        return [row[idx] for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            exp_id=data["exp_id"],
            title=data["title"],
            columns=tuple(data["columns"]),
            rows=[tuple(row) for row in data["rows"]],
            notes=list(data.get("notes", [])),
        )

    def render(self) -> str:
        return render_table(self)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Monospace table with a title banner and notes."""
    header = [str(c) for c in result.columns]
    body = [[_fmt(v) for v in row] for row in result.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        f"== {result.exp_id}: {result.title} ==",
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        sep,
    ]
    for row in body:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_series(
    xs: Sequence[float], ys: Sequence[float], width: int = 40, label: str = ""
) -> str:
    """Tiny ASCII bar plot (used for the figure experiments)."""
    if len(xs) != len(ys) or not xs:
        raise BenchmarkError("series needs equal-length non-empty xs/ys")
    peak = max(ys)
    scale = (width / peak) if peak > 0 else 0.0
    lines = [f"-- {label} --"] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(y * scale)) if y > 0 else ""
        lines.append(f"{_fmt(x):>8s} | {bar} {_fmt(y)}")
    return "\n".join(lines)


def render_report(results: Sequence[ExperimentResult]) -> str:
    """Concatenated report for all experiments."""
    return "\n\n".join(render_table(r) for r in results)

"""Cross-process experiment execution for ``python -m repro.bench --jobs N``.

Every experiment builds its own :class:`~repro.sim.Engine` from scratch
and shares no state with its siblings, so the suite is embarrassingly
parallel.  Workers return each result as its ``to_dict()`` form plus
the wall seconds spent; the parent reconstructs
:class:`~repro.bench.report.ExperimentResult` objects and reorders them
to match the requested sequence, so rendered reports, JSON dumps, and
baseline snapshots are byte-identical to a serial run (simulated
metrics are deterministic; only ``wall_seconds`` varies run to run).

``--profile DIR`` works in both modes: each experiment runs under
:mod:`cProfile` and dumps ``DIR/<exp_id>.pstats`` for
``python -m pstats`` / ``snakeviz``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

from repro.bench.report import ExperimentResult
from repro.errors import BenchmarkError

__all__ = ["run_one", "run_experiments_parallel"]


def run_one(
    exp_id: str, profile_dir: Optional[str] = None
) -> Tuple[str, dict, float]:
    """Run one experiment (optionally under cProfile); returns
    ``(exp_id, result.to_dict(), wall_seconds)``.

    Module-level so it pickles for ProcessPoolExecutor.  The experiment
    registry import stays inside the function: workers pay it once,
    and the parent does not need the registry loaded to schedule.
    """
    from repro.bench.experiments import run_experiment

    profiler = None
    if profile_dir is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    t0 = time.perf_counter()  # det: allow - wall-time measurement is the point
    try:
        result = run_experiment(exp_id)
    finally:
        if profiler is not None:
            profiler.disable()
    elapsed = time.perf_counter() - t0  # det: allow - wall-time measurement
    if profiler is not None:
        os.makedirs(profile_dir, exist_ok=True)
        profiler.dump_stats(os.path.join(profile_dir, f"{exp_id}.pstats"))
    return exp_id, result.to_dict(), elapsed


def run_experiments_parallel(
    exp_ids: List[str],
    jobs: int,
    profile_dir: Optional[str] = None,
) -> List[Tuple[ExperimentResult, float]]:
    """Run ``exp_ids`` across ``jobs`` worker processes.

    Returns ``(result, wall_seconds)`` pairs in the order of
    ``exp_ids`` — results stream back in completion order but are
    reassembled, so downstream output matches a serial run exactly.
    """
    if jobs < 1:
        raise BenchmarkError(f"--jobs must be >= 1, got {jobs}")
    out: List[Tuple[ExperimentResult, float]] = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(exp_ids)) or 1) as pool:
        futures = [pool.submit(run_one, exp_id, profile_dir)
                   for exp_id in exp_ids]
        # The futures list is in request order; result() blocks per
        # future, so completion order never leaks into the output.
        for future in futures:
            _exp_id, payload, elapsed = future.result()
            out.append((ExperimentResult.from_dict(payload), elapsed))
    return out

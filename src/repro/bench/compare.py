"""Regression comparison of experiment-result dumps.

A benchmark repository needs to answer "did this change move the
numbers?".  ``compare_results`` diffs two JSON dumps produced by
``python -m repro.bench --json`` and reports per-cell drift beyond a
tolerance::

    python -m repro.bench --json before.json
    ... change something ...
    python -m repro.bench --json after.json
    python -m repro.bench.compare before.json after.json --tolerance 0.05
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.bench.report import ExperimentResult
from repro.errors import BenchmarkError

__all__ = ["Drift", "compare_results", "load_dump", "main"]


@dataclass(frozen=True)
class Drift:
    """One numeric cell that moved beyond tolerance."""

    exp_id: str
    row_key: Any
    column: str
    before: float
    after: float

    @property
    def relative(self) -> float:
        base = max(abs(self.before), 1e-12)
        return (self.after - self.before) / base

    def render(self) -> str:
        return (
            f"{self.exp_id}[{self.row_key}].{self.column}: "
            f"{self.before:g} -> {self.after:g} ({self.relative:+.1%})"
        )


def load_dump(path: str) -> Dict[str, ExperimentResult]:
    """Load a ``--json`` dump into {exp_id: ExperimentResult}."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise BenchmarkError(f"{path}: expected a list of experiment dumps")
    out = {}
    for entry in data:
        result = ExperimentResult.from_dict(entry)
        out[result.exp_id] = result
    return out


def compare_results(
    before: Dict[str, ExperimentResult],
    after: Dict[str, ExperimentResult],
    tolerance: float = 0.05,
) -> List[Drift]:
    """Numeric cells differing by more than ``tolerance`` (relative).

    Rows are keyed by their first column (request number, component
    name, resource count...); experiments or rows present on only one
    side are reported as structural drifts with NaN placeholders.
    """
    if tolerance < 0:
        raise BenchmarkError(f"tolerance must be >= 0, got {tolerance}")
    drifts: List[Drift] = []
    for exp_id in sorted(set(before) | set(after)):
        a = before.get(exp_id)
        b = after.get(exp_id)
        if a is None or b is None:
            drifts.append(
                Drift(exp_id, "*", "<presence>", float(a is not None), float(b is not None))
            )
            continue
        a_rows = {row[0]: row for row in a.rows}
        b_rows = {row[0]: row for row in b.rows}
        for key in sorted(set(a_rows) | set(b_rows), key=str):
            ra = a_rows.get(key)
            rb = b_rows.get(key)
            if ra is None or rb is None:
                drifts.append(
                    Drift(exp_id, key, "<row>", float(ra is not None), float(rb is not None))
                )
                continue
            for idx, column in enumerate(a.columns):
                if idx == 0 or idx >= len(rb):
                    continue
                va, vb = ra[idx], rb[idx]
                if not (isinstance(va, (int, float)) and isinstance(vb, (int, float))):
                    continue
                if va is None or vb is None:
                    continue
                base = max(abs(va), 1e-12)
                if abs(vb - va) / base > tolerance:
                    drifts.append(Drift(exp_id, key, str(column), float(va), float(vb)))
    return drifts


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: exit 0 if no drift, 1 otherwise."""
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.bench.compare")
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="relative drift threshold (default 0.05)")
    args = parser.parse_args(argv)
    drifts = compare_results(
        load_dump(args.before), load_dump(args.after), tolerance=args.tolerance
    )
    if not drifts:
        print(f"no drift beyond {args.tolerance:.0%}")
        return 0
    print(f"{len(drifts)} drift(s) beyond {args.tolerance:.0%}:")
    for drift in drifts:
        print(f"  {drift.render()}")
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Benchmark harness: regenerates every table and figure in the paper.

Each experiment module exposes ``run(...) -> ExperimentResult``; the
result carries the measured rows, the paper's published values for
side-by-side comparison, and shape checks.  ``python -m repro.bench``
runs everything and prints the report (the content of EXPERIMENTS.md).

Experiment index (see DESIGN.md §4):

========  ==================================================
fig2      QCRD CPU/IO execution times (app + both programs)
fig3      QCRD CPU/IO percentage breakdown
fig4      speedup vs number of disks
fig5      speedup vs number of CPUs
tab1      Dmine trace replay per-op times
tab2      Titan trace replay per-op times
tab3      LU trace replay per-request seek times
tab4      Cholesky trace replay per-request seek/read times
tab5      web server first-request read/write response times
tab6      repeated reads of one file (also Figure 6)
========  ==================================================
"""

from repro.bench.report import ExperimentResult, render_report, render_table
from repro.bench.experiments import ALL_EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentResult",
    "render_report",
    "render_table",
    "ALL_EXPERIMENTS",
    "run_experiment",
]

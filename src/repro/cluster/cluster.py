"""The cluster facade: topology, bootstrap, repair, and verification.

:class:`FileCluster` wires the whole distributed stack onto one
deterministic engine: N :class:`~repro.cluster.node.ClusterNode`\\ s
(each a full single-host storage/serving stack on a shared LAN), one
:class:`~repro.cluster.balancer.LoadBalancer`, one
:class:`~repro.cluster.replication.ReplicationLog`, and one shared
:class:`~repro.cluster.client.ClusterClient`.  Construction bootstraps
the namespace — every key's version-0 file is created on each of its R
ring-placed replicas — and only then starts health probing, so a
freshly built cluster is fully replicated and fully admitted.

The cluster also owns the *repair agent*.  When probes readmit a node
(it answers connections again after a crash or partition), the
balancer calls :meth:`_on_readmit`, which spawns a foreground rebuild
process: scan the replication log for shards the node owns whose
on-disk size disagrees with the last acknowledged write, fetch each
stale shard over HTTP from an in-sync peer (under the same per-key
write lock the coordinator uses, so repair never races a live
overwrite), and rewrite it locally.  Only when the backlog drains does
the node become ``in_sync`` — the ``node.up`` instant — and start
serving reads again.  Rebuild traffic is its own metric pair
(``cluster.rebuild.keys`` / ``cluster.rebuild.bytes``).

:meth:`verify_durability` checks the headline invariant: **no
acknowledged write is ever lost**.  For every key the log has acked,
every in-sync replica must hold at least the acked byte count, and at
least one live copy of the acked bytes must exist somewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ClusterError
from repro.faults import FaultInjector, FaultPlan, Retrier, RetryPolicy
from repro.io import Network
from repro.rng import SeededStreams
from repro.sim import Counter, Engine
from repro.webserver.client import HttpClient
from repro.webserver.server import WebServerConfig

from repro.cluster.balancer import BalancerConfig, LoadBalancer, POLICIES
from repro.cluster.client import ClusterClient
from repro.cluster.node import ClusterNode
from repro.cluster.replication import ReplicationLog, base_size

__all__ = ["ClusterConfig", "FileCluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Everything that defines a cluster run (pure data).

    Attributes
    ----------
    nodes, replication:
        N members and R copies per key (``1 <= R <= N``).
    policy:
        Read-routing policy (:data:`~repro.cluster.balancer.POLICIES`).
    architecture:
        Per-node server architecture (``thread``/``eventloop``).
    num_keys:
        Size of the sharded namespace (keys ``/k0000`` ...).
    port:
        Every node listens on this port at ``node-<i>:<port>``.
    seed:
        Root seed for all cluster-level randomness.
    retry:
        Client retry policy (defaults to 3 attempts, 5 ms base).
    write_rounds:
        Re-drive rounds for a replica that keeps failing writes while
        still admitted, before the write aborts unacknowledged.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; ``node.*`` specs
        arm against the members, ``disk.*``/``net.*`` specs against
        each node's disk and the shared LAN.
    tracer:
        Optional tracer config forwarded to the engine.
    """

    nodes: int = 3
    replication: int = 2
    policy: str = "round_robin"
    architecture: str = "thread"
    num_keys: int = 32
    port: int = 5050
    seed: int = 0
    vm_profile: str = "sscli"
    cache_pages: int = 4096
    virtual_nodes: int = 64
    probe_interval: float = 0.02
    eject_after: int = 3
    readmit_after: int = 2
    max_concurrency: Optional[int] = 64
    accept_backlog: Optional[int] = None
    request_deadline: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    write_rounds: int = 3
    fault_plan: Optional[FaultPlan] = None
    tracer: object = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ClusterError(f"nodes must be >= 1, got {self.nodes}")
        if not (1 <= self.replication <= self.nodes):
            raise ClusterError(
                f"replication {self.replication} out of range for "
                f"{self.nodes} node(s)")
        if self.policy not in POLICIES:
            raise ClusterError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}")
        if self.num_keys < 1:
            raise ClusterError(f"num_keys must be >= 1, got {self.num_keys}")
        if self.write_rounds < 1:
            raise ClusterError("write_rounds must be >= 1")


class FileCluster:
    """N replicated file-serving nodes behind one load balancer."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = cfg = config or ClusterConfig()
        self.engine = Engine(tracer=cfg.tracer)
        self.engine.tracer.name_process("cluster")
        self.injector = (FaultInjector(self.engine, cfg.fault_plan)
                         if cfg.fault_plan is not None else None)
        self.network = Network(self.engine, injector=self.injector)
        self.streams = SeededStreams(cfg.seed).fork("cluster")
        self.retrier = Retrier(
            self.engine,
            cfg.retry or RetryPolicy(max_attempts=3, base_delay=0.005),
            name="cluster.retry",
            category="cluster",
            rng=self.streams.get("client-retry-jitter"),
        )
        self.nodes: Dict[str, ClusterNode] = {}
        for i in range(cfg.nodes):
            name = f"node-{i}"
            server_config = WebServerConfig(
                host=name,
                port=cfg.port,
                docroot="/data",
                upload_dir="/data/uploads",
                seed=cfg.seed,
                keyed_writes=True,
                max_concurrency=cfg.max_concurrency,
                accept_backlog=cfg.accept_backlog,
                request_deadline=cfg.request_deadline,
            )
            self.nodes[name] = ClusterNode(
                self.engine, self.network, name, server_config,
                architecture=cfg.architecture,
                vm_profile=cfg.vm_profile,
                cache_pages=cfg.cache_pages,
                injector=self.injector,
            )
        self.keys: Tuple[str, ...] = tuple(
            f"/k{i:04d}" for i in range(cfg.num_keys))
        self.balancer = LoadBalancer(
            self.engine, self.network, list(self.nodes.values()),
            config=BalancerConfig(
                policy=cfg.policy,
                replication=cfg.replication,
                virtual_nodes=cfg.virtual_nodes,
                probe_interval=cfg.probe_interval,
                eject_after=cfg.eject_after,
                readmit_after=cfg.readmit_after,
            ),
            on_readmit=self._on_readmit,
        )
        self.log = ReplicationLog()
        # The commit instant is emitted from the log's own callback
        # with a *fresh* read of the admitted set — the sanitizer's
        # replicate-before-ack invariant checks acks against what was
        # admitted at the moment the log accepted the commit, not
        # against whatever set the writer happened to cache.
        self.log.on_commit = self._note_commit
        reg = self.engine.metrics
        self.requests = Counter("cluster.requests")
        self.degraded = Counter("cluster.degraded")
        self.aborted = Counter("cluster.aborted")
        self.failovers = Counter("cluster.failovers")
        self.rebuilt_keys = Counter("cluster.rebuild.keys")
        self.rebuilt_bytes = Counter("cluster.rebuild.bytes")
        for counter in (self.requests, self.degraded, self.aborted,
                        self.failovers, self.rebuilt_keys,
                        self.rebuilt_bytes):
            reg.register(counter.name, counter)
        self.cluster_client = ClusterClient(self)
        self.engine.run_process(self._setup())
        # Fault daemons arm only after bootstrap: registering them
        # earlier would let the setup run (which drains the event
        # queue) burn through the fault windows before any traffic.
        if self.injector is not None:
            for node in self.nodes.values():
                self.injector.register_node(node)
        # Probing starts only after every listener is up — a probe
        # round during bootstrap would eject perfectly healthy nodes.
        self.balancer.start()

    # -- bootstrap ---------------------------------------------------------

    def _setup(self):
        for node in self.nodes.values():
            yield from node.start()
        for key in self.keys:
            size = base_size(key)
            # The ring is fixed at construction: placement, unlike
            # health state, cannot change across the creates.
            replicas = self.balancer.replicas(key)  # sanitizer: allow
            for name in replicas:
                node = self.nodes[name]
                yield from node.fs.create(node.key_path(key),
                                          size_bytes=size)
            self.log.bootstrap(key, size, tuple(replicas),
                               now=self.engine.now)

    # -- data plane --------------------------------------------------------

    def client(self) -> ClusterClient:
        """The shared coordinator (all callers see one lock table)."""
        return self.cluster_client

    # -- protocol trace ----------------------------------------------------

    def _note_commit(self, key: str, version: int, size: int) -> None:
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(
                "cluster.commit", "cluster", key=key, version=version,
                size=size,
                admitted=",".join(self.balancer.write_targets(key)))

    # -- repair ------------------------------------------------------------

    def _on_readmit(self, name: str) -> None:
        node = self.nodes[name]
        self.engine.process(self._rebuild(node),
                            name=f"cluster.rebuild.{name}")

    def _rebuild(self, node: ClusterNode):
        """Foreground process: re-replicate ``node``'s stale shards,
        then mark it in sync (``node.up``)."""
        # The scan is deliberately a snapshot: every key it lists is
        # re-validated under its write lock before any bytes move.
        stale = [  # sanitizer: allow
            key for key in self.log.keys()
            if node.name in self.log.replicas_of(key)
            and node.stored_size(key) != self.log.expected_size(key)
        ]
        node.rebuild_progress = 0.0 if stale else 1.0
        moved = 0
        for i, key in enumerate(stale):
            lock = self.cluster_client.lock_for(key)
            grant = lock.acquire()
            yield grant
            try:
                # Re-check under the lock: a write that committed while
                # we queued may have refreshed this shard already.
                expected = self.log.expected_size(key)
                if node.stored_size(key) == expected:
                    continue
                sources = [
                    n for n in self.log.replicas_of(key)
                    if n != node.name and self.balancer.is_in_sync(n)
                ]
                if not sources:
                    # No trustworthy copy right now; a later readmit
                    # (or the next overwrite) repairs this shard.
                    continue
                src = sources[0]
                peer = self.nodes[src]
                fetch = HttpClient(self.network, host=peer.host,
                                   port=peer.port)
                result = yield from fetch.get(key)
                if result.status != 200:
                    continue
                yield from node.store_local(key, result.body_bytes)
                moved += 1
                self.rebuilt_keys.add()
                self.rebuilt_bytes.add(result.body_bytes)
                tracer = self.engine.tracer
                if tracer.enabled:
                    tracer.instant("rebalance.move", "cluster",
                                   node=node.name, key=key, src=src,
                                   bytes=result.body_bytes)
            finally:
                lock.release(grant)
                node.rebuild_progress = (i + 1) / len(stale)
        node.rebuild_progress = 1.0
        self.balancer.mark_in_sync(node.name)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("node.up", "cluster", node=node.name,
                           rebuilt_keys=moved,
                           scanned_keys=len(stale))

    # -- verification ------------------------------------------------------

    def verify_durability(self) -> dict:
        """Check the no-lost-acknowledged-writes invariant.

        Returns ``{"checked": int, "lost": [...], "lost_acked_writes":
        int}``.  A loss is an in-sync replica holding fewer bytes than
        the log acked for a key (it would serve stale data), or a key
        with no live copy of the acked bytes anywhere.  Copies *larger*
        than the ack are fine — an unacknowledged newer write that
        partially landed.
        """
        lost: List[dict] = []
        for key in self.log.keys():
            expected = self.log.expected_size(key)
            have_copy = False
            for name in self.log.replicas_of(key):
                node = self.nodes[name]
                size = node.stored_size(key)
                if node.is_up and size is not None and size >= expected:
                    have_copy = True
                if self.balancer.is_in_sync(name) and (
                        size is None or size < expected):
                    lost.append({
                        "key": key, "node": name, "reason": "stale_in_sync",
                        "stored": size, "acked": expected,
                    })
            if not have_copy:
                lost.append({
                    "key": key, "node": None, "reason": "no_copy",
                    "stored": None, "acked": expected,
                })
        return {
            "checked": len(self.log),
            "lost": lost,
            "lost_acked_writes": len(lost),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (f"<FileCluster n={cfg.nodes} r={cfg.replication} "
                f"{cfg.policy}/{cfg.architecture}>")

"""The replication log: what the cluster has acknowledged.

The log is the deterministic stand-in for a metadata service: one
entry per key recording the last *acknowledged* version, its size, and
the replica set it was committed against.  Writes commit here only
after every admitted replica has the bytes durably on disk — so the
log is exactly the set of promises the cluster has made, and the
no-lost-acked-writes invariant is checkable against it:
:meth:`repro.cluster.FileCluster.verify_durability` compares every
in-sync replica's on-disk size with the log.

Sizes carry versions.  A key's payload is ``base_size(key) + version``
bytes — version 0 at bootstrap, +1 byte per acknowledged overwrite.
Monotonic sizes make staleness *observable in simulation* (the
simulator tracks sizes, not contents): a replica that missed writes
holds fewer bytes than the log promises, which is what the repair
agent scans for and what durability verification would flag as a lost
write on an in-sync member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ClusterError

from repro.cluster.hashring import stable_hash

__all__ = ["base_size", "ReplicationLog"]

#: Key payloads span 1 KiB .. 12.5 KiB in 512-byte steps — small enough
#: to keep bench runs quick, large enough that transfer time matters.
_SIZE_STEPS = 24
_SIZE_QUANTUM = 512
_SIZE_FLOOR = 1024


def base_size(key: str) -> int:
    """Version-0 payload size for ``key`` (deterministic in the key)."""
    return _SIZE_FLOOR + (stable_hash(f"size:{key}") % _SIZE_STEPS) * _SIZE_QUANTUM


@dataclass
class _Entry:
    version: int
    size: int
    acked_at: float
    replicas: Tuple[str, ...]


class ReplicationLog:
    """Last-acknowledged state per key (bootstrap + committed writes)."""

    def __init__(self) -> None:
        self._entries: Dict[str, _Entry] = {}
        #: Total acknowledged writes (bootstrap excluded).
        self.acked_writes = 0
        #: Called as ``on_commit(key, version, size)`` after each commit
        #: is recorded.  The cluster hangs its trace emission here, so
        #: the ``cluster.commit`` event reflects what the log actually
        #: accepted — a misbehaving client cannot fake it.
        self.on_commit: Optional[Callable[[str, int, int], None]] = None

    def bootstrap(self, key: str, size: int,
                  replicas: Tuple[str, ...], now: float = 0.0) -> None:
        """Record the initial (version-0) placement of ``key``."""
        if key in self._entries:
            raise ClusterError(f"key {key!r} already bootstrapped")
        self._entries[key] = _Entry(0, size, now, tuple(replicas))

    def next_version(self, key: str) -> int:
        """The version the in-progress write of ``key`` will commit as."""
        return self._entry(key).version + 1

    def commit(self, key: str, version: int, size: int,
               replicas: Tuple[str, ...], now: float) -> None:
        """Acknowledge a write: every byte of ``size`` is durable on
        the recorded replicas (writes to one key are serialized by the
        coordinator, so versions commit in order)."""
        entry = self._entry(key)
        if version != entry.version + 1:
            raise ClusterError(
                f"out-of-order commit for {key!r}: "
                f"version {version} after {entry.version}")
        entry.version = version
        entry.size = size
        entry.acked_at = now
        entry.replicas = tuple(replicas)
        self.acked_writes += 1
        if self.on_commit is not None:
            self.on_commit(key, version, size)

    def _entry(self, key: str) -> _Entry:
        try:
            return self._entries[key]
        except KeyError:
            raise ClusterError(f"unknown key {key!r}") from None

    def keys(self) -> List[str]:
        """Every known key, sorted (deterministic scan order)."""
        return sorted(self._entries)

    def expected_size(self, key: str) -> int:
        """Bytes the last acknowledged write of ``key`` promised."""
        return self._entry(key).size

    def acked_version(self, key: str) -> int:
        return self._entry(key).version

    def replicas_of(self, key: str) -> Tuple[str, ...]:
        return self._entry(key).replicas

    def __len__(self) -> int:
        return len(self._entries)

"""The coordinator client: replicated writes, failover reads.

One :class:`ClusterClient` is the cluster's data-plane entry point
(the piece a smart client library or an L7 proxy would embed).  It
speaks plain HTTP to the nodes — GET ``/k0042`` reads a shard copy,
POST ``/k0042`` overwrites it in place (the nodes run with
``keyed_writes``) — and layers the cluster semantics on top:

Reads (:meth:`get`)
    Ask the balancer for the in-sync replicas in policy order and walk
    them: a reset, an unreachable host, or a 5xx fails over to the
    next replica (one ``failover`` instant + per-node counter each).
    Only when *every* replica fails does the attempt fail — and if the
    failure is transport-level it is retried under the shared
    :class:`~repro.faults.Retrier` with bounded backoff, so a crash's
    grey window (dead node, not yet ejected) costs latency, not
    errors, and there is no retry storm.

Writes (:meth:`put`)
    Serialized per key (a :class:`~repro.sim.Resource` lock per key —
    the single-writer lease a real metadata service would grant), then
    replicated to **every admitted replica** before the write commits
    to the :class:`~repro.cluster.replication.ReplicationLog` and is
    acknowledged.  The admitted set is re-read every round: a replica
    that fails its (retried) write is re-driven for a bounded number
    of rounds; if it gets ejected meanwhile the write completes with
    the survivors (the repair agent will catch the node up); if it is
    *readmitted* mid-write it is added to the round — its rebuild scan
    ran before this write committed, so skipping it would leave an
    in-sync replica missing acked bytes; and if it stays
    admitted-but-failing the write is *aborted unacknowledged* — the
    cluster never acks bytes it cannot point to on a healthy replica.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.errors import (
    ConnectionReset,
    HttpError,
    NoReplicasAvailable,
    RetryExhausted,
)
from repro.sim import Resource
from repro.webserver.client import HttpClient

from repro.cluster.replication import base_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import FileCluster

__all__ = ["ClusterClient"]

#: Per-replica failures a read fails over on / a write re-drives on.
_REPLICA_FAILURES = (ConnectionReset, RetryExhausted, HttpError)


class ClusterClient:
    """Coordinates replicated reads/writes against one cluster."""

    def __init__(self, cluster: "FileCluster") -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.balancer = cluster.balancer
        self.log = cluster.log
        self.retrier = cluster.retrier
        self._http: Dict[str, HttpClient] = {
            name: HttpClient(cluster.network, host=node.host, port=node.port)
            for name, node in cluster.nodes.items()
        }
        self._locks: Dict[str, Resource] = {}

    # -- key locks ---------------------------------------------------------

    def lock_for(self, key: str) -> Resource:
        """The per-key write lock (shared with the repair agent)."""
        lock = self._locks.get(key)
        if lock is None:
            lock = Resource(self.engine, capacity=1, name=f"lock:{key}")
            self._locks[key] = lock
        return lock

    # -- bookkeeping -------------------------------------------------------

    def _finish(self, key: str) -> None:
        """Completion accounting shared by reads and writes."""
        self.cluster.requests.add()
        if not self.balancer.is_fully_replicated(key):
            self.cluster.degraded.add()

    def _replica_failed(self, key: str, name: str, exc: BaseException) -> None:
        self.cluster.failovers.add()
        self.balancer.note_failover(key, name, type(exc).__name__)

    # -- reads -------------------------------------------------------------

    def get(self, key: str):
        """Generator: read ``key`` from the first replica that answers.

        Returns the winning :class:`~repro.webserver.client.ClientResult`.
        """

        def attempt():
            order = self.balancer.read_order(key)
            if not order:
                raise NoReplicasAvailable(
                    f"read {key!r}: no in-sync replica")
            last: BaseException = None
            for name in order:
                self.balancer.note_dispatch(name)
                try:
                    result = yield from self._http[name].get(key)
                except _REPLICA_FAILURES as exc:
                    last = exc
                    self._replica_failed(key, name, exc)
                    continue
                finally:
                    self.balancer.note_done(name)
                if result.status == 200:
                    self.balancer.note_served(name)
                    tracer = self.engine.tracer
                    if tracer.enabled:
                        tracer.instant("cluster.serve", "cluster", key=key,
                                       node=name, kind="read",
                                       bytes=result.body_bytes)
                    return result
                last = HttpError(result.status,
                                 f"GET {key} -> {result.status} from {name}")
                self._replica_failed(key, name, last)
            raise last

        result = yield from self.retrier.call(attempt, op="cluster.get")
        self._finish(key)
        return result

    # -- writes ------------------------------------------------------------

    def put(self, key: str):
        """Generator: overwrite ``key`` on every admitted replica, then
        acknowledge.  Returns the committed size in bytes."""
        lock = self.lock_for(key)
        grant = lock.acquire()
        yield grant
        try:
            version = self.log.next_version(key)
            size = base_size(key) + version
            pending = self.balancer.write_targets(key)
            if not pending:
                raise NoReplicasAvailable(
                    f"write {key!r}: no admitted replica")
            succeeded = []
            rounds = 0
            while pending:
                failed = []
                for name in pending:
                    self.balancer.note_dispatch(name)
                    try:
                        result = yield from self.retrier.call(
                            lambda name=name: self._http[name].post(key, size),
                            op="cluster.put")
                    except _REPLICA_FAILURES as exc:
                        failed.append(name)
                        self._replica_failed(key, name, exc)
                    else:
                        if result.status == 201:
                            succeeded.append(name)
                            self.balancer.note_served(name)
                            tracer = self.engine.tracer
                            if tracer.enabled:
                                tracer.instant("cluster.replica_ack",
                                               "cluster", key=key, node=name,
                                               version=version)
                        else:
                            failed.append(name)
                            self._replica_failed(key, name, HttpError(
                                result.status,
                                f"POST {key} -> {result.status} from {name}"))
                    finally:
                        self.balancer.note_done(name)
                # Re-read the admitted set every round: failures to
                # since-ejected members are forgiven (the repair agent
                # owns catching them up), still-admitted stragglers get
                # re-driven for a bounded round count, and a replica
                # readmitted while a POST was in flight is *added* —
                # otherwise its rebuild scan (which ran before this
                # write committed) would mark it in-sync while it
                # misses these bytes.  No yield separates the final
                # empty check from the commit, so admission cannot
                # change in between.
                pending = [  # sanitizer: allow (refreshed every round)
                    n for n in self.balancer.replicas(key)
                    if self.balancer.is_admitted(n) and n not in succeeded
                ]
                if not pending:
                    break
                rounds += 1
                if rounds >= self.cluster.config.write_rounds:
                    raise RetryExhausted(
                        f"write {key!r}: replica(s) {pending} kept failing "
                        f"while admitted", attempts=rounds)
                yield self.engine.timeout(
                    self.balancer.config.probe_interval)
            if not succeeded:
                raise NoReplicasAvailable(
                    f"write {key!r}: no replica acknowledged")
            self.log.commit(key, version, size,
                            replicas=tuple(self.balancer.replicas(key)),
                            now=self.engine.now)
            self._finish(key)
            return size
        finally:
            lock.release(grant)

"""A sharded, replicated file-service cluster that survives crashes.

This package scales the single-host web-server stack out to N
:class:`~repro.cluster.node.ClusterNode` members behind a
:class:`~repro.cluster.balancer.LoadBalancer`:

* the namespace is sharded by consistent hash
  (:mod:`~repro.cluster.hashring`) with R-way replication;
* writes replicate to every admitted replica before acknowledging
  (:mod:`~repro.cluster.client`), recorded in the
  :class:`~repro.cluster.replication.ReplicationLog`;
* reads fail over across in-sync replicas under one of three routing
  policies;
* deterministic health probes eject crashed or partitioned members
  and readmit repaired ones, at which point the cluster re-replicates
  their stale shards before trusting them with reads again
  (:mod:`~repro.cluster.cluster`);
* a Zipf-popularity open-arrival fleet drives the whole thing
  (:mod:`~repro.cluster.workload`).

The headline invariant — no acknowledged write is ever lost — is
checkable on any cluster via
:meth:`~repro.cluster.cluster.FileCluster.verify_durability`.
See ``docs/cluster.md`` for topology and the failover lifecycle.
"""

from repro.cluster.balancer import BalancerConfig, LoadBalancer, POLICIES
from repro.cluster.client import ClusterClient
from repro.cluster.cluster import ClusterConfig, FileCluster
from repro.cluster.hashring import HashRing, stable_hash
from repro.cluster.node import ClusterNode
from repro.cluster.replication import ReplicationLog, base_size
from repro.cluster.workload import (
    ClusterWorkload,
    ClusterWorkloadConfig,
    ClusterWorkloadResult,
)

__all__ = [
    "POLICIES",
    "BalancerConfig",
    "LoadBalancer",
    "ClusterClient",
    "ClusterConfig",
    "FileCluster",
    "HashRing",
    "stable_hash",
    "ClusterNode",
    "ReplicationLog",
    "base_size",
    "ClusterWorkload",
    "ClusterWorkloadConfig",
    "ClusterWorkloadResult",
]

"""The load balancer: health checking, ejection, and replica routing.

The balancer is the cluster's *control plane*: a smart L7 router that
knows the shard map (:class:`~repro.cluster.hashring.HashRing`) and
tracks which owners of a key are currently trustworthy.  Two health
bits per node:

``admitted``
    The node answers connections.  Lost after ``eject_after``
    consecutive failed probes (``lb.eject`` instant), regained after
    ``readmit_after`` consecutive successes.  Writes go to every
    admitted replica of the key.

``in_sync``
    The node's shard copies are known current.  Lost together with
    admission; regained only when the cluster's repair agent finishes
    re-replicating the node's stale shards (the ``node.up`` instant).
    Reads are served only by in-sync replicas — a rejoined node must
    not answer reads from stale files.

Health probing is deterministic and out-of-band: every
``probe_interval`` the balancer asks the network whether a SYN would
reach a live listener on each node (a control-plane observation — no
connection is built and no data-LAN cost is paid, so probes never
pollute server request metrics).  Probe rounds ride the engine's
background scheduler, so an idle cluster's probing never extends a
run; they observe the timeline, they don't drive it.

Three routing policies order the in-sync replicas a read tries:

``round_robin``
    Rotate the starting replica per request — even load, ignores state.
``least_conn``
    Fewest balancer-tracked in-flight requests first (ties broken by
    name) — adapts to slow nodes.
``consistent``
    Always the ring's primary first — maximizes per-node cache locality
    at the cost of hot-key imbalance.

Writes ignore the policy: they go to *all* admitted replicas (the
replication contract), so only reads are policy-routed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ClusterError
from repro.io import Network
from repro.sanitizer import runtime as _sanitizer
from repro.sanitizer.race import shared
from repro.sim import Counter, Engine

from repro.cluster.hashring import HashRing
from repro.cluster.node import ClusterNode

__all__ = ["POLICIES", "BalancerConfig", "LoadBalancer"]

POLICIES = ("round_robin", "least_conn", "consistent")


@dataclass(frozen=True)
class BalancerConfig:
    """Routing + health-checking knobs.

    Attributes
    ----------
    policy:
        Read-routing policy, one of :data:`POLICIES`.
    replication:
        R — copies per key (validated against the node count by the
        cluster).
    virtual_nodes:
        Ring smoothing factor (points per physical node).
    probe_interval:
        Simulated seconds between health-probe rounds.
    eject_after:
        Consecutive failed probes before a node is ejected.
    readmit_after:
        Consecutive successful probes before an ejected node is
        readmitted (for writes; reads additionally wait for repair).
    """

    policy: str = "round_robin"
    replication: int = 2
    virtual_nodes: int = 64
    probe_interval: float = 0.02
    eject_after: int = 3
    readmit_after: int = 2

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ClusterError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}")
        if self.replication < 1:
            raise ClusterError("replication must be >= 1")
        if self.probe_interval <= 0:
            raise ClusterError("probe_interval must be positive")
        if self.eject_after < 1 or self.readmit_after < 1:
            raise ClusterError("eject_after/readmit_after must be >= 1")


class LoadBalancer:
    """Routes keys to healthy replicas; ejects and readmits members."""

    def __init__(
        self,
        engine: Engine,
        network: Network,
        nodes: Sequence[ClusterNode],
        config: Optional[BalancerConfig] = None,
        on_readmit: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.config = config or BalancerConfig()
        if self.config.replication > len(nodes):
            raise ClusterError(
                f"replication {self.config.replication} exceeds "
                f"{len(nodes)} node(s)")
        self.nodes: Dict[str, ClusterNode] = {n.name: n for n in nodes}
        self._names = sorted(self.nodes)
        self.ring = HashRing(self._names,
                             virtual_nodes=self.config.virtual_nodes)
        #: Called with a node name when probes readmit it — the cluster
        #: hangs its repair agent here; reads resume only after the
        #: agent calls :meth:`mark_in_sync`.
        self.on_readmit = on_readmit
        self._admitted = {n: True for n in self._names}
        self._in_sync = {n: True for n in self._names}
        # Sanitizer annotations for the membership maps.  The control
        # plane (probe-driven eject/readmit, repair completion) writes
        # them relaxed — the protocol absorbs same-instant collisions
        # with routing reads by re-reading every round — so a reported
        # race always involves a *data-plane* mutation, which is the
        # bug class (PR 8's write-across-readmit).
        self._san_admitted = shared("balancer.admitted")
        self._san_in_sync = shared("balancer.in_sync")
        self._fail_streak = {n: 0 for n in self._names}
        self._ok_streak = {n: 0 for n in self._names}
        self._in_flight = {n: 0 for n in self._names}
        self._rr = 0
        reg = engine.metrics
        self.served: Dict[str, Counter] = {}
        self.failovers: Dict[str, Counter] = {}
        self.ejections: Dict[str, Counter] = {}
        for name in self._names:
            self.served[name] = Counter("lb.served")
            self.failovers[name] = Counter("lb.failovers")
            self.ejections[name] = Counter("lb.ejections")
            for counter in (self.served[name], self.failovers[name],
                            self.ejections[name]):
                reg.register(counter.name, counter, node=name)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Arm the recurring health-probe round (background-scheduled:
        probes observe the run, they never extend it)."""
        self.engine.schedule_background(self._probe_round,
                                        self.config.probe_interval)

    def _probe_round(self) -> None:
        cfg = self.config
        for name in self._names:
            node = self.nodes[name]
            # Reachability is what a SYN probe would learn, with no
            # connection built.
            if self.network.reachable(node.host, node.port):
                self._ok_streak[name] += 1
                self._fail_streak[name] = 0
                if (not self._admitted[name]
                        and self._ok_streak[name] >= cfg.readmit_after):
                    self._readmit(name)
            else:
                self._fail_streak[name] += 1
                self._ok_streak[name] = 0
                if (self._admitted[name]
                        and self._fail_streak[name] >= cfg.eject_after):
                    self._eject(name)
        self.engine.schedule_background(self._probe_round,
                                        cfg.probe_interval)

    def _eject(self, name: str) -> None:
        if _sanitizer.active is not None:
            self._san_admitted.write(self.engine, op="eject", relaxed=True)
            self._san_in_sync.write(self.engine, op="eject", relaxed=True)
        self._admitted[name] = False
        self._in_sync[name] = False
        self.ejections[name].add()
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("lb.eject", "cluster", node=name,
                           failed_probes=self._fail_streak[name])
        # An ejected member sheds its in-flight accounting: those
        # requests are dead and must not bias least_conn forever.
        self._in_flight[name] = 0

    def _readmit(self, name: str) -> None:
        if _sanitizer.active is not None:
            self._san_admitted.write(self.engine, op="readmit", relaxed=True)
        self._admitted[name] = True
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("lb.readmit", "cluster", node=name)
        if self.on_readmit is not None:
            self.on_readmit(name)
        else:
            # Nobody to re-replicate: trust the node as-is.
            if _sanitizer.active is not None:
                self._san_in_sync.write(self.engine, op="readmit",
                                        relaxed=True)
            self._in_sync[name] = True

    def mark_in_sync(self, name: str) -> None:
        """Repair finished: the node may serve reads again."""
        if _sanitizer.active is not None:
            # Repair completion is control-plane: a read racing the
            # mark sees the node either way, both outcomes are legal.
            self._san_in_sync.write(self.engine, op="mark_in_sync",
                                    relaxed=True)
        self._in_sync[name] = True

    # -- health introspection ---------------------------------------------

    def is_admitted(self, name: str) -> bool:
        if _sanitizer.active is not None:
            self._san_admitted.read(self.engine, op="is_admitted")
        return self._admitted[name]

    def is_in_sync(self, name: str) -> bool:
        if _sanitizer.active is not None:
            self._san_in_sync.read(self.engine, op="is_in_sync")
        return self._admitted[name] and self._in_sync[name]

    def healthy_nodes(self) -> List[str]:
        if _sanitizer.active is not None:
            self._san_admitted.read(self.engine, op="healthy_nodes")
        return [n for n in self._names if self._admitted[n]]

    def is_fully_replicated(self, key: str) -> bool:
        """Every replica of ``key`` admitted and in sync — the signal
        the availability SLO watches (degraded service = any request
        whose key is under-replicated right now)."""
        return all(self.is_in_sync(n) for n in self.replicas(key))

    # -- routing -----------------------------------------------------------

    def replicas(self, key: str) -> List[str]:
        """Static placement: the R owners of ``key`` in ring order."""
        return self.ring.replicas_for(key, self.config.replication)

    def write_targets(self, key: str) -> List[str]:
        """Admitted replicas — every one of them must take the write.
        Rebuilding members are included: new writes keep them from
        falling further behind while repair drains the backlog."""
        if _sanitizer.active is not None:
            self._san_admitted.read(self.engine, op="write_targets")
        return [n for n in self.replicas(key) if self._admitted[n]]

    def read_order(self, key: str) -> List[str]:
        """In-sync replicas in the order a read should try them."""
        candidates = [n for n in self.replicas(key) if self.is_in_sync(n)]
        if len(candidates) <= 1:
            return candidates
        policy = self.config.policy
        if policy == "consistent":
            return candidates
        if policy == "round_robin":
            self._rr += 1
            k = self._rr % len(candidates)
            return candidates[k:] + candidates[:k]
        # least_conn
        return sorted(candidates, key=lambda n: (self._in_flight[n], n))

    # -- request accounting ------------------------------------------------

    def note_dispatch(self, name: str) -> None:
        self._in_flight[name] += 1

    def note_done(self, name: str) -> None:
        if self._in_flight[name] > 0:
            self._in_flight[name] -= 1

    def note_served(self, name: str) -> None:
        self.served[name].add()

    def note_failover(self, key: str, name: str, reason: str) -> None:
        """A request gave up on ``name`` and moved to the next replica."""
        self.failovers[name].add()
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("failover", "cluster", node=name, key=key,
                           reason=reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        up = sum(1 for n in self._names if self._admitted[n])
        return (f"<LoadBalancer {self.config.policy} "
                f"{up}/{len(self._names)} admitted>")

"""Consistent-hash ring: the cluster's shard map.

Keys and nodes hash onto one 32-bit circle; a key belongs to the first
``virtual_nodes`` point clockwise from its hash, and its R-way replica
set is the next R *distinct* physical nodes clockwise.  Virtual nodes
smooth the load split, and consistency means membership changes move
only the keys adjacent to the changed node — the property that keeps
re-replication traffic proportional to the failed node's share.

Hashing is CRC32 (:func:`stable_hash`): stable across processes and
Python versions, so the shard map — like everything else in the stack
— is a pure function of configuration.  Placement is *static*: the
ring answers "which nodes own this key", and the
:class:`~repro.cluster.balancer.LoadBalancer` separately answers
"which of those owners are healthy right now".
"""

from __future__ import annotations

import bisect
import zlib
from typing import List, Sequence, Tuple

from repro.errors import ClusterError

__all__ = ["stable_hash", "HashRing"]


def stable_hash(text: str) -> int:
    """Deterministic 32-bit hash (CRC32) of ``text``."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class HashRing:
    """Immutable consistent-hash ring over a fixed node set."""

    def __init__(self, nodes: Sequence[str], virtual_nodes: int = 64) -> None:
        names = list(nodes)
        if not names:
            raise ClusterError("ring needs at least one node")
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate node names: {sorted(names)}")
        if virtual_nodes < 1:
            raise ClusterError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.nodes: Tuple[str, ...] = tuple(sorted(names))
        self.virtual_nodes = virtual_nodes
        points = []
        for name in self.nodes:
            for v in range(virtual_nodes):
                # The node name breaks CRC collision ties, keeping the
                # clockwise order independent of insertion order.
                points.append((stable_hash(f"{name}#{v}"), name))
        points.sort()
        self._points: List[Tuple[int, str]] = points
        self._hashes = [h for h, _ in points]

    def primary(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise of its hash)."""
        return self.replicas_for(key, 1)[0]

    def replicas_for(self, key: str, r: int) -> List[str]:
        """The ``r`` distinct nodes holding ``key``, in ring order.

        The first entry is the primary; the rest are the successors a
        reader fails over to.
        """
        if not (1 <= r <= len(self.nodes)):
            raise ClusterError(
                f"replication {r} out of range for {len(self.nodes)} node(s)")
        start = bisect.bisect_right(self._hashes, stable_hash(key))
        picked: List[str] = []
        for i in range(len(self._points)):
            _, name = self._points[(start + i) % len(self._points)]
            if name not in picked:
                picked.append(name)
                if len(picked) == r:
                    break
        return picked

    def share_of(self, node: str, keys: Sequence[str], r: int) -> float:
        """Fraction of ``keys`` whose replica set includes ``node``."""
        if not keys:
            return 0.0
        owned = sum(1 for k in keys if node in self.replicas_for(k, r))
        return owned / len(keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HashRing nodes={len(self.nodes)} "
                f"virtual={self.virtual_nodes}>")

"""Cluster workload: Zipf-popular keys under open (Poisson) arrivals.

The client fleet a replicated file service actually faces: requests
arrive by a Poisson process regardless of how the cluster is doing
(open arrivals — load does not back off during a crash, which is what
makes failover latency and retry pressure observable), and key
popularity follows a Zipf law (``weight ∝ rank^-s``), so a handful of
hot keys dominate — the regime where a crashed node's share of the
keyspace actually matters and the ``consistent`` policy's cache
locality shows.

Every request goes through the shared
:class:`~repro.cluster.client.ClusterClient`, so reads fail over and
writes replicate exactly as production traffic would; a request that
still dies after the coordinator's bounded retries is counted as
*aborted* and the fleet keeps going.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import (
    ClusterError,
    ConnectionReset,
    HttpError,
    NoReplicasAvailable,
    ReproError,
    RetryExhausted,
)
from repro.sim import Tally
from repro.units import to_ms

from repro.cluster.cluster import FileCluster

__all__ = ["ClusterWorkloadConfig", "ClusterWorkloadResult",
           "ClusterWorkload"]

#: Exceptions that abort one request without killing the fleet.
_ABORTABLE = (ConnectionReset, RetryExhausted, HttpError,
              NoReplicasAvailable, ClusterError)


@dataclass(frozen=True)
class ClusterWorkloadConfig:
    """Fleet parameters.

    Attributes
    ----------
    requests:
        Total requests the fleet fires.
    arrival_rate:
        Mean Poisson arrivals per simulated second.
    get_fraction:
        Probability a request is a GET; the rest are replicated PUTs.
    zipf_s:
        Zipf exponent for key popularity (0 = uniform).
    seed:
        Root seed for the fleet's arrival/mix streams.
    """

    requests: int = 200
    arrival_rate: float = 400.0
    get_fraction: float = 0.7
    zipf_s: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ReproError("requests must be >= 1")
        if self.arrival_rate <= 0:
            raise ReproError("arrival_rate must be positive")
        if not (0.0 <= self.get_fraction <= 1.0):
            raise ReproError("get_fraction must be in [0, 1]")
        if self.zipf_s < 0:
            raise ReproError("zipf_s must be >= 0")


@dataclass
class ClusterWorkloadResult:
    """Aggregate outcome of one cluster workload run."""

    completed: int
    aborted: int
    latencies: Tally
    duration: float
    #: Requests the balancer moved off a failed replica.
    failovers: int
    #: Client re-attempts beyond each request's first try.
    retries: int
    #: Balancer ejections over the run (sum across nodes).
    ejections: int
    #: Shards the repair agent re-replicated.
    rebuilt_keys: int
    #: Completions observed while the touched key was under-replicated.
    degraded: int
    #: Per-node requests served, keyed by node name.
    served_by_node: dict = field(default_factory=dict)
    #: Per-abort exception type names, for assertions.
    abort_reasons: List[str] = field(default_factory=list)

    @property
    def attempted(self) -> int:
        return self.completed + self.aborted

    @property
    def throughput(self) -> float:
        """Completed requests per simulated second."""
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return to_ms(self.latencies.mean)


class ClusterWorkload:
    """Drives a :class:`FileCluster` with a Zipf-popularity fleet."""

    def __init__(self, cluster: FileCluster,
                 config: Optional[ClusterWorkloadConfig] = None) -> None:
        self.cluster = cluster
        self.config = config or ClusterWorkloadConfig()
        self._streams = cluster.streams.fork("workload")
        ranks = np.arange(1, len(cluster.keys) + 1, dtype=np.float64)
        weights = ranks ** -self.config.zipf_s
        self._weights = weights / weights.sum()

    def run(self) -> ClusterWorkloadResult:
        cfg = self.config
        cluster = self.cluster
        engine = cluster.engine
        client = cluster.client()
        keys = cluster.keys
        arrival_rng = self._streams.get("arrivals")
        mix_rng = self._streams.get("request-mix")
        latencies = Tally("cluster.latency")
        completed = [0]
        aborted: List[str] = []
        start = engine.now

        def one_request():
            key = keys[int(mix_rng.choice(len(keys), p=self._weights))]
            is_get = float(mix_rng.uniform()) < cfg.get_fraction
            t0 = engine.now
            try:
                if is_get:
                    yield from client.get(key)
                else:
                    yield from client.put(key)
            except _ABORTABLE as exc:
                aborted.append(type(exc).__name__)
                cluster.aborted.add()
                return
            completed[0] += 1
            latencies.record(engine.now - t0)

        def dispatcher():
            fired = []
            for rid in range(cfg.requests):
                yield engine.timeout(
                    float(arrival_rng.exponential(1.0 / cfg.arrival_rate)))
                fired.append(engine.process(one_request(),
                                            name=f"req-{rid}"))
            yield engine.all_of(fired)

        def waiter():
            yield engine.all_of(
                [engine.process(dispatcher(), name="cluster.arrivals")])

        engine.run_process(waiter())
        balancer = cluster.balancer
        return ClusterWorkloadResult(
            completed=completed[0],
            aborted=len(aborted),
            latencies=latencies,
            duration=engine.now - start,
            failovers=cluster.failovers.value,
            retries=cluster.retrier.retries.value,
            ejections=sum(c.value for c in balancer.ejections.values()),
            rebuilt_keys=cluster.rebuilt_keys.value,
            degraded=cluster.degraded.value,
            served_by_node={n: balancer.served[n].value
                            for n in sorted(balancer.served)},
            abort_reasons=aborted,
        )

"""One cluster member: a full single-host stack plus a fault surface.

A :class:`ClusterNode` owns everything the single-host benchmark owns —
its own disk, file system, buffer cache, CLI runtime and
:class:`~repro.webserver.architecture.ServerHost` — sharing only the
engine and the LAN with its peers.  Every metric the node's stack
registers carries a ``node=<name>`` label, so per-node attribution
survives aggregation into the engine-wide registry.

The node also implements the lifecycle the fault injector drives
(``node.crash``/``node.partition`` specs arm against it via
:meth:`repro.faults.FaultInjector.register_node`):

``crash()``
    Stops accepting, resets the queued backlog and every in-flight
    connection (clients observe :class:`~repro.errors.ConnectionReset`)
    and blackholes the endpoint.  Storage survives — a crashed node
    that :meth:`recover`-s comes back with old (possibly stale) files,
    which is why the cluster re-replicates before trusting it again.

``partition()``
    Blackholes the endpoint only: in-flight requests complete, but no
    new connection reaches the node until :meth:`heal`.
"""

from __future__ import annotations

from typing import Optional

from repro.cli import CliRuntime
from repro.cli.profiles import get_profile
from repro.io import (
    CacheParams,
    FileMode,
    FileStream,
    FileSystem,
    FsParams,
    Network,
    StreamWriter,
)
from repro.sim import Counter, Engine
from repro.storage import Disk, DiskGeometry, DiskParams
from repro.webserver.server import WebServerConfig

__all__ = ["ClusterNode"]


class ClusterNode:
    """One storage/serving member of a :class:`~repro.cluster.FileCluster`."""

    def __init__(
        self,
        engine: Engine,
        network: Network,
        name: str,
        server_config: WebServerConfig,
        architecture: str = "thread",
        vm_profile: str = "sscli",
        cache_pages: int = 4096,
        fs_params: Optional[FsParams] = None,
        disk_params: Optional[DiskParams] = None,
        disk_geometry: Optional[DiskGeometry] = None,
        injector=None,
        retrier=None,
    ) -> None:
        from repro.webserver.host import SERVER_ARCHITECTURES

        self.engine = engine
        self.network = network
        self.name = name
        self.disk = Disk(
            engine,
            geometry=disk_geometry or DiskGeometry(),
            params=disk_params or DiskParams(),
            name=f"{name}.disk",
            injector=injector,
        )
        self.fs = FileSystem(
            engine,
            self.disk,
            params=fs_params or FsParams(),
            cache_params=CacheParams(capacity_pages=cache_pages),
        )
        profile = get_profile(vm_profile)
        self.runtime = CliRuntime(
            engine, jit_params=profile.jit, interp_params=profile.interp
        )
        server_cls = SERVER_ARCHITECTURES[architecture]
        self.server = server_cls(
            engine, self.runtime, self.fs, network, server_config,
            retrier=retrier, labels={"node": name},
        )
        self.is_up = True
        self.is_reachable = True
        #: Fraction of the last repair pass completed (1.0 = in sync).
        self.rebuild_progress = 1.0
        self.crashes = Counter("cluster.node.crashes")
        self.resets = Counter("cluster.node.conn_resets")
        reg = engine.metrics
        reg.register(self.crashes.name, self.crashes, node=name)
        reg.register(self.resets.name, self.resets, node=name)
        reg.gauge("cluster.rebuild_progress",
                  lambda: self.rebuild_progress, node=name)

    # -- convenience -------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        return self.server.config.port

    def start(self):
        """Generator: load the handler assembly and begin listening."""
        yield from self.server.start()

    def key_path(self, key: str) -> str:
        """Where ``key`` lives on this node's file system."""
        return self.server.resolve_path(key)

    def stored_size(self, key: str) -> Optional[int]:
        """Bytes held for ``key``, or ``None`` if the node has no copy."""
        path = self.key_path(key)
        return self.fs.size_of(path) if self.fs.exists(path) else None

    def store_local(self, key: str, nbytes: int):
        """Generator: durably write ``nbytes`` for ``key`` straight into
        the local file system — the repair agent's path, paying the same
        stream/sync costs as a ``doPost`` without the HTTP hop."""
        path = self.key_path(key)
        stream = yield from FileStream.open(self.fs, path, FileMode.CREATE)
        writer = StreamWriter(stream,
                              buffer_size=self.server.config.file_chunk)
        yield from writer.write(nbytes)
        yield from writer.flush()
        yield from self.fs.sync(stream.handle)
        yield from stream.close()

    # -- fault lifecycle ---------------------------------------------------

    def crash(self, reason: str = "") -> None:
        """Fail-stop: stop accepting, reset every connection the node
        holds, and make the endpoint unreachable.  Idempotent."""
        if not self.is_up:
            return
        self.is_up = False
        self.is_reachable = False
        self.network.block(self.host, self.port)
        self.server.listener.stop()
        torn = 0
        for sock in self.server.listener.drain_backlog():
            sock.reset()
            torn += 1
        for conn in list(self.server.handlers.connections.values()):
            conn.socket.reset()
            torn += 1
        self.crashes.add()
        self.resets.add(torn)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("node.down", "cluster", node=self.name,
                           kind="crash", reset_connections=torn,
                           reason=reason)

    def recover(self) -> None:
        """Repair a crashed node: the endpoint reopens with storage
        intact.  The balancer readmits it for writes on the next
        successful probes; reads wait until re-replication marks it in
        sync (the cluster emits ``node.up`` there)."""
        if self.is_up:
            return
        self.is_up = True
        self.is_reachable = True
        self.network.unblock(self.host, self.port)
        self.server.listener.start()

    def partition(self, reason: str = "") -> None:
        """Cut the node off the LAN without killing it: established
        connections keep flowing, new ones fail like a dead host."""
        if not self.is_up or not self.is_reachable:
            return
        self.is_reachable = False
        self.network.block(self.host, self.port)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("node.down", "cluster", node=self.name,
                           kind="partition", reason=reason)

    def heal(self) -> None:
        """Undo :meth:`partition` (no-op on a crashed node — recovery
        owns unblocking there)."""
        if not self.is_up or self.is_reachable:
            return
        self.is_reachable = True
        self.network.unblock(self.host, self.port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("up" if self.is_up and self.is_reachable
                 else "partitioned" if self.is_up else "down")
        return f"<ClusterNode {self.name} {state}>"

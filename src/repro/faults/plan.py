"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a seed plus an ordered list of :class:`FaultSpec`
entries.  The plan itself is pure data — it never touches the engine —
so the same plan object can be replayed against any number of runs and,
given the same seed, produces byte-identical fault schedules (the
determinism contract tested in ``tests/faults``).

Fault kinds
-----------

``disk.media_error``
    A block transfer fails with :class:`~repro.errors.MediaError` after
    paying its full mechanical service time (the drive retried
    internally, then gave up).  Transient: a retry of the same LBA may
    succeed.
``disk.slow``
    The request completes, but service time is multiplied by
    ``slow_factor`` (firmware retries / thermal recalibration).
``disk.stall``
    The request completes after an additional fixed ``delay`` seconds —
    long enough to trip per-op timeouts upstream.
``disk.fail``
    The whole device goes offline at ``start``; every queued and future
    request fails with :class:`~repro.errors.DiskFailedError` until the
    disk is repaired.  Arrays respond by serving degraded reads.
``net.drop``
    An in-flight connection is torn down; both endpoints observe
    :class:`~repro.errors.ConnectionReset`.
``node.crash``
    A cluster node crashes at ``start``: it stops accepting, every
    in-flight and queued connection is reset, and its endpoint turns
    unreachable.  With an ``end`` the node is repaired there and
    re-joins (storage intact but possibly stale — the cluster
    re-replicates before readmitting it for reads).
``node.partition``
    The node stays alive — in-flight requests complete — but its
    endpoint is unreachable for new connections until ``end`` (the
    balancer ejects it; writes made meanwhile leave it stale).

Probabilistic kinds (everything except the window-scheduled
``disk.fail``/``node.crash``/``node.partition``) draw one uniform
variate per candidate operation from a stream named after the spec, so
adding a spec never perturbs the draws of another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import FaultError

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS"]

FAULT_KINDS = (
    "disk.media_error",
    "disk.slow",
    "disk.stall",
    "disk.fail",
    "net.drop",
    "node.crash",
    "node.partition",
)

#: Window-scheduled kinds fire deterministically at ``start`` (and
#: repair/heal at ``end``) rather than drawing per-operation variates.
_SCHEDULED = frozenset({"disk.fail", "node.crash", "node.partition"})

_PROBABILISTIC = frozenset(k for k in FAULT_KINDS if k not in _SCHEDULED)


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        Device name (``disk.*`` kinds) or connection scope (``net.drop``;
        ``"*"`` matches any target).
    start, end:
        Simulated-time window in which the rule is armed.  ``end=None``
        means "until the end of the run".  Window-scheduled kinds
        (``disk.fail``, ``node.crash``, ``node.partition``) fire
        exactly once at ``start`` and — when ``end`` is set — repair,
        recover, or heal the target at ``end``.
    probability:
        Per-operation firing probability for probabilistic kinds.
    lba_range:
        Optional ``(lo, hi)`` half-open LBA filter for disk kinds — only
        requests overlapping the range are candidates.
    slow_factor:
        Service-time multiplier for ``disk.slow``.
    delay:
        Extra seconds for ``disk.stall``.
    max_hits:
        Budget of firings; ``None`` = unlimited.
    """

    kind: str
    target: str = "*"
    start: float = 0.0
    end: Optional[float] = None
    probability: float = 1.0
    lba_range: Optional[Tuple[int, int]] = None
    slow_factor: float = 4.0
    delay: float = 0.25
    max_hits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.start < 0:
            raise FaultError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise FaultError(
                f"empty fault window [{self.start}, {self.end})"
            )
        if not (0.0 <= self.probability <= 1.0):
            raise FaultError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.lba_range is not None:
            lo, hi = self.lba_range
            if lo < 0 or hi <= lo:
                raise FaultError(f"bad lba_range ({lo}, {hi})")
        if self.slow_factor < 1.0:
            raise FaultError(f"slow_factor must be >= 1, got {self.slow_factor}")
        if self.delay < 0:
            raise FaultError(f"delay must be >= 0, got {self.delay}")
        if self.max_hits is not None and self.max_hits < 1:
            raise FaultError(f"max_hits must be >= 1, got {self.max_hits}")

    @property
    def probabilistic(self) -> bool:
        return self.kind in _PROBABILISTIC

    def active_at(self, now: float) -> bool:
        """True when the rule's window covers simulated time ``now``."""
        if now < self.start:
            return False
        return self.end is None or now < self.end

    def matches_target(self, target: str) -> bool:
        return self.target == "*" or self.target == target

    def matches_lba(self, lba: int, nblocks: int) -> bool:
        if self.lba_range is None:
            return True
        lo, hi = self.lba_range
        return lba < hi and lba + nblocks > lo

    def stream_name(self, index: int) -> str:
        """Name of the seeded stream this spec draws from.

        The index keeps two otherwise-identical specs independent.
        """
        return f"fault/{index}/{self.kind}/{self.target}"


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of fault rules.

    Matching is first-match-wins in list order, so put the most specific
    rules first.  An empty plan is valid and injects nothing.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Accept any iterable of specs but store a tuple so plans are
        # hashable and safely shared across runs.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultError(f"specs must be FaultSpec, got {type(spec).__name__}")

    def for_kind(self, *kinds: str) -> List[Tuple[int, FaultSpec]]:
        """``(index, spec)`` pairs whose kind is in ``kinds``, plan order."""
        return [(i, s) for i, s in enumerate(self.specs) if s.kind in kinds]

    def describe(self) -> str:
        """Human-readable one-line-per-rule summary."""
        if not self.specs:
            return f"FaultPlan(seed={self.seed}): no faults"
        lines = [f"FaultPlan(seed={self.seed}): {len(self.specs)} rule(s)"]
        for i, s in enumerate(self.specs):
            window = f"[{s.start:g}, {'inf' if s.end is None else f'{s.end:g}'})"
            parts = [f"  #{i} {s.kind} target={s.target} window={window}"]
            if s.probabilistic:
                parts.append(f"p={s.probability:g}")
            if s.lba_range is not None:
                parts.append(f"lba={s.lba_range}")
            if s.kind == "disk.slow":
                parts.append(f"x{s.slow_factor:g}")
            if s.kind == "disk.stall":
                parts.append(f"+{s.delay:g}s")
            if s.kind in ("node.crash", "node.partition"):
                parts.append("recovers at end" if s.end is not None
                             else "no recovery")
            if s.max_hits is not None:
                parts.append(f"max_hits={s.max_hits}")
            lines.append(" ".join(parts))
        return "\n".join(lines)

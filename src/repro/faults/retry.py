"""Retry with exponential backoff, deterministic jitter and timeouts.

:class:`RetryPolicy` is pure data (attempt budget, backoff curve,
per-attempt timeout, which exception types are worth retrying);
:class:`Retrier` executes coroutine operations under a policy on one
engine.  Jitter draws from a seeded stream, so the exact backoff
schedule — like everything else in the stack — is a function of the
root seed.

Usage, from any process::

    retrier = Retrier(engine, RetryPolicy(max_attempts=4), rng=streams.get("retry"))
    data = yield from retrier.call(lambda: fs.read(handle, 4096, offset=0),
                                   op="fs.read")

The ``factory`` is invoked once per attempt and must return a *fresh*
generator whose effects are idempotent (e.g. reads at an explicit
offset) — a retried attempt re-executes it from the top.

Per-attempt timeouts race the attempt (run as its own process) against
``engine.timeout``; a timed-out attempt is abandoned, which the kernel
tolerates (failed :class:`~repro.sim.process.Process` objects without
waiters do not crash the engine).

Every failed attempt emits a ``retry.attempt`` instant through
``engine.tracer`` and bumps the ``retry.*`` counters registered with
the engine's metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Tuple, Type

from repro.errors import (
    ConnectionReset,
    FaultError,
    MediaError,
    OperationTimeout,
    RetryExhausted,
)
from repro.sim import Counter, Engine

__all__ = ["RetryPolicy", "Retrier", "DEFAULT_RETRYABLE"]

#: Exception types retried by default: transient media errors, torn
#: connections, and per-attempt timeouts.  Persistent failures
#: (DiskFailedError, FileNotFound, ...) are deliberately absent.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    MediaError, ConnectionReset, OperationTimeout,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff/budget description (pure data, shareable across runs).

    Attributes
    ----------
    max_attempts:
        Total attempt budget including the first try.
    base_delay:
        Backoff before the second attempt (seconds); attempt ``n``
        waits ``base_delay * multiplier**(n-1)`` capped at ``max_delay``.
    jitter:
        Fractional jitter: the delay is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]`` (0 disables).
        Requires the retrier to hold an rng; without one the delay is
        used as-is.
    timeout:
        Per-attempt budget (simulated seconds); ``None`` disables.  A
        timed-out attempt raises :class:`~repro.errors.OperationTimeout`
        (retryable by default).
    retryable:
        Exception types that trigger a retry; anything else propagates
        immediately.
    """

    max_attempts: int = 4
    base_delay: float = 0.002
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.25
    timeout: Optional[float] = None
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise FaultError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise FaultError(f"multiplier must be >= 1, got {self.multiplier}")
        if not (0.0 <= self.jitter < 1.0):
            raise FaultError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise FaultError(f"timeout must be positive, got {self.timeout}")

    def backoff(self, attempt: int, rng=None) -> float:
        """Delay before attempt ``attempt + 1`` (1-based failed attempt)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay


class Retrier:
    """Executes coroutine operations under a :class:`RetryPolicy`.

    Parameters
    ----------
    engine:
        The simulation engine (clock, processes, obs).
    policy:
        The retry policy; defaults to ``RetryPolicy()``.
    name:
        Metrics prefix — counters register as ``{name}.attempts``,
        ``{name}.retries``, ``{name}.recovered``, ``{name}.exhausted``,
        ``{name}.timeouts``.
    rng:
        numpy Generator for jitter (seeded stream); ``None`` = no jitter.
    category:
        Tracer category for ``retry.attempt`` instants, so retries
        attribute to the layer doing the retrying.
    """

    def __init__(
        self,
        engine: Engine,
        policy: Optional[RetryPolicy] = None,
        name: str = "retry",
        rng=None,
        category: str = "io",
    ) -> None:
        self.engine = engine
        self.policy = policy or RetryPolicy()
        self.name = name
        self.rng = rng
        self.category = category
        self.attempts = Counter(f"{name}.attempts")
        self.retries = Counter(f"{name}.retries")
        self.recovered = Counter(f"{name}.recovered")
        self.exhausted = Counter(f"{name}.exhausted")
        self.timeouts = Counter(f"{name}.timeouts")
        reg = engine.metrics
        for counter in (self.attempts, self.retries, self.recovered,
                        self.exhausted, self.timeouts):
            reg.register(counter.name, counter)

    def call(
        self,
        factory: Callable[[], Generator],
        op: str = "op",
    ) -> Generator[Any, Any, Any]:
        """Generator: run ``factory()`` until success or budget exhausted.

        Returns the operation's return value; raises
        :class:`~repro.errors.RetryExhausted` (carrying the last error)
        when every attempt failed, or the original exception immediately
        if it is not retryable under the policy.
        """
        policy = self.policy
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            self.attempts.add()
            if attempt > 1:
                self.retries.add()
            try:
                if policy.timeout is None:
                    result = yield from factory()
                else:
                    result = yield from self._attempt_with_timeout(
                        factory, op, attempt)
            except policy.retryable as exc:
                last_error = exc
                tracer = self.engine.tracer
                if tracer.enabled:
                    tracer.instant(
                        "retry.attempt", self.category, op=op,
                        attempt=attempt, error=type(exc).__name__,
                        exhausted=attempt >= policy.max_attempts,
                    )
                if attempt >= policy.max_attempts:
                    break
                delay = policy.backoff(attempt, self.rng)
                if delay > 0:
                    yield self.engine.timeout(delay)
            else:
                if attempt > 1:
                    self.recovered.add()
                return result
        self.exhausted.add()
        raise RetryExhausted(
            f"{op} failed after {policy.max_attempts} attempt(s): {last_error}",
            last_error=last_error, attempts=policy.max_attempts,
        )

    def _attempt_with_timeout(self, factory, op: str, attempt: int):
        """Race one attempt (as its own process) against the per-op budget."""
        proc = self.engine.process(factory(), name=f"{self.name}.{op}#{attempt}")
        deadline = self.engine.timeout(self.policy.timeout)
        # AnyOf fails if the attempt fails first, re-raising its error
        # here; a deadline win leaves the attempt running detached (its
        # effects are discarded by the idempotence contract).
        yield self.engine.any_of([proc, deadline])
        if proc.triggered:
            if not proc.ok:  # pragma: no cover - any_of already raised
                raise proc.value
            return proc.value
        self.timeouts.add()
        raise OperationTimeout(
            f"{op} attempt {attempt} exceeded {self.policy.timeout}s budget"
        )

"""Deterministic fault injection and resilience primitives.

The subsystem has two halves:

* **Injection** — :class:`FaultPlan`/:class:`FaultSpec` describe *what*
  goes wrong (pure data), :class:`FaultInjector` decides *when* using
  seeded streams against simulated time.  Layers consult the injector
  on their hot paths (disk arm, socket transfers) or receive scheduled
  failures (whole-disk ``disk.fail``).
* **Resilience** — :class:`RetryPolicy`/:class:`Retrier` give callers
  exponential backoff with deterministic jitter and per-attempt
  timeouts; arrays add degraded reads and rebuild
  (:class:`repro.storage.MirroredArray`); the webserver adds deadlines
  and load shedding.

Everything is observable: ``fault.injected`` / ``retry.attempt``
instants and ``faults.*`` / ``retry.*`` counters flow through
:mod:`repro.obs` like every other signal.  See ``docs/robustness.md``.
"""

from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.retry import DEFAULT_RETRYABLE, Retrier, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectionRecord",
    "RetryPolicy",
    "Retrier",
    "DEFAULT_RETRYABLE",
]

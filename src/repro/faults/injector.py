"""Deterministic fault injector.

The :class:`FaultInjector` is the runtime half of :mod:`repro.faults`:
it binds a pure-data :class:`~repro.faults.plan.FaultPlan` to one
engine, draws per-operation variates from named
:class:`~repro.rng.SeededStreams` (one stream per spec, so rules never
perturb each other), and answers the question every instrumented layer
asks on its hot path: *does a fault fire here, now?*

Layers pull rather than the injector pushing: the disk consults
:meth:`disk_fault` as the arm services each request, sockets consult
:meth:`net_fault` per transfer.  The only pushed faults are whole-disk
failures (``disk.fail``), which the injector schedules as daemon
processes against simulated time when a disk is registered.

Every firing is appended to :attr:`injections` (the deterministic
schedule the contract tests compare byte-for-byte), counted in the
``faults.injected`` counter, and emitted as a ``fault.injected``
instant through ``engine.tracer`` with the owning layer's category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec
from repro.rng import SeededStreams
from repro.sim import Counter, Engine

__all__ = ["InjectionRecord", "FaultInjector"]

#: Tracer category per fault family — keeps per-layer attribution in
#: the obs report (`fault.*` instants land in the layer they hit).
_KIND_CATEGORY = {
    "disk.media_error": "storage",
    "disk.slow": "storage",
    "disk.stall": "storage",
    "disk.fail": "storage",
    "net.drop": "net",
    "node.crash": "cluster",
    "node.partition": "cluster",
}

_DISK_OP_KINDS = ("disk.media_error", "disk.slow", "disk.stall")

_NODE_KINDS = ("node.crash", "node.partition")


@dataclass(frozen=True)
class InjectionRecord:
    """One fault firing (an entry of the deterministic schedule)."""

    time: float
    kind: str
    target: str
    spec_index: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "target": self.target,
            "spec": self.spec_index,
            "detail": dict(sorted(self.detail.items())),
        }


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against one engine's timeline."""

    def __init__(self, engine: Engine, plan: Optional[FaultPlan] = None) -> None:
        self.engine = engine
        self.plan = plan or FaultPlan()
        self._streams = SeededStreams(self.plan.seed).fork("faults")
        self._hits: Dict[int, int] = {}
        self.injections: List[InjectionRecord] = []
        self.injected = Counter("faults.injected")
        engine.metrics.register(self.injected.name, self.injected)

    # -- bookkeeping -----------------------------------------------------------

    def _stream(self, index: int, spec: FaultSpec):
        return self._streams.get(spec.stream_name(index))

    def _budget_left(self, index: int, spec: FaultSpec) -> bool:
        if spec.max_hits is None:
            return True
        return self._hits.get(index, 0) < spec.max_hits

    def _fire(self, index: int, spec: FaultSpec, **detail: Any) -> None:
        self._hits[index] = self._hits.get(index, 0) + 1
        now = self.engine.now
        self.injections.append(InjectionRecord(
            time=now, kind=spec.kind, target=spec.target,
            spec_index=index, detail=detail,
        ))
        self.injected.add()
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("fault.injected", _KIND_CATEGORY[spec.kind],
                           kind=spec.kind, target=spec.target,
                           spec=index, **detail)

    def schedule_dump(self) -> List[dict]:
        """The injection log as plain dicts (byte-comparable via JSON)."""
        return [r.to_dict() for r in self.injections]

    # -- disk faults -----------------------------------------------------------

    def register_disk(self, disk) -> None:
        """Arm ``disk.fail`` rules targeting ``disk.name``.

        Each matching rule spawns a daemon that fails the device at the
        rule's ``start``; if the rule has an ``end``, the disk is
        repaired there (modeling a drive swap), which arrays use to
        kick off a rebuild.
        """
        for index, spec in self.plan.for_kind("disk.fail"):
            if not spec.matches_target(disk.name) or not self._budget_left(index, spec):
                continue
            self.engine.process(self._fail_disk_at(index, spec, disk),
                                name=f"fault.disk_fail.{disk.name}", daemon=True)

    def _fail_disk_at(self, index: int, spec: FaultSpec, disk):
        if spec.start > self.engine.now:
            yield self.engine.timeout(spec.start - self.engine.now)
        if disk.failed or not self._budget_left(index, spec):
            return
        disk.fail_disk(reason=f"injected by fault spec #{index}")
        self._fire(index, spec, disk=disk.name, action="fail")
        if spec.end is not None:
            yield self.engine.timeout(spec.end - self.engine.now)
            if disk.failed:
                disk.repair()
                self._fire(index, spec, disk=disk.name, action="repair")

    # -- node faults -----------------------------------------------------------

    def register_node(self, node) -> None:
        """Arm ``node.crash``/``node.partition`` rules targeting
        ``node.name``.

        Mirrors :meth:`register_disk`: each matching rule spawns a
        daemon that fires at the rule's ``start`` and — when ``end``
        is set — recovers the node (``node.crash``) or heals the
        partition (``node.partition``) there.  ``node`` is any object
        with the :class:`repro.cluster.ClusterNode` lifecycle surface
        (``name``, ``is_up``, ``is_reachable``, ``crash``/``recover``/
        ``partition``/``heal``).
        """
        for index, spec in self.plan.for_kind(*_NODE_KINDS):
            if not spec.matches_target(node.name) or not self._budget_left(index, spec):
                continue
            self.engine.process(self._node_fault_at(index, spec, node),
                                name=f"fault.{spec.kind}.{node.name}",
                                daemon=True)

    def _node_fault_at(self, index: int, spec: FaultSpec, node):
        if spec.start > self.engine.now:
            yield self.engine.timeout(spec.start - self.engine.now)
        if not self._budget_left(index, spec):
            return
        if spec.kind == "node.crash":
            if not node.is_up:
                return
            node.crash(reason=f"injected by fault spec #{index}")
            self._fire(index, spec, node=node.name, action="crash")
            if spec.end is not None:
                yield self.engine.timeout(spec.end - self.engine.now)
                if not node.is_up:
                    node.recover()
                    self._fire(index, spec, node=node.name, action="recover")
        else:  # node.partition
            if not (node.is_up and node.is_reachable):
                return
            node.partition(reason=f"injected by fault spec #{index}")
            self._fire(index, spec, node=node.name, action="partition")
            if spec.end is not None:
                yield self.engine.timeout(spec.end - self.engine.now)
                if node.is_up and not node.is_reachable:
                    node.heal()
                    self._fire(index, spec, node=node.name, action="heal")

    def disk_fault(self, disk_name: str, lba: int,
                   nblocks: int) -> Optional[Tuple[str, FaultSpec]]:
        """Per-request fault decision for a disk transfer.

        Returns ``(kind, spec)`` for the first matching rule that fires,
        or ``None``.  Called by the disk arm once per serviced request.
        """
        now = self.engine.now
        for index, spec in self.plan.for_kind(*_DISK_OP_KINDS):
            if not spec.matches_target(disk_name):
                continue
            if not spec.active_at(now) or not spec.matches_lba(lba, nblocks):
                continue
            if not self._budget_left(index, spec):
                continue
            if float(self._stream(index, spec).random()) >= spec.probability:
                continue
            self._fire(index, spec, disk=disk_name, lba=lba, nblocks=nblocks)
            return spec.kind, spec
        return None

    # -- network faults --------------------------------------------------------

    def net_fault(self, target: str, op: str) -> bool:
        """Per-transfer connection-drop decision.

        ``target`` scopes rules (e.g. ``"server"``/``"client"``), ``op``
        labels the operation (``send``/``receive``) in the record.
        """
        now = self.engine.now
        for index, spec in self.plan.for_kind("net.drop"):
            if not spec.matches_target(target) or not spec.active_at(now):
                continue
            if not self._budget_left(index, spec):
                continue
            if float(self._stream(index, spec).random()) >= spec.probability:
                continue
            self._fire(index, spec, scope=target, op=op)
            return True
        return False

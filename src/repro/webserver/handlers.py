"""Class-library side of the web server: the intrinsics the CIL
handler methods call.

``doGet``: "the requested file is read and sent to the client through
the socket" — timed as (1) filestream creation, (2) reading the data,
(3) closing the filestream.

``doPost``: "the data is written to a new file created by using a
random number generator.  Hence, no synchronization is required for
write operations.  The data is stored to the new file using
streamwriter class."
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, TYPE_CHECKING

from repro.errors import (
    ConnectionReset,
    FileNotFound,
    HttpError,
    RetryExhausted,
    StorageError,
)
from repro.io import FileMode, FileStream, StreamWriter
from repro.io.net import Socket
from repro.webserver.httpmsg import HttpRequest, HttpResponse, parse_request
from repro.webserver.metrics import RequestRecord, ServerMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.webserver.architecture import ServerHost

__all__ = ["Connection", "RequestHandlers"]

_connection_ids = itertools.count(1)


class Connection:
    """Per-connection server state shared between intrinsic calls."""

    def __init__(self, socket: Socket, accepted_at: float) -> None:
        self.conn_id = next(_connection_ids)
        self.socket = socket
        self.accepted_at = accepted_at
        self.request: Optional[HttpRequest] = None
        self.error_status: Optional[int] = None
        self.started_at: Optional[float] = None


class RequestHandlers:
    """Implements the ``Http.*`` intrinsics against one server."""

    def __init__(self, server: "ServerHost") -> None:
        self.server = server
        self.connections: Dict[int, Connection] = {}

    # -- helpers ----------------------------------------------------------

    @property
    def engine(self):
        return self.server.engine

    @property
    def fs(self):
        return self.server.fs

    @property
    def metrics(self) -> ServerMetrics:
        return self.server.metrics

    def register(self, connection: Connection) -> int:
        self.connections[connection.conn_id] = connection
        return connection.conn_id

    def _conn(self, conn_id: int) -> Connection:
        try:
            return self.connections[conn_id]
        except KeyError:
            raise HttpError(500, f"unknown connection {conn_id}") from None

    # -- intrinsics ---------------------------------------------------------

    def receive_request(self, conn_id: int):
        """Read the incoming data into a buffer, convert to a string,
        and parse it; returns 0 for GET, 1 for POST.  A malformed
        request raises a *managed* exception
        (``System.Net.ProtocolViolationException``) that the CIL
        ``StartListen`` catches in its protected region."""
        from repro.cli import ManagedException

        conn = self._conn(conn_id)
        conn.started_at = self.engine.now
        received = 0
        text: Optional[str] = None
        expected = None
        while True:
            try:
                got = yield from conn.socket.receive(8192)
            except ConnectionReset:
                # The client vanished mid-request.  There is nobody to
                # answer, but the request must not vanish from the
                # metrics: count the failure, then unwind through the
                # managed catch so the worker exits cleanly.
                self._abort(conn, "reset_during_receive")
                raise ManagedException(
                    "System.Net.SocketException",
                    "connection reset while receiving request",
                    payload=499,
                ) from None
            received += got
            if text is None:
                payloads = conn.socket.take_payloads()
                if payloads:
                    text = payloads[0]
                    try:
                        conn.request = parse_request(text)
                        expected = conn.request.wire_bytes
                    except HttpError as exc:
                        conn.error_status = exc.status
                        raise ManagedException(
                            "System.Net.ProtocolViolationException",
                            exc.message,
                            payload=exc.status,
                        ) from None
            if got == 0:  # EOF before a full request
                if conn.request is None:
                    conn.error_status = 400
                    raise ManagedException(
                        "System.Net.ProtocolViolationException",
                        "connection closed before a complete request",
                        payload=400,
                    )
                break
            if expected is not None and received >= expected:
                break
        return 0 if conn.request.method == "GET" else 1

    def do_get(self, conn_id: int):
        """Serve a GET: open + read + close the file (timed), then send
        the response through the socket."""
        conn = self._conn(conn_id)
        request = conn.request
        path = self.server.resolve_path(request.path)
        t0 = self.engine.now
        try:
            stream = yield from FileStream.open(
                self.fs, path, FileMode.OPEN, retrier=self.server.retrier)
        except FileNotFound:
            yield from self._respond(conn, HttpResponse(404), read_time=None)
            return
        except (StorageError, RetryExhausted):
            # The storage layer is misbehaving beyond what retries can
            # absorb; degrade to 503 instead of killing the worker.
            yield from self._respond(conn, HttpResponse(503), read_time=None)
            return
        try:
            nbytes = yield from stream.read_to_end(
                chunk=self.server.config.file_chunk)
            yield from stream.close()
        except (StorageError, RetryExhausted):
            yield from self._respond(conn, HttpResponse(503), read_time=None)
            return
        read_time = self.engine.now - t0
        yield from self._respond(
            conn, HttpResponse(200, body_bytes=nbytes), read_time=read_time
        )

    def do_post(self, conn_id: int):
        """Serve a POST: write the body through a StreamWriter (timed),
        then acknowledge.  The paper's scheme writes to a fresh
        randomly-named file; with ``keyed_writes`` the body lands at
        the request path itself (``FileMode.CREATE`` overwrites), the
        contract replicated cluster nodes rely on."""
        conn = self._conn(conn_id)
        request = conn.request
        if self.server.config.keyed_writes:
            path = self.server.resolve_path(request.path)
        else:
            path = self.server.new_upload_path()
        t0 = self.engine.now
        try:
            stream = yield from FileStream.open(self.fs, path, FileMode.CREATE)
            writer = StreamWriter(stream, buffer_size=self.server.config.file_chunk)
            yield from writer.write(request.body_bytes)
            yield from writer.flush()
            # Uploaded data is made durable before acknowledging — this is
            # why the paper's writes come out slower than its reads.
            yield from self.fs.sync(stream.handle)
            yield from stream.close()
        except (StorageError, RetryExhausted):
            yield from self._respond(conn, HttpResponse(503), write_time=None)
            return
        write_time = self.engine.now - t0
        yield from self._respond(
            conn, HttpResponse(201), write_time=write_time
        )

    def send_error(self, conn_id: int):
        """Report a malformed request back to the client."""
        conn = self.connections.get(conn_id)
        if conn is None:
            # Already aborted (e.g. the connection reset mid-receive and
            # the failure was recorded); nothing left to answer.
            yield self.engine.timeout(0.0)
            return
        status = conn.error_status or 400
        yield from self._respond(conn, HttpResponse(status))

    # -- shared response path ---------------------------------------------------

    def _abort(self, conn: Connection, reason: str) -> None:
        """Account for a request that dies without a response."""
        self.metrics.record_failure(reason)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("http.aborted", "webserver", tid=conn.conn_id,
                           reason=reason, arch=self.server.ARCHITECTURE)
        self.connections.pop(conn.conn_id, None)

    def _respond(
        self,
        conn: Connection,
        response: HttpResponse,
        read_time: Optional[float] = None,
        write_time: Optional[float] = None,
    ):
        deadline = self.server.config.request_deadline
        if (deadline is not None and conn.started_at is not None
                and self.engine.now - conn.started_at > deadline
                and response.status < 400):
            # Too late to be useful: degrade the answer to 503 so the
            # client can tell an overloaded server from a slow file.
            self.server.deadline_exceeded.add()
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant("server.deadline_exceeded", "webserver",
                               tid=conn.conn_id,
                               elapsed=self.engine.now - conn.started_at,
                               arch=self.server.ARCHITECTURE)
            response = HttpResponse(503)
        try:
            yield from conn.socket.send(
                response.wire_bytes, payload=response.header_text())
            yield from conn.socket.close()
        except ConnectionReset:
            self._abort(conn, "reset_during_send")
            return
        request = conn.request
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.complete(
                f"http.{request.method.lower()}" if request else "http.error",
                "webserver",
                conn.started_at if conn.started_at is not None else conn.accepted_at,
                tid=conn.conn_id,
                path=request.path if request else "?",
                status=response.status,
                data_bytes=response.body_bytes,
                arch=self.server.ARCHITECTURE,
            )
        self.metrics.record(
            RequestRecord(
                index=self.metrics.count + 1,
                method=request.method if request else "?",
                path=request.path if request else "?",
                status=response.status,
                data_bytes=(
                    response.body_bytes
                    if request is None or request.method == "GET"
                    else request.body_bytes
                ),
                read_time=read_time,
                write_time=write_time,
                response_time=self.engine.now - (conn.started_at or conn.accepted_at),
            )
        )
        del self.connections[conn.conn_id]

"""HTTP/1.0 message text: building and parsing.

The server "parses the incoming data for request type and file name";
we build real request/response text so parsing is genuine and message
byte counts are self-consistent.  Bodies are carried as byte *counts*
(the simulation does not materialize payload bytes); the wire size of
a message is ``len(header text) + body_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import HttpError

__all__ = ["HttpRequest", "HttpResponse", "parse_request", "REASON_PHRASES"]

REASON_PHRASES: Dict[int, str] = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_SUPPORTED_METHODS = ("GET", "POST")


@dataclass(frozen=True)
class HttpRequest:
    """One request: method + path + body size."""

    method: str
    path: str
    body_bytes: int = 0

    def __post_init__(self) -> None:
        if self.method not in _SUPPORTED_METHODS:
            raise HttpError(405, f"unsupported method {self.method!r}")
        if not self.path.startswith("/"):
            raise HttpError(400, f"path must be absolute, got {self.path!r}")
        if self.body_bytes < 0:
            raise HttpError(400, f"negative body size: {self.body_bytes}")
        if self.method == "GET" and self.body_bytes:
            raise HttpError(400, "GET must not carry a body")

    def header_text(self) -> str:
        lines = [f"{self.method} {self.path} HTTP/1.0"]
        if self.method == "POST":
            lines.append(f"Content-Length: {self.body_bytes}")
        lines.append("")
        lines.append("")
        return "\r\n".join(lines)

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire: header text + body."""
        return len(self.header_text()) + self.body_bytes


@dataclass(frozen=True)
class HttpResponse:
    """One response: status + body size."""

    status: int
    body_bytes: int = 0

    def __post_init__(self) -> None:
        if self.status not in REASON_PHRASES:
            raise HttpError(500, f"unknown status {self.status}")
        if self.body_bytes < 0:
            raise HttpError(500, f"negative body size: {self.body_bytes}")

    def header_text(self) -> str:
        return (
            f"HTTP/1.0 {self.status} {REASON_PHRASES[self.status]}\r\n"
            f"Content-Length: {self.body_bytes}\r\n\r\n"
        )

    @property
    def wire_bytes(self) -> int:
        return len(self.header_text()) + self.body_bytes


def parse_request(text: str) -> HttpRequest:
    """Parse request header text back into an :class:`HttpRequest`.

    Raises :class:`~repro.errors.HttpError` with an HTTP status code
    on malformed input (the server converts these to error responses).
    """
    if not text:
        raise HttpError(400, "empty request")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, path, version = parts
    if not version.startswith("HTTP/"):
        raise HttpError(400, f"bad version {version!r}")
    if method not in _SUPPORTED_METHODS:
        raise HttpError(405, f"unsupported method {method!r}")
    body = 0
    for line in lines[1:]:
        if not line:
            break
        if ":" not in line:
            raise HttpError(400, f"malformed header {line!r}")
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                body = int(value.strip())
            except ValueError:
                raise HttpError(400, f"bad Content-Length {value!r}") from None
    return HttpRequest(method=method, path=path, body_bytes=body)

"""HTTP client side: issues GET/POST requests over the simulated LAN."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import HttpError
from repro.io import Network
from repro.webserver.httpmsg import HttpRequest
from repro.units import to_ms

__all__ = ["ClientResult", "HttpClient"]


@dataclass(frozen=True)
class ClientResult:
    """Client-observed outcome of one request."""

    method: str
    path: str
    status: int
    body_bytes: int
    elapsed: float  # connect → full response received (seconds)

    @property
    def elapsed_ms(self) -> float:
        return to_ms(self.elapsed)


def _parse_response_header(text: str) -> "tuple[int, int]":
    """(status, content_length) from response header text."""
    lines = text.split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HttpError(500, f"malformed status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpError(500, f"bad status {parts[1]!r}") from None
    length = 0
    for line in lines[1:]:
        if not line:
            break
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    return status, length


class HttpClient:
    """A simple HTTP/1.0 client (one connection per request).

    ``retrier`` (a :class:`repro.faults.Retrier`) makes each request
    retry on :class:`~repro.errors.ConnectionReset` — a dropped or
    refused connection is re-issued on a fresh socket under the
    retrier's backoff policy, the way a real browser retries.
    """

    def __init__(self, network: Network, host: str = "localhost",
                 port: int = 5050, retrier=None) -> None:
        self.network = network
        self.host = host
        self.port = port
        self.retrier = retrier

    def request(self, req: HttpRequest):
        """Generator: issue one request; returns a :class:`ClientResult`."""
        if self.retrier is not None:
            result = yield from self.retrier.call(
                lambda: self._request_once(req),
                op=f"http.{req.method.lower()}")
            return result
        result = yield from self._request_once(req)
        return result

    def _request_once(self, req: HttpRequest):
        """Generator: one attempt on a fresh connection."""
        engine = self.network.engine
        t0 = engine.now
        socket = yield from self.network.connect(self.host, self.port)
        yield from socket.send(req.wire_bytes, payload=req.header_text())

        header_text: Optional[str] = None
        status = 0
        expected = None
        received = 0
        while True:
            got = yield from socket.receive(8192)
            received += got
            if header_text is None:
                payloads = socket.take_payloads()
                if payloads:
                    header_text = payloads[0]
                    status, content_length = _parse_response_header(header_text)
                    expected = len(header_text) + content_length
            if got == 0:
                break
            if expected is not None and received >= expected:
                break
        if header_text is None:
            raise HttpError(500, "connection closed before response header")
        yield from socket.close()
        body = received - len(header_text)
        return ClientResult(
            method=req.method,
            path=req.path,
            status=status,
            body_bytes=max(0, body),
            elapsed=engine.now - t0,
        )

    def get(self, path: str):
        """Generator: GET ``path``."""
        result = yield from self.request(HttpRequest("GET", path))
        return result

    def post(self, path: str, nbytes: int):
        """Generator: POST ``nbytes`` of data to ``path``."""
        result = yield from self.request(HttpRequest("POST", path, body_bytes=nbytes))
        return result

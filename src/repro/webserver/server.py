"""The multithreaded web server.

Structure follows §4.1 exactly:

* the server "starts listening on port 5050 using TcpListener class";
* the main (accept) thread loops on ``AcceptSocket()`` and creates a
  new managed thread per connection, invoking ``StartListen()``;
* ``StartListen`` receives and parses the request and dispatches to
  ``doGet``/``doPost``.

``StartListen``/``doGet``/``doPost`` are CIL method bodies run by the
VM, so the first request pays JIT compilation for the whole handler
chain — the warm-up the paper measures in Table 6 / Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cli import AssemblyBuilder, CliRuntime, ManagedThread, MethodBuilder
from repro.errors import ConnectionReset, ReproError
from repro.io import FileSystem, Network, TcpListener
from repro.rng import SeededStreams
from repro.sim import Counter, Engine
from repro.webserver.handlers import Connection, RequestHandlers
from repro.webserver.httpmsg import HttpResponse
from repro.webserver.metrics import ServerMetrics

__all__ = ["WebServerConfig", "WebServer"]


@dataclass(frozen=True)
class WebServerConfig:
    """Server knobs (defaults follow the paper).

    The three graceful-degradation knobs default to off (``None``),
    preserving the paper's unbounded server:

    * ``max_concurrency`` — cap on simultaneously-live worker threads;
      beyond it, new connections are *shed* with an immediate 503
      instead of spawning a worker.
    * ``accept_backlog`` — bound on the listener's accept queue;
      overflowing connects are refused (the client sees a reset).
    * ``request_deadline`` — per-request budget in simulated seconds;
      a success that misses it is downgraded to 503 at response time.
    """

    host: str = "localhost"
    port: int = 5050
    docroot: str = "/www"
    upload_dir: str = "/www/uploads"
    file_chunk: int = 8192
    seed: int = 0
    max_concurrency: Optional[int] = None
    accept_backlog: Optional[int] = None
    request_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not (0 < self.port < 65536):
            raise ReproError(f"bad port {self.port}")
        if self.file_chunk < 1:
            raise ReproError("file_chunk must be >= 1")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ReproError("max_concurrency must be >= 1 or None")
        if self.accept_backlog is not None and self.accept_backlog < 1:
            raise ReproError("accept_backlog must be >= 1 or None")
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ReproError("request_deadline must be positive or None")


def build_handler_methods():
    """The CIL handler chain: StartListen dispatches to DoGet/DoPost/
    SendError, each of which enters the class library."""
    do_get = (
        MethodBuilder("DoGet")
        .arg("conn")
        .ldarg("conn").call_intrinsic("Http.DoGet", 1, False)
        .ret()
        .build()
    )
    do_post = (
        MethodBuilder("DoPost")
        .arg("conn")
        .ldarg("conn").call_intrinsic("Http.DoPost", 1, False)
        .ret()
        .build()
    )
    send_error = (
        MethodBuilder("SendError")
        .arg("conn")
        .ldarg("conn").call_intrinsic("Http.SendError", 1, False)
        .ret()
        .build()
    )
    start_listen = (
        MethodBuilder("StartListen")
        .arg("conn").local("m")
        # Receiving/parsing runs in a protected region: a malformed
        # request surfaces as System.Net.ProtocolViolationException
        # and lands in the catch block below.
        .begin_try()
        .ldarg("conn").call_intrinsic("Http.ReceiveRequest", 1, True).stloc("m")
        .end_try("bad", catches="System.Net.")
        .ldloc("m").ldc(1).ceq().brtrue("post")
        .ldarg("conn").call(do_get).ret()
        .label("post").ldarg("conn").call(do_post).ret()
        .label("bad").pop().ldarg("conn").call(send_error).ret()
        .build()
    )
    return start_listen, do_get, do_post, send_error


class WebServer:
    """One server instance bound to a runtime, file system and network."""

    def __init__(
        self,
        engine: Engine,
        runtime: CliRuntime,
        fs: FileSystem,
        network: Network,
        config: Optional[WebServerConfig] = None,
        retrier=None,
    ) -> None:
        self.engine = engine
        self.runtime = runtime
        self.fs = fs
        self.network = network
        self.config = config or WebServerConfig()
        # Optional repro.faults.Retrier: GET file opens/reads run under
        # its policy so transient storage faults do not kill workers.
        self.retrier = retrier
        self.metrics = ServerMetrics()
        self.handlers = RequestHandlers(self)
        self.listener = TcpListener(network, self.config.host, self.config.port,
                                    backlog_limit=self.config.accept_backlog)
        self.threads_spawned = Counter("server.threads")
        self.shed = Counter("server.shed")
        self.deadline_exceeded = Counter("server.deadline_exceeded")
        reg = engine.metrics
        self.metrics.bind(reg, server=self.config.host)
        for counter in (self.threads_spawned, self.shed,
                        self.deadline_exceeded):
            reg.register(counter.name, counter, server=self.config.host)
        self._threads: List[ManagedThread] = []
        self._rng = SeededStreams(self.config.seed).get("post-file-names")
        self._started = False

        runtime.register_intrinsics(
            {
                "Http.ReceiveRequest": self.handlers.receive_request,
                "Http.DoGet": self.handlers.do_get,
                "Http.DoPost": self.handlers.do_post,
                "Http.SendError": self.handlers.send_error,
            }
        )
        start_listen, do_get, do_post, send_error = build_handler_methods()
        ab = AssemblyBuilder("WebServerApp")
        for method in (start_listen, do_get, do_post, send_error):
            ab.add_method("Work", method)
        self.assembly = ab.build()
        self._start_listen = start_listen

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        """Generator: load the handler assembly and begin accepting.

        The accept loop is the server's main thread: it blocks on
        ``AcceptSocket()`` and spawns one managed thread per incoming
        connection.
        """
        if self._started:
            raise ReproError("server already started")
        yield from self.runtime.load_assembly(self.assembly)
        self.listener.start()
        self.engine.process(self._accept_loop(), name="webserver.main", daemon=True)
        self._started = True

    def stop(self) -> None:
        """Stop accepting new connections (in-flight requests finish)."""
        self.listener.stop()

    def _accept_loop(self):
        while True:
            socket = yield from self.listener.accept_socket()
            limit = self.config.max_concurrency
            if limit is not None and self.active_threads >= limit:
                # Load shedding: answer 503 from the accept thread
                # (cheap, no managed worker) so the client backs off
                # instead of queueing behind saturated workers.
                self.engine.process(self._shed_connection(socket),
                                    name="webserver.shed", daemon=True)
                continue
            conn = Connection(socket, accepted_at=self.engine.now)
            conn_id = self.handlers.register(conn)
            thread = self.runtime.create_thread(
                self._start_listen, [conn_id], name=f"worker-{conn_id}"
            )
            thread.start()
            self._threads.append(thread)
            self.threads_spawned.add()

    def _shed_connection(self, socket):
        """Generator: turn away one connection with an immediate 503."""
        self.shed.add()
        self.metrics.record_failure("shed")
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("server.shed", "webserver",
                           active=self.active_threads)
        response = HttpResponse(503)
        try:
            yield from socket.send(response.wire_bytes,
                                   payload=response.header_text())
            yield from socket.close()
        except ConnectionReset:
            pass  # the client gave up first; the shed is already counted

    # -- path helpers ------------------------------------------------------------

    def resolve_path(self, url_path: str) -> str:
        """Map a URL path onto the simulated file system."""
        return self.config.docroot + url_path

    def new_upload_path(self) -> str:
        """A fresh random-number file name for POST data (the paper's
        no-synchronization-needed scheme)."""
        while True:
            name = f"{self.config.upload_dir}/{int(self._rng.integers(0, 2**31)):010d}.dat"
            if not self.fs.exists(name):
                return name

    @property
    def active_threads(self) -> int:
        return sum(1 for t in self._threads if t.is_alive)

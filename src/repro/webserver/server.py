"""The thread-per-connection web server (the paper's design).

Structure follows §4.1 exactly:

* the server "starts listening on port 5050 using TcpListener class";
* the main (accept) thread loops on ``AcceptSocket()`` and creates a
  new managed thread per connection, invoking ``StartListen()``;
* ``StartListen`` receives and parses the request and dispatches to
  ``doGet``/``doPost``.

``StartListen``/``doGet``/``doPost`` are CIL method bodies run by the
VM, so the first request pays JIT compilation for the whole handler
chain — the warm-up the paper measures in Table 6 / Figure 6.

Everything that is not the threading decision (protocol handling,
shedding/deadline semantics, metrics, path mapping) lives in the
shared :class:`~repro.webserver.architecture.ServerHost` base; the
event-driven alternative is
:class:`~repro.webserver.eventloop.EventLoopServer`.  See
``docs/webserver.md`` for the architecture comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cli import ManagedThread, MethodBuilder
from repro.errors import ReproError
from repro.sim import Counter
from repro.webserver.architecture import ServerHost
from repro.webserver.handlers import Connection

__all__ = ["WebServerConfig", "ThreadPerConnectionServer", "WebServer",
           "build_handler_methods"]


@dataclass(frozen=True)
class WebServerConfig:
    """Server knobs, shared by every architecture (defaults follow the
    paper's unbounded single-host setup).

    Attributes
    ----------
    host, port:
        Listening endpoint on the simulated LAN (the paper's
        ``localhost:5050``).
    docroot:
        File-system prefix URL paths map onto (``GET /x`` reads
        ``{docroot}/x``).
    upload_dir:
        Directory POST bodies land in, under random-number file names
        (the paper's no-synchronization-needed scheme).
    file_chunk:
        Read/write granularity (bytes) for the ``doGet``/``doPost``
        file streaming loops.
    seed:
        Root seed for the server's private RNG streams (upload names).
    keyed_writes:
        When True, POST bodies are stored at the *request path* (under
        ``docroot``) instead of a fresh random upload name — the
        storage contract a replicated cluster needs, where every
        replica of a key must hold the same file at the same path and
        a re-write of the key overwrites in place.  Defaults to False:
        the paper's no-synchronization random-name scheme.

    The three graceful-degradation knobs default to off (``None``),
    preserving the paper's unbounded server.  Their *protocol-level*
    behaviour is identical across architectures; only the resource
    they protect differs:

    max_concurrency:
        Cap on simultaneously-served connections (worker threads on
        the threaded server, loop tasks on the event-driven one);
        beyond it, new connections are *shed* with an immediate 503
        instead of being admitted.
    accept_backlog:
        Bound on the listener's accept queue; overflowing connects
        are refused (the client sees a reset).
    request_deadline:
        Per-request budget in simulated seconds; a success that
        misses it is downgraded to 503 at response time.
    """

    host: str = "localhost"
    port: int = 5050
    docroot: str = "/www"
    upload_dir: str = "/www/uploads"
    file_chunk: int = 8192
    seed: int = 0
    keyed_writes: bool = False
    max_concurrency: Optional[int] = None
    accept_backlog: Optional[int] = None
    request_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not (0 < self.port < 65536):
            raise ReproError(f"bad port {self.port}")
        if self.file_chunk < 1:
            raise ReproError("file_chunk must be >= 1")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ReproError("max_concurrency must be >= 1 or None")
        if self.accept_backlog is not None and self.accept_backlog < 1:
            raise ReproError("accept_backlog must be >= 1 or None")
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ReproError("request_deadline must be positive or None")


def build_handler_methods():
    """The CIL handler chain: StartListen dispatches to DoGet/DoPost/
    SendError, each of which enters the class library."""
    do_get = (
        MethodBuilder("DoGet")
        .arg("conn")
        .ldarg("conn").call_intrinsic("Http.DoGet", 1, False)
        .ret()
        .build()
    )
    do_post = (
        MethodBuilder("DoPost")
        .arg("conn")
        .ldarg("conn").call_intrinsic("Http.DoPost", 1, False)
        .ret()
        .build()
    )
    send_error = (
        MethodBuilder("SendError")
        .arg("conn")
        .ldarg("conn").call_intrinsic("Http.SendError", 1, False)
        .ret()
        .build()
    )
    start_listen = (
        MethodBuilder("StartListen")
        .arg("conn").local("m")
        # Receiving/parsing runs in a protected region: a malformed
        # request surfaces as System.Net.ProtocolViolationException
        # and lands in the catch block below.
        .begin_try()
        .ldarg("conn").call_intrinsic("Http.ReceiveRequest", 1, True).stloc("m")
        .end_try("bad", catches="System.Net.")
        .ldloc("m").ldc(1).ceq().brtrue("post")
        .ldarg("conn").call(do_get).ret()
        .label("post").ldarg("conn").call(do_post).ret()
        .label("bad").pop().ldarg("conn").call(send_error).ret()
        .build()
    )
    return start_listen, do_get, do_post, send_error


class ThreadPerConnectionServer(ServerHost):
    """One managed thread per connection (the paper's §4.1 design).

    The accept loop is its own simulation process; every admitted
    connection spawns a :class:`~repro.cli.ManagedThread` (paying the
    CLR thread-start overhead) whose entry point is the CIL
    ``StartListen`` method.  Memory proxy: ``1 + active_threads``
    simulated processes.
    """

    ARCHITECTURE = "thread"

    def __init__(self, engine, runtime, fs, network, config=None,
                 retrier=None, labels=None) -> None:
        super().__init__(engine, runtime, fs, network, config, retrier,
                         labels=labels)
        #: Worker threads created over the server's lifetime (one per
        #: admitted connection; kept alongside ``server.connections``
        #: because threads are this architecture's defining cost).
        self.threads_spawned = Counter("server.threads")
        engine.metrics.register(self.threads_spawned.name,
                                self.threads_spawned,
                                **self.metric_labels)
        self._threads: List[ManagedThread] = []

    # -- architecture hooks -------------------------------------------------

    def _begin_accepting(self) -> None:
        self.engine.process(self._accept_loop(), name="webserver.main",
                            daemon=True)

    @property
    def active_threads(self) -> int:
        """Worker threads still serving a connection."""
        return sum(1 for t in self._threads if t.is_alive)

    @property
    def live_workers(self) -> int:
        return self.active_threads

    @property
    def live_processes(self) -> int:
        """The accept-loop process plus one process per live worker."""
        return 1 + self.active_threads

    # -- the accept loop ---------------------------------------------------

    def _accept_loop(self):
        while True:
            socket = yield from self.listener.accept_socket()
            if self._should_shed():
                # Load shedding: answer 503 from the accept thread
                # (cheap, no managed worker) so the client backs off
                # instead of queueing behind saturated workers.
                self.engine.process(self._shed_connection(socket),
                                    name="webserver.shed", daemon=True)
                continue
            conn = Connection(socket, accepted_at=self.engine.now)
            conn_id = self.handlers.register(conn)
            thread = self.runtime.create_thread(
                self._start_listen, [conn_id], name=f"worker-{conn_id}"
            )
            thread.start()
            self._threads.append(thread)
            self.threads_spawned.add()
            self._note_dispatch()


#: Historical name: the paper's server was the only one before the
#: event-driven architecture landed.
WebServer = ThreadPerConnectionServer

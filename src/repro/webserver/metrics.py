"""Per-request server-side measurements (the shape of Tables 5–6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim import Tally
from repro.units import to_ms

__all__ = ["RequestRecord", "ServerMetrics"]


@dataclass(frozen=True)
class RequestRecord:
    """One served request.

    ``read_time`` / ``write_time`` are the paper's measured quantities:
    the file I/O inside ``doGet`` (filestream creation + read + close)
    or ``doPost`` (file creation + write + close), in simulated
    seconds.  ``response_time`` spans receive-to-send completion.
    """

    index: int
    method: str
    path: str
    status: int
    data_bytes: int
    read_time: Optional[float]
    write_time: Optional[float]
    response_time: float

    @property
    def read_ms(self) -> Optional[float]:
        return None if self.read_time is None else to_ms(self.read_time)

    @property
    def write_ms(self) -> Optional[float]:
        return None if self.write_time is None else to_ms(self.write_time)

    @property
    def response_ms(self) -> float:
        return to_ms(self.response_time)


class _MillisecondView:
    """Read-only registry adapter presenting a seconds :class:`Tally`
    in milliseconds.

    Quacks like a tally (``count``/``total``/``mean``/``minimum``/
    ``maximum``/``percentile``) so :meth:`MetricsRegistry.snapshot`
    summarizes it structurally; analysis code can call
    ``percentile(q)`` for ms-unit distribution stats.
    """

    __slots__ = ("_tally",)

    def __init__(self, tally: Tally) -> None:
        self._tally = tally

    @property
    def count(self) -> int:
        return self._tally.count

    @property
    def total(self) -> float:
        return to_ms(self._tally.total)

    @property
    def mean(self) -> float:
        return to_ms(self._tally.mean)

    @property
    def minimum(self) -> float:
        return to_ms(self._tally.minimum)

    @property
    def maximum(self) -> float:
        return to_ms(self._tally.maximum)

    def percentile(self, q: float) -> float:
        return to_ms(self._tally.percentile(q))


class ServerMetrics:
    """Accumulates request records and summary tallies."""

    def __init__(self) -> None:
        self.requests: List[RequestRecord] = []
        self.read_times = Tally("server.read")
        self.write_times = Tally("server.write")
        self.response_times = Tally("server.response")
        self.errors = 0
        self.failures = 0
        self.failure_reasons: dict = {}

    def bind(self, registry, **labels) -> None:
        """Register the tallies in an engine's
        :class:`~repro.obs.MetricsRegistry` so server latencies appear
        in ``snapshot()`` like every other collector.

        Each tally is registered twice: raw seconds under its own name
        (``server.read`` ...) and a millisecond view under the labeled
        ``webserver.*_ms`` names the analysis layer consumes.
        """
        views = (
            (self.read_times, "webserver.read_ms"),
            (self.write_times, "webserver.write_ms"),
            (self.response_times, "webserver.response_ms"),
        )
        for tally, ms_name in views:
            registry.register(tally.name, tally, unit="s", **labels)
            registry.register(ms_name, _MillisecondView(tally),
                              unit="ms", **labels)
        registry.gauge("webserver.errors", lambda: self.errors, **labels)
        registry.gauge("webserver.failures", lambda: self.failures, **labels)

    def record_failure(self, reason: str = "aborted") -> None:
        """Count a request that died without producing a response
        (connection reset mid-receive/mid-send, shed before parsing).

        These never reach :meth:`record`, but they still show in the
        ``webserver.errors`` gauge instead of vanishing without a
        metrics trace; ``failure_reasons`` breaks them down.
        """
        self.errors += 1
        self.failures += 1
        self.failure_reasons[reason] = self.failure_reasons.get(reason, 0) + 1

    def record(self, record: RequestRecord) -> None:
        self.requests.append(record)
        if record.read_time is not None:
            self.read_times.record(record.read_time)
        if record.write_time is not None:
            self.write_times.record(record.write_time)
        self.response_times.record(record.response_time)
        if record.status >= 400:
            self.errors += 1

    @property
    def count(self) -> int:
        return len(self.requests)

    def gets(self) -> List[RequestRecord]:
        return [r for r in self.requests if r.method == "GET"]

    def posts(self) -> List[RequestRecord]:
        return [r for r in self.requests if r.method == "POST"]

"""Multi-client workload generation.

"The number of threads increases with the increasing number of
clients" — this module drives concurrent clients with seeded think
times and a GET/POST mix, for the scaling studies beyond the paper's
single-client tables.

Two arrival processes are supported:

``"closed"`` (default)
    N clients in a think/request loop — the paper's model, where load
    self-limits because each client waits for its response before
    issuing the next request.

``"open"``
    Requests arrive by a Poisson process at ``arrival_rate`` per
    second regardless of how the server is doing, each on a fresh
    one-shot client.  Open arrivals do not back off, which is what
    makes overload (and the ``max_concurrency``/``accept_backlog``
    degradation knobs) observable.

Client-side resilience: with ``retry`` set to a
:class:`repro.faults.RetryPolicy`, each request runs under a
:class:`~repro.faults.Retrier` — a reset or refused connection is
re-issued on a fresh socket under the policy's backoff.  A request
that still fails after the budget is counted as *aborted* (the
workload keeps going; one dead request is data, not a crash), and the
:class:`WorkloadResult` carries the full retry/abort accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConnectionReset, HttpError, ReproError, RetryExhausted
from repro.rng import SeededStreams
from repro.sim import Tally
from repro.units import to_ms
from repro.webserver.client import ClientResult
from repro.webserver.host import WebServerHost

__all__ = ["WorkloadConfig", "WorkloadResult", "WorkloadGenerator"]

#: Exceptions that abort one request without killing the workload.
_ABORTABLE = (ConnectionReset, RetryExhausted, HttpError)


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload parameters.

    Attributes
    ----------
    num_clients:
        Concurrent clients (closed loop) or a factor of the total
        request count (open loop).
    requests_per_client:
        Requests each client issues; total requests is always
        ``num_clients * requests_per_client`` in both arrival modes.
    get_fraction:
        Probability a request is a GET of a random docroot file; the
        rest are POSTs.
    mean_think_time:
        Mean of the exponential think time between a closed-loop
        client's requests (seconds; 0 disables thinking).
    post_size_range:
        Inclusive ``(lo, hi)`` bounds for POST body sizes (bytes).
    seed:
        Root seed for every stream the workload draws from.
    arrival:
        ``"closed"`` or ``"open"`` — see the module docstring.
    arrival_rate:
        Open loop only: mean arrivals per simulated second.
    retry:
        Optional :class:`repro.faults.RetryPolicy`; requests that die
        on a reset/refused connection are re-issued under it.
    """

    num_clients: int = 4
    requests_per_client: int = 10
    get_fraction: float = 0.8
    mean_think_time: float = 0.01
    post_size_range: Tuple[int, int] = (1024, 65536)
    seed: int = 0
    arrival: str = "closed"
    arrival_rate: float = 200.0
    retry: Optional[object] = None

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ReproError("num_clients must be >= 1")
        if self.requests_per_client < 1:
            raise ReproError("requests_per_client must be >= 1")
        if not (0.0 <= self.get_fraction <= 1.0):
            raise ReproError("get_fraction must be in [0, 1]")
        if self.mean_think_time < 0:
            raise ReproError("mean_think_time must be >= 0")
        lo, hi = self.post_size_range
        if lo < 0 or hi < lo:
            raise ReproError(f"bad post_size_range ({lo}, {hi})")
        if self.arrival not in ("closed", "open"):
            raise ReproError(
                f"arrival must be 'closed' or 'open', got {self.arrival!r}")
        if self.arrival == "open" and self.arrival_rate <= 0:
            raise ReproError("arrival_rate must be positive")


@dataclass
class WorkloadResult:
    """Aggregate outcome of one workload run."""

    results: List[ClientResult]
    latencies: Tally
    duration: float
    #: Managed worker threads the server spawned — the paper's cost
    #: axis.  0 on the event-loop architecture, which has none.
    threads_spawned: int
    #: Which server design served the run (``"thread"``/``"eventloop"``).
    architecture: str = "thread"
    #: Connections the server admitted into the handler chain.
    connections_accepted: int = 0
    #: High-water mark of live simulated server processes (memory proxy).
    peak_processes: int = 0
    #: Requests abandoned after exhausting retries (or, with no retry
    #: policy, on the first reset).
    aborted: int = 0
    #: Client re-attempts beyond each request's first try.
    retries: int = 0
    #: Requests that failed at least once but eventually got a response.
    recovered: int = 0
    #: Per-abort exception type names, for test/bench assertions.
    abort_reasons: List[str] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Completed requests (aborts excluded)."""
        return len(self.results)

    @property
    def attempted(self) -> int:
        """Requests issued, whether or not they completed."""
        return self.count + self.aborted

    @property
    def mean_latency_ms(self) -> float:
        return to_ms(self.latencies.mean)

    @property
    def throughput(self) -> float:
        """Completed requests per simulated second."""
        return self.count / self.duration if self.duration > 0 else 0.0

    @property
    def error_count(self) -> int:
        return sum(1 for r in self.results if r.status >= 400)


class WorkloadGenerator:
    """Drives a :class:`WebServerHost` with concurrent clients."""

    def __init__(self, host: WebServerHost, config: Optional[WorkloadConfig] = None) -> None:
        self.host = host
        self.config = config or WorkloadConfig()
        self._streams = SeededStreams(self.config.seed)
        self.retrier = None
        if self.config.retry is not None:
            from repro.faults import Retrier

            self.retrier = Retrier(
                host.engine, self.config.retry, name="workload.retry",
                category="workload",
                rng=self._streams.get("client-retry-jitter"),
            )

    def run(self) -> WorkloadResult:
        cfg = self.config
        engine = self.host.engine
        paths = sorted(self.host.config.files)
        results: List[ClientResult] = []
        latencies = Tally("workload.latency")
        aborted: List[str] = []
        start = engine.now

        def one_request(client, rng):
            """Generator: issue one request from the GET/POST mix,
            recording its outcome (or its abort)."""
            if float(rng.uniform()) < cfg.get_fraction:
                path = paths[int(rng.integers(0, len(paths)))]
                factory = lambda: client.get(path)
            else:
                lo, hi = cfg.post_size_range
                nbytes = int(rng.integers(lo, hi + 1))
                factory = lambda: client.post("/uploads", nbytes)
            try:
                result = yield from factory()
            except _ABORTABLE as exc:
                aborted.append(type(exc).__name__)
                return
            results.append(result)
            latencies.record(result.elapsed)

        def client_loop(cid: int):
            rng = self._streams.get(f"client-{cid}")
            client = self.host.client(retrier=self.retrier)
            for _ in range(cfg.requests_per_client):
                think = float(rng.exponential(cfg.mean_think_time)) if cfg.mean_think_time else 0.0
                if think > 0:
                    yield engine.timeout(think)
                yield from one_request(client, rng)

        if cfg.arrival == "closed":
            procs = [
                engine.process(client_loop(cid), name=f"client-{cid}")
                for cid in range(cfg.num_clients)
            ]
        else:
            procs = self._open_arrivals(one_request)

        def waiter():
            yield engine.all_of(procs)

        engine.run_process(waiter())
        server = self.host.server
        retr = self.retrier
        return WorkloadResult(
            results=results,
            latencies=latencies,
            duration=engine.now - start,
            threads_spawned=getattr(
                getattr(server, "threads_spawned", None), "value", 0),
            architecture=server.ARCHITECTURE,
            connections_accepted=server.connections_accepted.value,
            peak_processes=server.peak_live_processes,
            aborted=len(aborted),
            retries=retr.retries.value if retr else 0,
            recovered=retr.recovered.value if retr else 0,
            abort_reasons=aborted,
        )

    def _open_arrivals(self, one_request):
        """Spawn the open-loop dispatcher; returns the single process a
        waiter must join (the dispatcher joins every request it fired,
        so joining it means every response has landed or aborted)."""
        cfg = self.config
        engine = self.host.engine
        total = cfg.num_clients * cfg.requests_per_client
        arrival_rng = self._streams.get("arrivals")
        mix_rng = self._streams.get("request-mix")

        def fire(rid: int):
            client = self.host.client(retrier=self.retrier)
            yield from one_request(client, mix_rng)

        def dispatcher():
            # Poisson arrivals: exponential inter-arrival gaps, every
            # request an independent one-shot client that never thinks.
            fired = []
            for rid in range(total):
                yield engine.timeout(
                    float(arrival_rng.exponential(1.0 / cfg.arrival_rate)))
                fired.append(engine.process(fire(rid), name=f"req-{rid}"))
            yield engine.all_of(fired)

        return [engine.process(dispatcher(), name="workload.arrivals")]

"""Multi-client workload generation.

"The number of threads increases with the increasing number of
clients" — this module drives N concurrent closed-loop clients with
seeded think times and a GET/POST mix, for the scaling studies beyond
the paper's single-client tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.rng import SeededStreams
from repro.sim import Tally
from repro.units import to_ms
from repro.webserver.client import ClientResult
from repro.webserver.host import WebServerHost

__all__ = ["WorkloadConfig", "WorkloadResult", "WorkloadGenerator"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Closed-loop workload parameters."""

    num_clients: int = 4
    requests_per_client: int = 10
    get_fraction: float = 0.8
    mean_think_time: float = 0.01
    post_size_range: Tuple[int, int] = (1024, 65536)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ReproError("num_clients must be >= 1")
        if self.requests_per_client < 1:
            raise ReproError("requests_per_client must be >= 1")
        if not (0.0 <= self.get_fraction <= 1.0):
            raise ReproError("get_fraction must be in [0, 1]")
        if self.mean_think_time < 0:
            raise ReproError("mean_think_time must be >= 0")
        lo, hi = self.post_size_range
        if lo < 0 or hi < lo:
            raise ReproError(f"bad post_size_range ({lo}, {hi})")


@dataclass
class WorkloadResult:
    """Aggregate outcome of one workload run."""

    results: List[ClientResult]
    latencies: Tally
    duration: float
    threads_spawned: int

    @property
    def count(self) -> int:
        return len(self.results)

    @property
    def mean_latency_ms(self) -> float:
        return to_ms(self.latencies.mean)

    @property
    def throughput(self) -> float:
        """Requests per simulated second."""
        return self.count / self.duration if self.duration > 0 else 0.0

    @property
    def error_count(self) -> int:
        return sum(1 for r in self.results if r.status >= 400)


class WorkloadGenerator:
    """Drives a :class:`WebServerHost` with concurrent clients."""

    def __init__(self, host: WebServerHost, config: Optional[WorkloadConfig] = None) -> None:
        self.host = host
        self.config = config or WorkloadConfig()

    def run(self) -> WorkloadResult:
        cfg = self.config
        engine = self.host.engine
        paths = sorted(self.host.config.files)
        streams = SeededStreams(cfg.seed)
        results: List[ClientResult] = []
        latencies = Tally("workload.latency")
        start = engine.now

        def client_loop(cid: int):
            rng = streams.get(f"client-{cid}")
            client = self.host.client()
            for _ in range(cfg.requests_per_client):
                think = float(rng.exponential(cfg.mean_think_time)) if cfg.mean_think_time else 0.0
                if think > 0:
                    yield engine.timeout(think)
                if float(rng.uniform()) < cfg.get_fraction:
                    path = paths[int(rng.integers(0, len(paths)))]
                    result = yield from client.get(path)
                else:
                    lo, hi = cfg.post_size_range
                    nbytes = int(rng.integers(lo, hi + 1))
                    result = yield from client.post("/uploads", nbytes)
                results.append(result)
                latencies.record(result.elapsed)

        procs = [
            engine.process(client_loop(cid), name=f"client-{cid}")
            for cid in range(cfg.num_clients)
        ]

        def waiter():
            yield engine.all_of(procs)

        engine.run_process(waiter())
        return WorkloadResult(
            results=results,
            latencies=latencies,
            duration=engine.now - start,
            threads_spawned=self.host.server.threads_spawned.value,
        )

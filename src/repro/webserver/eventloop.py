"""The event-driven web server: one process, many connections.

The paper's design (§4.1) spends a managed thread — and in this
simulator, a scheduled process — on every connection.  That is the
memory cost Pai et al.'s Flash and the epoll generation of servers
were built to avoid: one acceptor, non-blocking sockets, and a
readiness/completion event loop that multiplexes every in-flight
connection inside a single process.

:class:`EventLoopServer` is that design on the simulation kernel.  The
whole server — acceptor included — runs as **one**
:class:`~repro.sim.TaskLoop` driver process:

* the acceptor is a loop *task* pulling connections off the listener's
  accept queue;
* each admitted connection becomes a task driving the same CIL
  ``StartListen`` handler chain the threaded server runs
  (``runtime.invoke`` is a plain simulation generator, so a task can
  execute managed code directly — same JIT warm-up, same class-library
  costs, no CLR thread-start overhead);
* sheds are tasks too, so a saturated server refuses load without
  allocating anything that counts.

Protocol-level behaviour (status codes, shedding, deadline downgrade,
reset accounting) is inherited unchanged from
:class:`~repro.webserver.architecture.ServerHost`; clients cannot tell
the architectures apart except by latency and the server's resource
footprint.  ``live_processes`` is 1 regardless of open connections —
that single number is the architecture's whole argument, and the
``ext_arch`` experiment plots it.
"""

from __future__ import annotations

from repro.sim import TaskLoop
from repro.webserver.architecture import ServerHost
from repro.webserver.handlers import Connection

__all__ = ["EventLoopServer"]


class EventLoopServer(ServerHost):
    """Single-process event-driven server (acceptor + connection tasks
    multiplexed on one :class:`~repro.sim.TaskLoop`).

    Memory proxy: ``live_processes`` is exactly 1 however many
    connections are open; ``live_workers`` counts in-flight connection
    tasks (the quantity ``max_concurrency`` sheds against), and
    ``peak_tasks`` records the loop's high-water mark including the
    acceptor and any shed tasks.
    """

    ARCHITECTURE = "eventloop"

    def __init__(self, engine, runtime, fs, network, config=None,
                 retrier=None, labels=None) -> None:
        super().__init__(engine, runtime, fs, network, config, retrier,
                         labels=labels)
        self.loop = TaskLoop(engine, name="webserver.loop",
                             error_handler=self._on_task_error)
        # In-flight connection tasks (excludes the acceptor and sheds).
        self._in_flight = 0

    # -- architecture hooks -------------------------------------------------

    def _begin_accepting(self) -> None:
        self.loop.start(daemon=True)
        self.loop.spawn(self._acceptor(), label="acceptor")

    @property
    def live_workers(self) -> int:
        return self._in_flight

    @property
    def live_processes(self) -> int:
        """The loop's driver process — always 1, the point of the design."""
        return 1

    @property
    def peak_tasks(self) -> int:
        """High-water mark of concurrent loop tasks (acceptor included)."""
        return self.loop.peak_live

    # -- the event loop ----------------------------------------------------

    def _acceptor(self):
        """The accept task: admit, shed, or refuse — never block on a
        connection's I/O."""
        while True:
            socket = yield from self.listener.accept_socket()
            if self._should_shed():
                self.loop.spawn(self._shed_connection(socket),
                                label="shed")
                continue
            conn = Connection(socket, accepted_at=self.engine.now)
            conn_id = self.handlers.register(conn)
            self._in_flight += 1
            task = self.loop.spawn(
                self.runtime.invoke(self._start_listen, [conn_id]),
                label=f"conn-{conn_id}",
            )
            task.add_done_callback(self._connection_done)
            self._note_dispatch()

    def _connection_done(self, task) -> None:
        self._in_flight -= 1

    def _on_task_error(self, task) -> None:
        """A connection task died outside the managed catch blocks.
        One bad connection must not take the loop (and every other
        connection) down, but the failure is accounted."""
        self.metrics.record_failure("task_error")
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("server.task_error", "webserver",
                           task=task.label, error=repr(task.error),
                           arch=self.ARCHITECTURE)

"""Micro-benchmark: a multithreaded web server (paper §4).

"A main thread of the web server initializes the system by creating a
separate thread to handle each client connection. ... If the request
type is 'GET', then the required file is read and sent back to the
client.  When the request is 'POST', the data delivered from the
client is written to a file."

* :mod:`repro.webserver.httpmsg` — request/response text building and
  parsing (the handler "parses the incoming data for request type and
  file name").
* :mod:`repro.webserver.architecture` — the :class:`ServerHost`
  contract every server concurrency design implements (listener,
  CIL handler assembly, shedding/deadline semantics, metrics).
* :mod:`repro.webserver.server` — the paper's architecture:
  ``TcpListener`` on port 5050, ``AcceptSocket()``,
  thread-per-connection ``StartListen`` written as CIL and executed
  by the VM (JIT on first request — the Table 6 / Figure 6 warm-up
  effect).
* :mod:`repro.webserver.eventloop` — the alternative architecture: a
  single-process event-driven server multiplexing every connection
  on one :class:`~repro.sim.TaskLoop` (the ``ext_arch`` bench axis).
* :mod:`repro.webserver.handlers` — ``doGet``/``doPost`` class-library
  implementations, timing reads and writes with
  ``QueryPerformanceCounter`` semantics.
* :mod:`repro.webserver.client` / :mod:`repro.webserver.workload` —
  the client side and multi-client workload generation.
* :mod:`repro.webserver.host` — wires disk + fs + network + VM +
  server into one runnable benchmark environment.
* :mod:`repro.webserver.metrics` — per-request read/write/response
  time records (the layout of Tables 5–6).
"""

from repro.webserver.httpmsg import HttpRequest, HttpResponse, parse_request
from repro.webserver.metrics import RequestRecord, ServerMetrics
from repro.webserver.architecture import ServerHost
from repro.webserver.server import (
    ThreadPerConnectionServer,
    WebServer,
    WebServerConfig,
)
from repro.webserver.eventloop import EventLoopServer
from repro.webserver.host import (
    SERVER_ARCHITECTURES,
    WebServerHost,
    HostConfig,
)
from repro.webserver.client import HttpClient
from repro.webserver.workload import WorkloadConfig, WorkloadGenerator, WorkloadResult

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "parse_request",
    "RequestRecord",
    "ServerMetrics",
    "ServerHost",
    "ThreadPerConnectionServer",
    "EventLoopServer",
    "SERVER_ARCHITECTURES",
    "WebServer",
    "WebServerConfig",
    "WebServerHost",
    "HostConfig",
    "HttpClient",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WorkloadResult",
]

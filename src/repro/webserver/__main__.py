"""Command-line web-server load driver::

    python -m repro.webserver --clients 8 --requests 20
    python -m repro.webserver --profile commercial --get-fraction 0.5
    python -m repro.webserver --architecture eventloop \
        --telemetry-out series.jsonl

``--telemetry-out`` samples the server's metrics registry on simulated
time into a windowed series file (render with ``python -m repro.obs
timeline``); sampling never changes the simulated results.
"""

from __future__ import annotations

import argparse

from repro.cli.profiles import VM_PROFILES
from repro.webserver import (
    HostConfig,
    WebServerHost,
    WorkloadConfig,
    WorkloadGenerator,
)
from repro.webserver.host import SERVER_ARCHITECTURES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.webserver")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=10,
                        help="requests per client")
    parser.add_argument("--get-fraction", type=float, default=0.8)
    parser.add_argument("--think-ms", type=float, default=10.0,
                        help="mean client think time (ms)")
    parser.add_argument("--profile", choices=sorted(VM_PROFILES),
                        default="sscli", help="CLI VM cost profile")
    parser.add_argument("--architecture",
                        choices=sorted(SERVER_ARCHITECTURES),
                        default="thread",
                        help="server concurrency architecture "
                        "(default thread)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--telemetry-out", dest="telemetry_out",
                        metavar="PATH",
                        help="write windowed metric series sampled on "
                        "simulated time as deterministic JSONL")
    parser.add_argument("--telemetry-interval-ms",
                        dest="telemetry_interval_ms",
                        type=float, default=100.0, metavar="MS",
                        help="telemetry sampling interval in simulated "
                        "milliseconds (default 100)")
    args = parser.parse_args(argv)

    host = WebServerHost(HostConfig(vm_profile=args.profile,
                                    architecture=args.architecture))
    telemetry = None
    sampler = None
    if args.telemetry_out:
        from repro.obs import Telemetry, TelemetryConfig

        telemetry = Telemetry(TelemetryConfig(
            interval=args.telemetry_interval_ms * 1e-3))
        sampler = telemetry.attach(
            host.engine, architecture=args.architecture, node="server-0")
    result = WorkloadGenerator(
        host,
        WorkloadConfig(
            num_clients=args.clients,
            requests_per_client=args.requests,
            get_fraction=args.get_fraction,
            mean_think_time=args.think_ms * 1e-3,
            seed=args.seed,
        ),
    ).run()
    if sampler is not None:
        sampler.finish()

    print(f"vm profile      : {args.profile}")
    print(f"clients         : {args.clients} x {args.requests} requests")
    print(f"served          : {result.count} ({result.error_count} errors)")
    print(f"threads spawned : {result.threads_spawned}")
    print(f"duration        : {result.duration:.4f} simulated s")
    print(f"throughput      : {result.throughput:.1f} req/s")
    print(f"latency mean    : {result.mean_latency_ms:.3f} ms")
    print(f"latency p95     : {result.latencies.percentile(95) * 1e3:.3f} ms")
    print(f"latency max     : {result.latencies.maximum * 1e3:.3f} ms")
    reads = host.metrics.read_times
    if reads.count:
        print(f"server read mean: {reads.mean * 1e3:.4f} ms over {reads.count} GETs")
    writes = host.metrics.write_times
    if writes.count:
        print(f"server write mean: {writes.mean * 1e3:.4f} ms over {writes.count} POSTs")
    if telemetry is not None:
        n = telemetry.write(args.telemetry_out)
        print(f"telemetry       : {n} records -> {args.telemetry_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

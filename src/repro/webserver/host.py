"""One-stop environment: disk + file system + network + VM + server.

The benchmarks and examples need the whole stack wired consistently;
:class:`WebServerHost` owns that wiring and populates the document
root.  The default file population is the paper's three image files
(50607, 7501 and 14063 bytes, §4.2).

The server's *concurrency architecture* is a first-class knob:
``HostConfig.architecture`` selects an entry from
:data:`SERVER_ARCHITECTURES` — the paper's thread-per-connection
design (``"thread"``) or the single-process event-driven alternative
(``"eventloop"``).  Both run the identical CIL handler chain and obey
the identical protocol-level degradation rules; see
``docs/webserver.md`` for the comparison and the ``ext_arch``
experiment that sweeps this knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Type

from repro.cli import CliRuntime
from repro.cli.profiles import get_profile
from repro.errors import ReproError
from repro.io import CacheParams, FileSystem, FsParams, Network
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry, DiskParams
from repro.webserver.architecture import ServerHost
from repro.webserver.client import HttpClient
from repro.webserver.eventloop import EventLoopServer
from repro.webserver.server import ThreadPerConnectionServer, WebServerConfig

__all__ = ["HostConfig", "WebServerHost", "PAPER_IMAGE_FILES",
           "SERVER_ARCHITECTURES"]

#: §4.2: "The sizes of each file are 50607 bytes, 7501 bytes, and
#: 14063 bytes." (image files served by the benchmark)
PAPER_IMAGE_FILES: Dict[str, int] = {
    "/images/photo1.jpg": 50607,
    "/images/photo2.jpg": 7501,
    "/images/photo3.jpg": 14063,
}

#: Registry of server concurrency architectures, keyed by the name
#: used in :attr:`HostConfig.architecture`, metrics labels
#: (``architecture=``) and span attributes (``arch=``).
SERVER_ARCHITECTURES: Dict[str, Type[ServerHost]] = {
    ThreadPerConnectionServer.ARCHITECTURE: ThreadPerConnectionServer,
    EventLoopServer.ARCHITECTURE: EventLoopServer,
}


@dataclass(frozen=True)
class HostConfig:
    """Hardware/software stack configuration.

    Attributes
    ----------
    files:
        Document-root population as ``{url_path: size_bytes}``;
        defaults to the paper's three image files
        (:data:`PAPER_IMAGE_FILES`).
    cache_pages:
        Page-cache capacity of the server's file system (pages).
    fs_params, disk_params, disk_geometry:
        Cost models for the simulated file system and disk (see
        :mod:`repro.io` and :mod:`repro.storage`).
    server:
        The :class:`~repro.webserver.server.WebServerConfig` handed to
        the server — endpoint, docroot, and the graceful-degradation
        knobs (``max_concurrency``, ``accept_backlog``,
        ``request_deadline``).
    architecture:
        Which server concurrency design to build — a key of
        :data:`SERVER_ARCHITECTURES`: ``"thread"`` (the paper's
        thread-per-connection server, the default) or ``"eventloop"``
        (single-process event-driven).  The choice changes scheduling
        and resource footprint only, never protocol behaviour.
    vm_profile:
        The CLI implementation's cost profile (see
        :mod:`repro.cli.profiles`) — the paper's future-work
        comparison across virtual machines.
    tracer:
        Optional :class:`repro.obs.Tracer` shared by the whole stack.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; when set, a
        :class:`~repro.faults.FaultInjector` is armed against the disk
        and the network, and GET-side file I/O runs under ``retry``.
    retry:
        Optional :class:`repro.faults.RetryPolicy` for server-side
        file reads (defaults apply when ``fault_plan`` is set and this
        isn't).
    """

    files: Dict[str, int] = field(default_factory=lambda: dict(PAPER_IMAGE_FILES))
    cache_pages: int = 16384
    fs_params: FsParams = field(default_factory=FsParams)
    disk_params: DiskParams = field(default_factory=DiskParams)
    disk_geometry: DiskGeometry = field(default_factory=DiskGeometry)
    server: WebServerConfig = field(default_factory=WebServerConfig)
    architecture: str = "thread"
    vm_profile: str = "sscli"
    tracer: Optional[object] = None
    fault_plan: Optional[object] = None
    retry: Optional[object] = None

    def __post_init__(self) -> None:
        if self.architecture not in SERVER_ARCHITECTURES:
            raise ReproError(
                f"unknown server architecture {self.architecture!r}; "
                f"expected one of {sorted(SERVER_ARCHITECTURES)}"
            )


class WebServerHost:
    """Builds the full stack and starts the server.

    After construction the server is listening; use :meth:`client` and
    drive requests inside simulation processes, or the convenience
    :meth:`run_request_sequence`.  The concrete server type is
    ``SERVER_ARCHITECTURES[config.architecture]``.
    """

    def __init__(self, config: Optional[HostConfig] = None) -> None:
        self.config = config or HostConfig()
        cfg = self.config
        self.engine = Engine(tracer=cfg.tracer)
        self.engine.tracer.name_process("webserver")
        self.injector = None
        retrier = None
        if cfg.fault_plan is not None or cfg.retry is not None:
            from repro.faults import FaultInjector, Retrier
            from repro.rng import SeededStreams

            if cfg.fault_plan is not None:
                self.injector = FaultInjector(self.engine, cfg.fault_plan)
            seed = cfg.fault_plan.seed if cfg.fault_plan is not None else 0
            retrier = Retrier(
                self.engine, cfg.retry, category="webserver",
                rng=SeededStreams(seed).get("webserver-retry-jitter"),
            )
        self.disk = Disk(
            self.engine,
            geometry=cfg.disk_geometry,
            params=cfg.disk_params,
            name="server-disk",
            injector=self.injector,
        )
        self.fs = FileSystem(
            self.engine,
            self.disk,
            params=cfg.fs_params,
            cache_params=CacheParams(capacity_pages=cfg.cache_pages),
        )
        self.network = Network(self.engine, injector=self.injector)
        profile = get_profile(cfg.vm_profile)
        self.runtime = CliRuntime(
            self.engine, jit_params=profile.jit, interp_params=profile.interp
        )
        server_cls = SERVER_ARCHITECTURES[cfg.architecture]
        self.server = server_cls(
            self.engine, self.runtime, self.fs, self.network, cfg.server,
            retrier=retrier,
        )
        self.engine.run_process(self._setup())

    def _setup(self):
        docroot = self.config.server.docroot
        for url_path, size in self.config.files.items():
            yield from self.fs.create(docroot + url_path, size_bytes=size)
        yield from self.server.start()

    # -- conveniences ------------------------------------------------------------

    def client(self, retrier=None) -> HttpClient:
        return HttpClient(
            self.network, self.config.server.host, self.config.server.port,
            retrier=retrier,
        )

    def run_request_sequence(self, requests):
        """Run a list of ``("GET", path)`` / ``("POST", path, nbytes)``
        tuples sequentially from one client; returns the client
        results.  (A plain-Python driver for benches and tests.)"""
        client = self.client()

        def driver():
            results = []
            for req in requests:
                if req[0] == "GET":
                    results.append((yield from client.get(req[1])))
                else:
                    results.append((yield from client.post(req[1], req[2])))
            return results

        return self.engine.run_process(driver())

    @property
    def metrics(self):
        return self.server.metrics

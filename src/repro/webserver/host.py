"""One-stop environment: disk + file system + network + VM + server.

The benchmarks and examples need the whole stack wired consistently;
:class:`WebServerHost` owns that wiring and populates the document
root.  The default file population is the paper's three image files
(50607, 7501 and 14063 bytes, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cli import CliRuntime
from repro.cli.profiles import get_profile
from repro.io import CacheParams, FileSystem, FsParams, Network
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry, DiskParams
from repro.webserver.client import HttpClient
from repro.webserver.server import WebServer, WebServerConfig

__all__ = ["HostConfig", "WebServerHost", "PAPER_IMAGE_FILES"]

#: §4.2: "The sizes of each file are 50607 bytes, 7501 bytes, and
#: 14063 bytes." (image files served by the benchmark)
PAPER_IMAGE_FILES: Dict[str, int] = {
    "/images/photo1.jpg": 50607,
    "/images/photo2.jpg": 7501,
    "/images/photo3.jpg": 14063,
}


@dataclass(frozen=True)
class HostConfig:
    """Hardware/software stack configuration.

    ``vm_profile`` selects the CLI implementation's cost profile (see
    :mod:`repro.cli.profiles`) — the paper's future-work comparison
    across virtual machines.
    """

    files: Dict[str, int] = field(default_factory=lambda: dict(PAPER_IMAGE_FILES))
    cache_pages: int = 16384
    fs_params: FsParams = field(default_factory=FsParams)
    disk_params: DiskParams = field(default_factory=DiskParams)
    disk_geometry: DiskGeometry = field(default_factory=DiskGeometry)
    server: WebServerConfig = field(default_factory=WebServerConfig)
    vm_profile: str = "sscli"
    #: Optional :class:`repro.obs.Tracer` shared by the whole stack.
    tracer: Optional[object] = None
    #: Optional :class:`repro.faults.FaultPlan`; when set, a
    #: :class:`~repro.faults.FaultInjector` is armed against the disk
    #: and the network, and GET-side file I/O runs under ``retry``.
    fault_plan: Optional[object] = None
    #: Optional :class:`repro.faults.RetryPolicy` for server-side file
    #: reads (defaults apply when ``fault_plan`` is set and this isn't).
    retry: Optional[object] = None


class WebServerHost:
    """Builds the full stack and starts the server.

    After construction the server is listening; use :meth:`client` and
    drive requests inside simulation processes, or the convenience
    :meth:`run_request_sequence`.
    """

    def __init__(self, config: Optional[HostConfig] = None) -> None:
        self.config = config or HostConfig()
        cfg = self.config
        self.engine = Engine(tracer=cfg.tracer)
        self.engine.tracer.name_process("webserver")
        self.injector = None
        retrier = None
        if cfg.fault_plan is not None or cfg.retry is not None:
            from repro.faults import FaultInjector, Retrier
            from repro.rng import SeededStreams

            if cfg.fault_plan is not None:
                self.injector = FaultInjector(self.engine, cfg.fault_plan)
            seed = cfg.fault_plan.seed if cfg.fault_plan is not None else 0
            retrier = Retrier(
                self.engine, cfg.retry, category="webserver",
                rng=SeededStreams(seed).get("webserver-retry-jitter"),
            )
        self.disk = Disk(
            self.engine,
            geometry=cfg.disk_geometry,
            params=cfg.disk_params,
            name="server-disk",
            injector=self.injector,
        )
        self.fs = FileSystem(
            self.engine,
            self.disk,
            params=cfg.fs_params,
            cache_params=CacheParams(capacity_pages=cfg.cache_pages),
        )
        self.network = Network(self.engine, injector=self.injector)
        profile = get_profile(cfg.vm_profile)
        self.runtime = CliRuntime(
            self.engine, jit_params=profile.jit, interp_params=profile.interp
        )
        self.server = WebServer(
            self.engine, self.runtime, self.fs, self.network, cfg.server,
            retrier=retrier,
        )
        self.engine.run_process(self._setup())

    def _setup(self):
        docroot = self.config.server.docroot
        for url_path, size in self.config.files.items():
            yield from self.fs.create(docroot + url_path, size_bytes=size)
        yield from self.server.start()

    # -- conveniences ------------------------------------------------------------

    def client(self, retrier=None) -> HttpClient:
        return HttpClient(
            self.network, self.config.server.host, self.config.server.port,
            retrier=retrier,
        )

    def run_request_sequence(self, requests):
        """Run a list of ``("GET", path)`` / ``("POST", path, nbytes)``
        tuples sequentially from one client; returns the client
        results.  (A plain-Python driver for benches and tests.)"""
        client = self.client()

        def driver():
            results = []
            for req in requests:
                if req[0] == "GET":
                    results.append((yield from client.get(req[1])))
                else:
                    results.append((yield from client.post(req[1], req[2])))
            return results

        return self.engine.run_process(driver())

    @property
    def metrics(self):
        return self.server.metrics

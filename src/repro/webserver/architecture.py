"""The server-architecture layer: one protocol, two concurrency designs.

:class:`ServerHost` is the contract every server architecture
implements.  It owns everything that is *not* a concurrency decision:

* the listening endpoint (``TcpListener`` on the configured
  host/port, with the optional bounded accept backlog);
* the CIL handler assembly (``StartListen`` → ``DoGet``/``DoPost``/
  ``SendError``) and the ``Http.*`` intrinsics backing it
  (:class:`~repro.webserver.handlers.RequestHandlers`);
* the protocol-level degradation semantics — load shedding
  (``max_concurrency`` → immediate 503), deadline downgrade
  (``request_deadline`` → late success becomes 503), and accountable
  connection-reset handling — which MUST behave identically across
  architectures: a client cannot tell the designs apart by status
  codes, only by latency and the server's resource footprint;
* metrics (:class:`~repro.webserver.metrics.ServerMetrics` plus the
  ``server.*`` counters) and spans, all labeled/tagged with the
  architecture name so reports attribute results to the design that
  produced them.

What a subclass decides is *scheduling only*, via two hooks:

``_begin_accepting()``
    Called once from :meth:`start` after the handler assembly is
    loaded and the listener is live.  Starts whatever machinery pulls
    connections off the accept queue.

``_dispatch(socket)``
    Called (or inlined) per accepted connection: decide how the
    CIL handler chain runs — a managed thread per connection
    (:class:`~repro.webserver.server.ThreadPerConnectionServer`) or a
    task on a single-process event loop
    (:class:`~repro.webserver.eventloop.EventLoopServer`).

Two read-only properties make the architecture a measurable axis:

``live_workers``
    In-flight connections being served right now (worker threads or
    loop tasks) — the quantity ``max_concurrency`` sheds against.

``live_processes``
    Simulated processes the server currently holds — the **memory
    proxy** the ``ext_arch`` experiment reports.  Thread-per-
    connection pays one process per in-flight connection (plus the
    acceptor); the event loop holds exactly one, no matter how many
    connections are open.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cli import AssemblyBuilder, CliRuntime
from repro.errors import ConnectionReset, ReproError
from repro.io import FileSystem, Network, TcpListener
from repro.rng import SeededStreams
from repro.sim import Counter, Engine
from repro.webserver.handlers import RequestHandlers
from repro.webserver.httpmsg import HttpResponse
from repro.webserver.metrics import ServerMetrics

__all__ = ["ServerHost"]


class ServerHost:
    """Abstract base: one server instance bound to a runtime, file
    system and network.  Subclasses provide the concurrency design;
    see the module docstring for the contract.
    """

    #: Architecture tag carried by metrics labels and span attributes;
    #: also the key under :data:`repro.webserver.host.SERVER_ARCHITECTURES`.
    ARCHITECTURE = "abstract"

    def __init__(
        self,
        engine: Engine,
        runtime: CliRuntime,
        fs: FileSystem,
        network: Network,
        config=None,
        retrier=None,
        labels=None,
    ) -> None:
        from repro.webserver.server import WebServerConfig, build_handler_methods

        self.engine = engine
        self.runtime = runtime
        self.fs = fs
        self.network = network
        self.config = config or WebServerConfig()
        # Optional repro.faults.Retrier: GET file opens/reads run under
        # its policy so transient storage faults do not kill workers.
        self.retrier = retrier
        # Extra metric labels (e.g. node="node-0" when this server is
        # one member of a repro.cluster) merged into every registration
        # alongside server=/architecture=.
        self.labels = dict(labels or {})
        self.metrics = ServerMetrics()
        self.handlers = RequestHandlers(self)
        self.listener = TcpListener(network, self.config.host, self.config.port,
                                    backlog_limit=self.config.accept_backlog)
        #: Connections dispatched into the handler chain (sheds excluded).
        self.connections_accepted = Counter("server.connections")
        self.shed = Counter("server.shed")
        self.deadline_exceeded = Counter("server.deadline_exceeded")
        #: High-water mark of :attr:`live_processes` — the memory proxy.
        self.peak_live_processes = 0
        #: High-water mark of :attr:`live_workers`.
        self.peak_live_workers = 0
        reg = engine.metrics
        self.metric_labels = dict(self.labels)
        self.metric_labels.update(server=self.config.host,
                                  architecture=self.ARCHITECTURE)
        self.metrics.bind(reg, **self.metric_labels)
        for counter in (self.connections_accepted, self.shed,
                        self.deadline_exceeded):
            reg.register(counter.name, counter, **self.metric_labels)
        reg.gauge("server.peak_processes",
                  lambda: self.peak_live_processes,
                  **self.metric_labels)
        self._rng = SeededStreams(self.config.seed).get("post-file-names")
        self._started = False

        runtime.register_intrinsics(
            {
                "Http.ReceiveRequest": self.handlers.receive_request,
                "Http.DoGet": self.handlers.do_get,
                "Http.DoPost": self.handlers.do_post,
                "Http.SendError": self.handlers.send_error,
            }
        )
        start_listen, do_get, do_post, send_error = build_handler_methods()
        ab = AssemblyBuilder("WebServerApp")
        for method in (start_listen, do_get, do_post, send_error):
            ab.add_method("Work", method)
        self.assembly = ab.build()
        self._start_listen = start_listen

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        """Generator: load the handler assembly, bind the listener, and
        hand off to the architecture's accept machinery."""
        if self._started:
            raise ReproError("server already started")
        yield from self.runtime.load_assembly(self.assembly)
        self.listener.start()
        self._begin_accepting()
        self._started = True

    def stop(self) -> None:
        """Stop accepting new connections (in-flight requests finish)."""
        self.listener.stop()

    # -- architecture hooks -------------------------------------------------

    def _begin_accepting(self) -> None:
        """Start pulling connections off the accept queue."""
        raise NotImplementedError

    @property
    def live_workers(self) -> int:
        """In-flight connections being served right now."""
        raise NotImplementedError

    @property
    def live_processes(self) -> int:
        """Simulated processes this server currently holds (memory proxy)."""
        raise NotImplementedError

    # -- shared machinery ---------------------------------------------------

    def _note_dispatch(self) -> None:
        """Update the high-water marks after admitting a connection."""
        self.connections_accepted.add()
        if self.live_workers > self.peak_live_workers:
            self.peak_live_workers = self.live_workers
        if self.live_processes > self.peak_live_processes:
            self.peak_live_processes = self.live_processes

    def _should_shed(self) -> bool:
        """Load-shedding decision, identical across architectures: at
        or beyond ``max_concurrency`` in-flight connections, turn new
        arrivals away with an immediate 503."""
        limit = self.config.max_concurrency
        return limit is not None and self.live_workers >= limit

    def _shed_connection(self, socket):
        """Generator: turn away one connection with an immediate 503.

        Runs cheaply — a daemon process on the threaded server, a loop
        task on the event-driven one — so a saturated server never
        spends a managed worker saying "no"."""
        self.shed.add()
        self.metrics.record_failure("shed")
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant("server.shed", "webserver",
                           active=self.live_workers, arch=self.ARCHITECTURE)
        response = HttpResponse(503)
        try:
            yield from socket.send(response.wire_bytes,
                                   payload=response.header_text())
            yield from socket.close()
        except ConnectionReset:
            pass  # the client gave up first; the shed is already counted

    # -- path helpers ------------------------------------------------------------

    def resolve_path(self, url_path: str) -> str:
        """Map a URL path onto the simulated file system."""
        return self.config.docroot + url_path

    def new_upload_path(self) -> str:
        """A fresh random-number file name for POST data (the paper's
        no-synchronization-needed scheme)."""
        while True:
            name = f"{self.config.upload_dir}/{int(self._rng.integers(0, 2**31)):010d}.dat"
            if not self.fs.exists(name):
                return name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} [{self.ARCHITECTURE}] "
                f"{self.config.host}:{self.config.port} "
                f"workers={self.live_workers if self._started else 0}>")

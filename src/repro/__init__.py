"""repro — reproduction of "Benchmarking the CLI for I/O-Intensive
Computing" (Qin, Xie, Nathan, Tadepalli; IPDPS/PDSEC 2005).

The package provides, bottom-up:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel;
* :mod:`repro.storage` — mechanical disk models, schedulers, RAID-0;
* :mod:`repro.io` — file system, buffer cache with prefetching,
  managed file streams, simulated TCP;
* :mod:`repro.cli` — a simulated Common Language Infrastructure VM
  (CIL bytecode, verifier, JIT cost model, GC, managed threads);
* :mod:`repro.model` — the paper's application behavioral model and
  the QCRD instantiation (benchmark 1);
* :mod:`repro.traces` — the trace format, five application trace
  generators, and the trace-driven replayer (benchmark 2);
* :mod:`repro.webserver` — the multithreaded web server
  micro-benchmark (benchmark 3);
* :mod:`repro.bench` — experiment harness regenerating every table
  and figure in the paper's evaluation.

Quickstart::

    from repro.bench import run_experiment, render_table
    print(render_table(run_experiment("tab1")))
"""

from repro._version import __version__
from repro.errors import ReproError

# Convenience re-exports of the most-used entry points.
from repro.sim import Engine
from repro.model import (
    Application,
    ApplicationExecutor,
    MachineConfig,
    Program,
    WorkingSet,
    build_qcrd,
    cpu_speedup_study,
    disk_speedup_study,
)
from repro.traces import (
    IOOp,
    ReplayConfig,
    TraceReplayer,
    generate_trace,
    read_trace,
    write_trace,
)
from repro.webserver import WebServerHost, WorkloadConfig, WorkloadGenerator
from repro.bench import run_experiment, render_table

__all__ = [
    "__version__",
    "ReproError",
    "Engine",
    "WorkingSet",
    "Program",
    "Application",
    "build_qcrd",
    "MachineConfig",
    "ApplicationExecutor",
    "disk_speedup_study",
    "cpu_speedup_study",
    "IOOp",
    "generate_trace",
    "read_trace",
    "write_trace",
    "ReplayConfig",
    "TraceReplayer",
    "WebServerHost",
    "WorkloadConfig",
    "WorkloadGenerator",
    "run_experiment",
    "render_table",
]

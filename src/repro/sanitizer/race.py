"""The happens-before race detector.

Every unit of concurrency on the engine — the root scheduling context,
each :class:`~repro.sim.process.Process`, each
:class:`~repro.sim.taskloop.Task` — gets a :class:`Context` carrying a
vector clock.  The instrumented kernel primitives thread
happens-before edges through the clocks (see the hooks the sim modules
install when :data:`repro.sanitizer.runtime.active` is set):

* process/task spawn forks the spawner's clock;
* ``Event.succeed``/``fail`` attaches the triggering context's clock
  to the event; a waiter joins it on resumption (this one edge covers
  ``Resource`` grant hand-off, ``Channel`` transfers, socket
  send/receive wake-ups, process join, and task completion for free);
* ``Store`` carries a clock per *buffered* item, so a ``put`` consumed
  later still orders the producer before the consumer;
* ``AllOf``/``AnyOf`` accumulate every child's clock, not just the
  last one's.

Data accesses are declared with the :func:`shared` annotation API:
hot shared structures (BufferCache page maps, the balancer's admitted
and in-sync sets, listener lifecycle state) call
``var.read(engine, op)`` / ``var.write(engine, op)`` at their access
points.

**What counts as a race.**  The engine orders same-time events by an
incidental sequence number; events at *different* simulated times are
ordered by the clock itself, deterministically and meaningfully.  So
the detector reports a pair of accesses iff they (1) touch the same
shared variable at the **same simulated timestamp**, (2) conflict (at
least one write), (3) are unordered by happens-before, and (4) neither
is ``relaxed``.  Such a pair is exactly a schedule-sensitivity hazard:
which access wins depends only on scheduling order, the thing a
refactor silently changes.  ``relaxed=True`` marks control-plane
observations (health probes, backoff peeks) that are correct under
either order by design — every relaxed site should say why.

The detector is purely observational: it never schedules events and
never draws randomness, so simulated metrics are byte-identical with
it on or off.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from os.path import basename
from sys import _getframe
from typing import Any, Iterator, List, Optional, Set, Tuple

from repro.sanitizer import runtime
from repro.sanitizer.vectorclock import (
    fork_clock,
    happened_before,
    join_into,
    joined,
)

__all__ = [
    "Access",
    "Context",
    "RaceDetector",
    "RaceReport",
    "SharedVar",
    "disable",
    "enable",
    "sanitized",
    "shared",
]

#: Context ids are unique across *all* detectors in a process, so a
#: clock entry from a retired detector can never alias a live context.
_tids = itertools.count(1)
_serials = itertools.count(1)


def _context_label(owner: Any) -> str:
    name = getattr(owner, "name", None) or getattr(owner, "label", None)
    kind = type(owner).__name__.lower()
    return f"{kind}:{name}" if name else kind


class Context:
    """One concurrency context (root scheduler, process, or task)."""

    __slots__ = ("det", "tid", "name", "path", "clock")

    def __init__(self, det: "RaceDetector", tid: int, name: str,
                 parent: Optional["Context"]) -> None:
        self.det = det
        self.tid = tid
        self.name = name
        self.path: Tuple[str, ...] = (
            parent.path + (name,) if parent is not None else (name,))
        self.clock = fork_clock(parent.clock if parent is not None else None,
                                tid)
        if parent is not None:
            parent.clock[parent.tid] += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Context {' > '.join(self.path)} tid={self.tid}>"


class Access:
    """One recorded access to a :class:`SharedVar`."""

    __slots__ = ("time", "tid", "epoch", "write", "relaxed", "op", "path",
                 "site")

    def __init__(self, time: float, tid: int, epoch: int, write: bool,
                 relaxed: bool, op: str, path: str, site: str) -> None:
        self.time = time
        self.tid = tid
        self.epoch = epoch
        self.write = write
        self.relaxed = relaxed
        self.op = op
        self.path = path
        self.site = site

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        return f"{kind} {self.op!r} at {self.site} in [{self.path}]"


class RaceReport:
    """An unordered conflicting access pair on one shared variable."""

    __slots__ = ("var_name", "time", "first", "second")

    def __init__(self, var_name: str, time: float, first: Access,
                 second: Access) -> None:
        self.var_name = var_name
        self.time = time
        self.first = first
        self.second = second

    def format(self) -> str:
        return (
            f"race on {self.var_name!r} at t={self.time:.6g}:\n"
            f"  {self.first.describe()}\n"
            f"  {self.second.describe()}"
        )

    def __str__(self) -> str:
        return self.format()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RaceReport {self.var_name} t={self.time:.6g}>"


class SharedVar:
    """A declared shared mutable structure.

    Create with :func:`shared` at component construction; call
    :meth:`read`/:meth:`write` at each access point.  With no detector
    enabled both calls cost one global load and a compare.
    """

    __slots__ = ("name", "serial", "_det", "_time", "_accesses")

    def __init__(self, name: str) -> None:
        self.name = name
        self.serial = next(_serials)
        self._det: Optional["RaceDetector"] = None
        self._time = -1.0
        self._accesses: List[Access] = []

    def read(self, engine: Any, op: str = "read",
             relaxed: bool = False) -> None:
        det = runtime.active
        if det is not None:
            frame = _getframe(1)
            det.record(
                self, engine, False, relaxed, op,
                f"{basename(frame.f_code.co_filename)}:{frame.f_lineno}")

    def write(self, engine: Any, op: str = "write",
              relaxed: bool = False) -> None:
        det = runtime.active
        if det is not None:
            frame = _getframe(1)
            det.record(
                self, engine, True, relaxed, op,
                f"{basename(frame.f_code.co_filename)}:{frame.f_lineno}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedVar {self.name}#{self.serial}>"


def shared(name: str) -> SharedVar:
    """Declare a shared mutable structure for race checking."""
    return SharedVar(name)


class RaceDetector:
    """Vector-clock race detector over annotated shared accesses.

    Attributes
    ----------
    races:
        :class:`RaceReport` list in detection order (deterministic:
        the engine's event order is).
    accesses, events_tracked:
        Work counters for the summary line.
    """

    def __init__(self) -> None:
        self.root = Context(self, next(_tids), "main", None)
        self._current = self.root
        self.races: List[RaceReport] = []
        self.accesses = 0
        self.events_tracked = 0
        self._seen: Set[tuple] = set()

    # -- context management (hooks from Process/TaskLoop) ------------------

    def context_of(self, owner: Any, name: Optional[str] = None) -> Context:
        """The owner's context, forked from the current one on first
        sight (covers objects created before the detector was enabled)."""
        ctx = getattr(owner, "_san_ctx", None)
        if ctx is None or ctx.det is not self:
            ctx = Context(self, next(_tids), name or _context_label(owner),
                          self._current)
            owner._san_ctx = ctx
        return ctx

    def on_spawn(self, owner: Any, name: Optional[str] = None) -> None:
        """A process/task was created in the current context."""
        self.context_of(owner, name)

    def enter(self, owner: Any) -> Context:
        """Switch the current context to ``owner``'s; returns the
        previous current for :meth:`leave`."""
        prev = self._current
        self._current = self.context_of(owner)
        return prev

    def leave(self, prev: Context) -> None:
        self._current = prev

    # -- happens-before edges (hooks from Event/Store) ---------------------

    def on_trigger(self, event: Any) -> None:
        """``succeed``/``fail`` in the current context: stamp the event
        with the sender's clock (joined over any accumulated child
        clocks), then tick the sender."""
        cur = self._current
        vc = dict(cur.clock)
        prior = getattr(event, "_vc", None)
        if prior:
            join_into(vc, prior)
        event._vc = vc
        cur.clock[cur.tid] += 1
        self.events_tracked += 1

    def on_wakeup(self, owner: Any, event: Any) -> None:
        """``owner`` (process/task) resumes because ``event`` was
        processed: join the trigger's clock."""
        ctx = self.context_of(owner)
        vc = getattr(event, "_vc", None)
        if vc:
            join_into(ctx.clock, vc)
        ctx.clock[ctx.tid] += 1

    def on_condition(self, condition: Any, child: Any) -> None:
        """AllOf/AnyOf observed a child trigger: accumulate the child's
        clock so the condition's waiter joins *every* contributor, not
        just the last."""
        vc = getattr(child, "_vc", None)
        if vc:
            condition._vc = joined(getattr(condition, "_vc", None), vc)

    def on_store_put(self, store: Any) -> None:
        """An item was buffered (no getter waiting): carry the
        producer's clock alongside it."""
        clocks = getattr(store, "_san_vcs", None)
        if clocks is None:
            clocks = store._san_vcs = deque()
        cur = self._current
        clocks.append(dict(cur.clock))
        cur.clock[cur.tid] += 1

    def on_store_get(self, store: Any) -> None:
        """A buffered item is consumed now: join its producer's clock
        into the consumer."""
        clocks = getattr(store, "_san_vcs", None)
        if clocks:
            cur = self._current
            join_into(cur.clock, clocks.popleft())
            cur.clock[cur.tid] += 1

    def on_store_drain(self, store: Any) -> None:
        """Every buffered item is consumed by the drainer at once."""
        clocks = getattr(store, "_san_vcs", None)
        if clocks:
            cur = self._current
            while clocks:
                join_into(cur.clock, clocks.popleft())
            cur.clock[cur.tid] += 1

    # -- access recording ---------------------------------------------------

    def record(self, var: SharedVar, engine: Any, write: bool, relaxed: bool,
               op: str, site: str) -> None:
        """Record one access in the current context and check it
        against every other access to ``var`` at this timestamp."""
        now = engine._now
        cur = self._current
        self.accesses += 1
        acc = Access(now, cur.tid, cur.clock[cur.tid], write, relaxed, op,
                     " > ".join(cur.path), site)
        if var._det is not self or var._time != now:
            # A new timestamp: accesses at earlier times are ordered by
            # the event queue's strict time order, so only same-time
            # peers can race.  Drop the old window.
            var._det = self
            var._time = now
            var._accesses = [acc]
            return
        for prev in var._accesses:
            if prev.tid == cur.tid:
                continue  # program order within one context
            if not (write or prev.write):
                continue  # read/read never conflicts
            if relaxed or prev.relaxed:
                continue  # by-design tolerant observation
            if happened_before(prev.tid, prev.epoch, cur.clock):
                continue  # synchronized via an HB edge
            self._report(var, prev, acc)
        var._accesses.append(acc)

    def _report(self, var: SharedVar, first: Access, second: Access) -> None:
        key = (var.name, var.serial,
               first.site, first.op, first.write,
               second.site, second.op, second.write)
        if key in self._seen:
            return
        self._seen.add(key)
        self.races.append(
            RaceReport(f"{var.name}#{var.serial}", second.time, first, second))

    # -- reporting ----------------------------------------------------------

    def summary(self) -> dict:
        return {
            "races": len(self.races),
            "accesses": self.accesses,
            "events_tracked": self.events_tracked,
        }

    def format_report(self) -> str:
        if not self.races:
            return (f"sanitizer: no races "
                    f"({self.accesses} shared accesses checked, "
                    f"{self.events_tracked} events tracked)")
        parts = [race.format() for race in self.races]
        parts.append(f"{len(self.races)} race(s) found "
                     f"({self.accesses} shared accesses checked)")
        return "\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RaceDetector races={len(self.races)} "
                f"accesses={self.accesses}>")


# -- lifecycle --------------------------------------------------------------

def enable(detector: Optional[RaceDetector] = None) -> RaceDetector:
    """Enable race detection (replacing any active detector)."""
    det = detector if detector is not None else RaceDetector()
    runtime.active = det
    return det


def disable() -> Optional[RaceDetector]:
    """Disable race detection; returns the detector that was active."""
    det = runtime.active
    runtime.active = None
    return det


@contextmanager
def sanitized() -> Iterator[RaceDetector]:
    """Run a block under a fresh detector, restoring the previous one
    (if any) on exit — safe to nest."""
    prev = runtime.active
    det = RaceDetector()
    runtime.active = det
    try:
        yield det
    finally:
        runtime.active = prev

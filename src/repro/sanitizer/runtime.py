"""The sanitizer's on/off switch, isolated for import cheapness.

Every instrumented simulation primitive guards its hook with::

    from repro.sanitizer import runtime as _sanitizer
    ...
    if _sanitizer.active is not None:
        _sanitizer.active.on_trigger(self)

so the disabled cost is one module-attribute load and an ``is None``
compare — the same zero-overhead pattern as ``tracer.enabled``.  This
module holds *only* the global slot (no simulation imports), so the
kernel modules can import it without cycles.

``active`` is managed by :func:`repro.sanitizer.enable` /
:func:`repro.sanitizer.disable` / the :func:`repro.sanitizer.sanitized`
context manager; set it directly only in tests.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sanitizer.race import RaceDetector

__all__ = ["active"]

#: The currently enabled :class:`~repro.sanitizer.race.RaceDetector`,
#: or ``None`` (the default — all hooks are dormant).
active: Optional["RaceDetector"] = None

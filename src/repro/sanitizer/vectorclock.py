"""Vector clocks for the happens-before race detector.

A clock is a plain ``{tid: count}`` dict — sparse, because a run
creates thousands of short-lived process contexts and almost every
clock knows about only a handful of them.  The operations are free
functions over dicts rather than a wrapper class: the detector calls
them on the simulator's event-trigger path, where a method dispatch
per event is measurable.

Semantics (standard Mattern/Fidge, message = event trigger):

* ``fork``: child = copy of parent, plus a fresh component for the
  child; the parent ticks so post-fork parent work is unordered with
  the child.
* send (event ``succeed``/``fail``): attach a copy of the sender's
  clock to the event, then tick the sender — post-send work must not
  appear ordered before the receiver's resumption.
* receive (waiter resumes): join the event's clock into the waiter's,
  then tick.

``happened_before(tid, epoch, clock)`` answers the detector's only
question: is the access stamped ``(tid, epoch)`` ordered before the
context owning ``clock``?
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["fork_clock", "join_into", "joined", "happened_before"]

Clock = Dict[int, int]


def fork_clock(parent: Optional[Clock], child_tid: int) -> Clock:
    """Child clock at spawn: inherits everything the parent has seen."""
    clock: Clock = dict(parent) if parent else {}
    clock[child_tid] = clock.get(child_tid, 0) + 1
    return clock


def join_into(clock: Clock, other: Optional[Clock]) -> None:
    """Merge ``other`` into ``clock`` in place (componentwise max)."""
    if not other:
        return
    get = clock.get
    for tid, count in other.items():
        if get(tid, 0) < count:
            clock[tid] = count


def joined(a: Optional[Clock], b: Optional[Clock]) -> Clock:
    """A fresh clock equal to the componentwise max of ``a`` and ``b``."""
    clock: Clock = dict(a) if a else {}
    join_into(clock, b)
    return clock


def happened_before(tid: int, epoch: int, clock: Clock) -> bool:
    """True iff an access stamped ``(tid, epoch)`` is ordered before
    the context whose current clock is ``clock``."""
    return clock.get(tid, 0) >= epoch

"""Deterministic concurrency sanitizer for the simulation kernel.

Three complementary checkers, one package:

* :mod:`repro.sanitizer.race` — a happens-before race detector.
  Vector clocks ride the engine's own synchronization edges (process
  spawn/join, event trigger, resource hand-off, store item flow, task
  wake-ups); hot shared structures are annotated with :func:`shared`
  and report conflicting same-timestamp accesses from unordered
  contexts.  All hooks are dormant unless a detector is installed via
  :func:`enable` / :func:`sanitized` — the disabled cost is one module
  attribute load and an ``is None`` test, so benchmark results are
  byte-identical with the sanitizer off.

* :mod:`repro.analysis.staleread` — a static AST lint for the
  stale-read-across-wait shape (cache a shared attribute in a local,
  yield, keep using the cache), surfaced here through the package CLI.

* :mod:`repro.sanitizer.invariants` — declarative protocol invariants
  (replicate-before-ack, in-sync-before-serve, no-acked-write-lost,
  eject/readmit monotonicity) checked post-hoc over obs JSONL traces.

Command line::

    python -m repro.sanitizer check trace.jsonl   # protocol invariants
    python -m repro.sanitizer lint src/repro      # stale-read lint

See ``docs/static-analysis.md`` for the full story.
"""

from __future__ import annotations

from repro.sanitizer.invariants import (
    INVARIANTS,
    Violation,
    check_events,
    check_trace_file,
)
from repro.sanitizer.race import (
    RaceDetector,
    RaceReport,
    SharedVar,
    disable,
    enable,
    sanitized,
    shared,
)

__all__ = [
    "INVARIANTS",
    "RaceDetector",
    "RaceReport",
    "SharedVar",
    "Violation",
    "check_events",
    "check_trace_file",
    "disable",
    "enable",
    "sanitized",
    "shared",
]

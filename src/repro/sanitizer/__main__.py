"""Command-line entry points for the concurrency sanitizer.

Two subcommands, both deterministic and CI-friendly:

``check <trace.jsonl> [--invariant NAME]... [--format text|json]``
    Run the protocol-invariant machines over an obs JSONL trace.
    Exit 0 when clean, 1 when violations were found, 2 on usage or
    file errors.

``lint [PATH]... [--format text|json]``
    Run the stale-read-across-wait AST lint over files/directories
    (default: ``src/repro``).  Same exit-code contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.staleread import lint_paths
from repro.errors import ReproError
from repro.sanitizer.invariants import INVARIANTS, check_trace_file


def _cmd_check(args: argparse.Namespace) -> int:
    names: Optional[List[str]] = args.invariant or None
    try:
        violations = check_trace_file(args.trace, names)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (OSError, ValueError, ReproError) as exc:
        print(f"error: cannot check {args.trace}: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        payload = {
            "trace": args.trace,
            "invariants": names or sorted(INVARIANTS),
            "violations": [v.to_dict() for v in violations],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for violation in violations:
            print(violation)
        checked = ", ".join(names or sorted(INVARIANTS))
        print(f"checked [{checked}]: {len(violations)} violation(s)")
    return 1 if violations else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    findings = lint_paths(paths)
    if args.format == "json":
        print(json.dumps({"findings": [f.to_dict() for f in findings]},
                         indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding)
        print(f"stale-read lint: {len(findings)} finding(s)")
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="Concurrency sanitizer: protocol-invariant checking "
                    "and stale-read linting.")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="check protocol invariants over an obs JSONL trace")
    check.add_argument("trace", help="path to a JSONL trace file")
    check.add_argument(
        "--invariant", action="append", metavar="NAME",
        help=f"invariant to check (repeatable; default: all of "
             f"{', '.join(sorted(INVARIANTS))})")
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.set_defaults(func=_cmd_check)

    lint = sub.add_parser(
        "lint", help="run the stale-read-across-wait lint")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src/repro)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

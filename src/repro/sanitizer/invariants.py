"""Declarative protocol invariants over the obs JSONL event stream.

The cluster emits point events (``category == "cluster"``) for every
protocol-relevant transition: ``lb.eject`` / ``lb.readmit`` /
``node.up`` (control plane), ``cluster.replica_ack`` /
``cluster.commit`` (write path), ``cluster.serve`` (read path).  Each
invariant here is a small predicate machine fed those events in trace
order; a predicate that goes false yields a :class:`Violation`.

Because one :class:`~repro.obs.Tracer` may observe several engines
(e.g. the six ``ext_cluster`` scenarios), machines are instantiated
per ``pid`` — invariants never correlate events across engines.

The four bundled invariants:

``replicate_before_ack``
    A commit of ``(key, version)`` requires a ``cluster.replica_ack``
    from **every** node admitted at commit time.  This is the write
    path's core promise — the PR 8 write-across-readmit bug is exactly
    a commit whose admitted set outgrew its ack set.

``in_sync_before_serve``
    A read may be served only by a node that is in sync: no serve
    between the node's ``lb.eject`` and its ``node.up``.

``no_acked_write_lost``
    A served read of a committed key must return at least the last
    committed size (sizes are monotonic in version, so fewer bytes ==
    lost acked write).

``eject_readmit_monotonic``
    Per node: ``lb.eject`` only while admitted, ``lb.readmit`` only
    while ejected, ``node.up`` only after a readmit — the health state
    machine never skips or repeats a transition.

Run post-hoc over a trace file::

    python -m repro.sanitizer check trace.jsonl
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "INVARIANTS",
    "Violation",
    "check_events",
    "check_trace_file",
]


class Violation:
    """One invariant breach at one trace event."""

    __slots__ = ("invariant", "pid", "time", "message")

    def __init__(self, invariant: str, pid: int, time: float,
                 message: str) -> None:
        self.invariant = invariant
        self.pid = pid
        self.time = time
        self.message = message

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "pid": self.pid,
            "time": self.time,
            "message": self.message,
        }

    def __str__(self) -> str:
        return (f"[{self.invariant}] pid={self.pid} t={self.time:.6g}: "
                f"{self.message}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Violation {self.invariant} t={self.time:.6g}>"


class _Invariant:
    """Base predicate machine: feed events, collect violations."""

    name = "invariant"

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.violations: List[Violation] = []

    def _violate(self, time: float, message: str) -> None:
        self.violations.append(Violation(self.name, self.pid, time, message))

    def feed(self, name: str, time: float, attrs: dict) -> None:
        raise NotImplementedError  # pragma: no cover - abstract


def _admitted_set(attrs: dict) -> List[str]:
    admitted = attrs.get("admitted", "")
    return admitted.split(",") if admitted else []


class ReplicateBeforeAck(_Invariant):
    """Every node admitted at commit time acked the committed version."""

    name = "replicate_before_ack"

    def __init__(self, pid: int) -> None:
        super().__init__(pid)
        self._acked: Dict[Tuple[str, int], Set[str]] = {}

    def feed(self, name: str, time: float, attrs: dict) -> None:
        if name == "cluster.replica_ack":
            self._acked.setdefault(
                (attrs["key"], attrs["version"]), set()).add(attrs["node"])
        elif name == "cluster.commit":
            key, version = attrs["key"], attrs["version"]
            acked = self._acked.pop((key, version), set())
            missing = [n for n in _admitted_set(attrs) if n not in acked]
            if missing:
                self._violate(
                    time,
                    f"commit of {key} v{version} without ack from admitted "
                    f"replica(s) {', '.join(missing)} "
                    f"(acked: {', '.join(sorted(acked)) or 'none'})")


class InSyncBeforeServe(_Invariant):
    """Reads are served only by in-sync nodes (eject .. node.up window
    excluded)."""

    name = "in_sync_before_serve"

    def __init__(self, pid: int) -> None:
        super().__init__(pid)
        self._out_of_sync: Set[str] = set()

    def feed(self, name: str, time: float, attrs: dict) -> None:
        if name == "lb.eject":
            self._out_of_sync.add(attrs["node"])
        elif name == "node.up":
            self._out_of_sync.discard(attrs["node"])
        elif name == "cluster.serve" and attrs.get("kind") == "read":
            node = attrs["node"]
            if node in self._out_of_sync:
                self._violate(
                    time,
                    f"read of {attrs['key']} served by {node}, which is "
                    f"not in sync (ejected and not yet rebuilt)")


class NoAckedWriteLost(_Invariant):
    """A served read never returns fewer bytes than the last commit."""

    name = "no_acked_write_lost"

    def __init__(self, pid: int) -> None:
        super().__init__(pid)
        self._committed: Dict[str, Tuple[int, int]] = {}  # key -> (version, size)

    def feed(self, name: str, time: float, attrs: dict) -> None:
        if name == "cluster.commit":
            self._committed[attrs["key"]] = (attrs["version"], attrs["size"])
        elif name == "cluster.serve" and attrs.get("kind") == "read":
            key = attrs["key"]
            entry = self._committed.get(key)
            if entry is not None and attrs["bytes"] < entry[1]:
                self._violate(
                    time,
                    f"read of {key} from {attrs['node']} returned "
                    f"{attrs['bytes']} bytes < committed v{entry[0]} size "
                    f"{entry[1]} — an acked write is not visible")


class EjectReadmitMonotonic(_Invariant):
    """The per-node health machine takes legal transitions only:
    in_sync --eject--> ejected --readmit--> readmitted --up--> in_sync."""

    name = "eject_readmit_monotonic"

    _IN_SYNC, _EJECTED, _READMITTED = "in_sync", "ejected", "readmitted"

    def __init__(self, pid: int) -> None:
        super().__init__(pid)
        self._state: Dict[str, str] = {}

    def feed(self, name: str, time: float, attrs: dict) -> None:
        if name not in ("lb.eject", "lb.readmit", "node.up"):
            return
        node = attrs["node"]
        state = self._state.get(node, self._IN_SYNC)
        if name == "lb.eject":
            if state == self._EJECTED:
                self._violate(time, f"{node} ejected while already ejected")
            self._state[node] = self._EJECTED
        elif name == "lb.readmit":
            if state != self._EJECTED:
                self._violate(
                    time, f"{node} readmitted from state {state!r} "
                    f"(expected 'ejected')")
            self._state[node] = self._READMITTED
        else:  # node.up
            if state != self._READMITTED:
                self._violate(
                    time, f"{node} marked up (rebuilt) from state {state!r} "
                    f"(expected 'readmitted')")
            self._state[node] = self._IN_SYNC


#: name -> machine class, in documentation order.
INVARIANTS = {
    cls.name: cls
    for cls in (ReplicateBeforeAck, InSyncBeforeServe, NoAckedWriteLost,
                EjectReadmitMonotonic)
}


def check_events(events: Iterable, names: Optional[List[str]] = None
                 ) -> List[Violation]:
    """Run the (selected) invariant machines over trace events.

    ``events`` is an iterable of :class:`~repro.obs.TraceEvent` (or any
    object with ``name``/``start``/``pid``/``attrs``), in trace order.
    Machines are instantiated lazily per ``pid``.  Violations come back
    sorted by ``(pid, time, invariant, message)`` — deterministic for a
    deterministic trace.
    """
    selected = list(INVARIANTS) if names is None else names
    for name in selected:
        if name not in INVARIANTS:
            raise KeyError(
                f"unknown invariant {name!r}; choices: {sorted(INVARIANTS)}")
    machines: Dict[int, List[_Invariant]] = {}
    for event in events:
        pid = event.pid
        group = machines.get(pid)
        if group is None:
            group = machines[pid] = [INVARIANTS[n](pid) for n in selected]
        for machine in group:
            machine.feed(event.name, event.start, event.attrs)
    violations = [
        v
        for pid in sorted(machines)
        for machine in machines[pid]
        for v in machine.violations
    ]
    violations.sort(key=lambda v: (v.pid, v.time, v.invariant, v.message))
    return violations


def check_trace_file(path: str, names: Optional[List[str]] = None
                     ) -> List[Violation]:
    """Load a JSONL trace and run the invariant machines over it."""
    from repro.obs.export import read_jsonl

    return check_events(read_jsonl(path), names)

"""Unit constants and conversion helpers.

Conventions used throughout the library:

* **Simulated time** is a ``float`` in *seconds*.
* **Data sizes** are ``int`` *bytes*.
* The paper reports latencies in milliseconds; :func:`to_ms` converts.

The constants are plain numbers (not a unit-checking type) to keep the
hot simulation paths allocation-free.
"""

from __future__ import annotations

__all__ = [
    "KiB", "MiB", "GiB",
    "KB", "MB", "GB",
    "USEC", "MSEC", "SEC", "MINUTE",
    "to_ms", "to_us", "from_ms",
    "fmt_bytes", "fmt_time",
]

# Binary sizes (powers of two) -- used for page/block geometry.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# Decimal sizes -- used for disk-vendor-style transfer rates.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# Time (expressed in seconds, the simulation base unit).
USEC = 1e-6
MSEC = 1e-3
SEC = 1.0
MINUTE = 60.0


def to_ms(seconds: float) -> float:
    """Convert simulated seconds to milliseconds (the paper's unit)."""
    return seconds * 1e3


def to_us(seconds: float) -> float:
    """Convert simulated seconds to microseconds."""
    return seconds * 1e6


def from_ms(ms: float) -> float:
    """Convert milliseconds to simulated seconds."""
    return ms * 1e-3


def fmt_bytes(n: int) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(131072) == '128.0 KiB'``."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration with an auto-selected unit."""
    if seconds == 0.0:
        return "0 s"
    a = abs(seconds)
    if a < 1e-3:
        return f"{seconds * 1e6:.3g} us"
    if a < 1.0:
        return f"{seconds * 1e3:.4g} ms"
    if a < 120.0:
        return f"{seconds:.4g} s"
    return f"{seconds / 60.0:.4g} min"

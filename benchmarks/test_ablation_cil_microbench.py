"""Extension benchmark: CIL microbenchmark kernels across VM profiles."""

import pytest

from benchmarks.conftest import run_once
from repro.cli.microbench import run_kernel


def test_ext_cil_suite(benchmark, record_rows):
    from repro.bench.experiments.extensions import run_ext_cil

    result = record_rows(run_once(benchmark, run_ext_cil, 200))
    by_key = {(r[0], r[1]): r for r in result.rows}
    # Warm-call ordering across profiles holds for every kernel.
    for kernel in ("arith", "branch", "call", "alloc"):
        assert (
            by_key[("commercial", kernel)][3]
            < by_key[("sscli", kernel)][3]
            < by_key[("interpreter", kernel)][3]
        ), kernel
    # The interpreter profile never warms up via compilation.
    for kernel in ("arith", "branch", "call", "alloc"):
        assert by_key[("interpreter", kernel)][4] < 1.2


def test_alloc_kernel_gc_pressure(benchmark):
    result = run_once(benchmark, run_kernel, "alloc", 400)
    assert result.correct
    assert result.gc_collections >= 1

"""Benchmark-suite conventions.

Each benchmark runs a full simulation experiment once per round
(``benchmark.pedantic`` with bounded rounds — the simulations are
deterministic, so repetition only measures the Python host, not the
experiment), asserts the paper's qualitative shape on the result, and
reports the measured rows through ``benchmark.extra_info`` so
``--benchmark-json`` output carries the reproduced tables.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` under pytest-benchmark with one warm-up-free round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=3, iterations=1)


@pytest.fixture
def record_rows(benchmark):
    """Attach an ExperimentResult's rows to the benchmark report."""

    def _record(result):
        benchmark.extra_info["experiment"] = result.exp_id
        benchmark.extra_info["columns"] = list(result.columns)
        benchmark.extra_info["rows"] = [list(r) for r in result.rows]
        benchmark.extra_info["notes"] = list(result.notes)
        return result

    return _record

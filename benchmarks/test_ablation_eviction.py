"""Extension benchmark: cache eviction-policy ablation."""

from benchmarks.conftest import run_once
from repro.bench.experiments.extensions import run_ext_eviction


def test_ext_eviction(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_ext_eviction))
    ratios = {row[0]: row[1] for row in result.rows}
    assert set(ratios) == {"lru", "fifo", "clock"}
    # Recency-aware policies protect the hot working set.
    assert ratios["lru"] > ratios["fifo"]
    assert ratios["clock"] > ratios["fifo"]
    assert ratios["clock"] <= ratios["lru"] + 0.01

"""Tables 5 & 6 / Figure 6: web-server micro-benchmark."""

from benchmarks.conftest import run_once
from repro.bench.experiments.tab5_tab6_webserver import (
    PAPER_TAB5,
    PAPER_TAB6,
    run_tab5,
    run_tab6,
)


def test_tab5_first_request_read_write(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_tab5))
    assert [r[1] for r in result.rows] == [s for s, _r, _w in PAPER_TAB5]
    for row in result.rows:
        _i, _size, read_ms, _pr, write_ms, _pw = row
        # Cold first-touch operations are milliseconds, not microseconds.
        assert read_ms > 1.0
        assert write_ms > 1.0
    # The durable write of the smallest file is slower than a warm read
    # of the same data would be (paper: writes > reads) — compare the
    # write against the smallest read as a conservative proxy.
    reads = [r[2] for r in result.rows]
    writes = [r[4] for r in result.rows]
    assert min(writes) > 0.5 * min(reads)


def test_tab6_fig6_repeat_reads(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_tab6))
    times = result.column("read_ms")
    assert len(times) == len(PAPER_TAB6)
    # Figure 6's shape: the first read is the slowest by a wide margin
    # (JIT + cold buffers); subsequent reads serve from the I/O buffers.
    assert times[0] == max(times)
    assert times[0] > 10 * max(times[1:])
    # Monotone non-increasing after warm-up (all warm reads equal-fast).
    assert max(times[1:]) < 1.0

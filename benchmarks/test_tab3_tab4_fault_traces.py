"""Tables 3 & 4: cold trace replays with fault behaviour (LU, Cholesky)."""

from benchmarks.conftest import run_once
from repro.bench.experiments.tables_traces import run_tab3, run_tab4
from repro.traces.generator.lu import LU_SEEK_OFFSETS


def test_tab3_lu_seeks(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_tab3))
    # All six published seek targets reproduced, in order.
    assert [r[1] for r in result.rows] == list(LU_SEEK_OFFSETS)
    # Seeks are sub-microsecond bookkeeping (the paper's 1e-4 ms regime).
    for row in result.rows:
        assert row[2] < 0.001
    # The prose comparison: close far more expensive than open
    # (0.4566 vs 0.0006 ms in the paper) — encoded in the notes.
    assert any("close" in n for n in result.notes)


def test_tab4_cholesky_bimodal(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_tab4))
    read_ms = result.column("read_ms")
    fast = [t for t in read_ms if t < 0.05]
    slow = [t for t in read_ms if t >= 0.05]
    # Bimodality: both populations present, orders of magnitude apart.
    assert len(fast) >= 4
    assert len(slow) >= 4
    assert min(slow) > 50 * max(fast)
    # Every read is preceded by a flat, tiny seek.
    for s in result.column("seek_ms"):
        assert s < 0.001
    # The published request sizes are reproduced verbatim.
    from repro.traces.generator.cholesky import CHOLESKY_REQUEST_SIZES

    assert result.column("data_size_bytes") == list(CHOLESKY_REQUEST_SIZES)

"""Figures 2 & 3: QCRD execution-time decomposition benchmarks."""

from benchmarks.conftest import run_once
from repro.bench.experiments.fig2_fig3_qcrd import run_fig2, run_fig3


def test_fig2_qcrd_times(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_fig2))
    rows = {r[0]: r for r in result.rows}
    # Program 1 is CPU-dominated; Program 2 is I/O-dominated.
    assert rows["Program1"][1] > rows["Program1"][2]
    assert rows["Program2"][2] > rows["Program2"][1]
    # Program 1 runs longer overall.
    assert sum(rows["Program1"][1:3]) > sum(rows["Program2"][1:3])
    # Application bars are the per-program sums.
    assert abs(rows["Application"][1] - rows["Program1"][1] - rows["Program2"][1]) < 0.5
    # The paper's <10% model-vs-simulation error bound holds.
    assert all(r[3] < 10.0 for r in result.rows)


def test_fig3_qcrd_percentages(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_fig3))
    rows = {r[0]: r for r in result.rows}
    # Percentages sum to 100 per component.
    for name, row in rows.items():
        assert abs(row[1] + row[2] - 100.0) < 0.5, name
    # Program 2 far more I/O-intensive than Program 1.
    assert rows["Program2"][2] > 85.0
    assert rows["Program1"][2] < 30.0
    # The application spends a noticeably large share on I/O.
    assert 30.0 < rows["Application"][2] < 60.0

"""Extension: the Table 6 experiment across CLI implementations.

The paper's §5 future work: "evaluate performance of the benchmarks
... on other virtual machines" and "compare the performance of the
benchmarks on different CLI-based virtual machines".  We repeat the
repeated-read experiment under three VM cost profiles
(see repro.cli.profiles).
"""

import pytest

from benchmarks.conftest import run_once
from repro.cli.profiles import VM_PROFILES
from repro.webserver import HostConfig, WebServerHost


def repeat_responses(profile: str, trials: int = 6):
    """Per-trial *response* times: JIT compilation of the handler chain
    happens before the handler's own file I/O, so it lands in the
    response time (the paper's reason 2: the JIT 'might force the
    program to start the disk I/O operations relatively late')."""
    host = WebServerHost(HostConfig(vm_profile=profile))
    host.run_request_sequence([("GET", "/images/photo3.jpg")] * trials)
    return [r.response_time for r in host.metrics.gets()]


@pytest.fixture(scope="module")
def profile_times():
    return {name: repeat_responses(name) for name in VM_PROFILES}


def test_ablation_vm_profiles(benchmark, record_rows, profile_times):
    run_once(benchmark, repeat_responses, "sscli")
    benchmark.extra_info["response_seconds_by_profile"] = profile_times

    sscli = profile_times["sscli"]
    commercial = profile_times["commercial"]
    interp = profile_times["interpreter"]

    # Every profile shows the first-request-slowest shape (cold buffers
    # dominate even without a JIT).
    for name, times in profile_times.items():
        assert times[0] > 2 * max(times[1:]), name

    # The optimizing JIT pays more up front than the SSCLI...
    assert commercial[0] > sscli[0]
    # ...but wins at steady state; the pure interpreter loses there.
    assert max(commercial[1:]) < max(sscli[1:])
    assert min(interp[1:]) > max(commercial[1:])


def test_no_jit_profile_has_no_warmup_from_compilation(benchmark):
    """With a pure interpreter, trial-1 overhead is cold cache only."""
    times = run_once(benchmark, repeat_responses, "interpreter", 2)
    host = WebServerHost(HostConfig(vm_profile="interpreter"))
    assert host.runtime.jit.params.base_cost == 0.0
    assert times[0] > times[1]  # still slower: buffer cache, not JIT

"""Extension benchmark: communication fabrics for distributed execution."""

import pytest

from benchmarks.conftest import run_once
from repro.bench.experiments.extensions import run_ext_dist


def test_ext_dist_fabrics(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_ext_dist))
    makespans = {row[0]: row[1] for row in result.rows}
    # Point-to-point LAN fabrics beat the shared switch under
    # concurrent communication bursts.
    assert makespans["ring-lan"] < makespans["shared-switch"]
    assert makespans["all-to-all-lan"] < makespans["shared-switch"]
    # All-to-all splits each burst across peers → fastest here.
    assert makespans["all-to-all-lan"] <= makespans["ring-lan"]
    # A widely distributed (WAN) deployment pays dearly.
    assert makespans["ring-wan"] > 2 * makespans["shared-switch"]

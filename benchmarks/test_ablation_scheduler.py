"""Ablation: disk-arm scheduling policy under a random backlog.

The storage substrate ships five classic schedulers; this ablation
shows position-aware policies beating FCFS when a deep queue of
random requests is outstanding (the regime trace replay does not
reach, since it issues one request at a time).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry, IORequest, SCHEDULERS

GEO = DiskGeometry(cylinders=20_000, heads=4, sectors_per_track=200)


def drain_backlog(policy: str, nrequests: int = 200, seed: int = 7) -> float:
    """Queue ``nrequests`` random-cylinder requests, drain them all,
    return the simulated completion time."""
    rng = np.random.default_rng(seed)
    engine = Engine()
    disk = Disk(engine, geometry=GEO, scheduler=policy)
    lbas = rng.integers(0, GEO.total_blocks - 8, size=nrequests)
    events = [disk.submit(IORequest(lba=int(lba), nblocks=8)) for lba in lbas]

    def waiter():
        yield engine.all_of(events)

    engine.run_process(waiter())
    return engine.now


@pytest.fixture(scope="module")
def drain_times():
    return {name: drain_backlog(name) for name in SCHEDULERS}


def test_ablation_schedulers(benchmark, record_rows, drain_times):
    run_once(benchmark, drain_backlog, "sstf")
    benchmark.extra_info["drain_seconds"] = drain_times
    # Position-aware policies beat FCFS on a deep random backlog.
    assert drain_times["sstf"] < 0.8 * drain_times["fcfs"]
    assert drain_times["scan"] < 0.9 * drain_times["fcfs"]
    assert drain_times["cscan"] < 0.95 * drain_times["fcfs"]
    # C-LOOK selects like C-SCAN at this abstraction level.
    assert drain_times["clook"] == pytest.approx(drain_times["cscan"], rel=1e-9)


def test_all_schedulers_complete_all_requests(benchmark):
    """Work conservation holds regardless of policy."""
    def total_served():
        engine = Engine()
        disk = Disk(engine, geometry=GEO, scheduler="scan")
        events = [disk.submit_range(i * 1000, 4) for i in range(50)]

        def waiter():
            yield engine.all_of(events)

        engine.run_process(waiter())
        return disk.requests_completed.value

    assert run_once(benchmark, total_served) == 50

"""Tables 1 & 2: steady-state trace replays (Dmine, Titan)."""

from benchmarks.conftest import run_once
from repro.bench.experiments.tables_traces import PAPER, run_tab1, run_tab2


def _by_op(result):
    return {row[0]: row for row in result.rows}


def test_tab1_dmine(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_tab1))
    rows = _by_op(result)
    # The paper's ordering: seek < open < read < close.
    assert rows["seek"][2] < rows["open"][2] < rows["read"][2] < rows["close"][2]
    # Within 3x of every published value (warm path is software-bound,
    # so absolute agreement is expected, not just shape).
    paper = PAPER["dmine"]
    for op in ("read", "open", "close", "seek"):
        measured = rows[op][2]
        assert measured < 3 * paper[op] and measured > paper[op] / 3, op


def test_tab2_titan(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_tab2))
    rows = _by_op(result)
    assert rows["open"][2] < rows["close"][2]
    assert rows["read"][2] < rows["close"][2] * 2  # all microsecond-scale
    paper = PAPER["titan"]
    for op in ("read", "open", "close"):
        measured = rows[op][2]
        assert measured < 3 * paper[op] and measured > paper[op] / 3, op

"""Figures 4 & 5: QCRD speedup scaling benchmarks."""

import pytest

from benchmarks.conftest import run_once
from repro.bench.experiments.fig4_fig5_speedup import run_fig4, run_fig5


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4()


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5()


def _speedups(result):
    return {row[0]: row[1] for row in result.rows}


def test_fig4_disk_speedup(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_fig4, counts=(2, 8, 32)))
    speedups = _speedups(result)
    # "the speedup changes slightly with the increasing value of the
    # disk number" — low, flat, monotone.
    assert 1.0 <= speedups[2] <= 1.35
    assert 1.0 <= speedups[32] <= 1.5
    assert speedups[2] <= speedups[8] <= speedups[32]
    assert speedups[32] - speedups[2] < 0.4


def test_fig5_cpu_speedup(benchmark, record_rows):
    result = record_rows(run_once(benchmark, run_fig5, counts=(2, 8, 32)))
    speedups = _speedups(result)
    # Rises meaningfully, saturates around the paper's 2.1-2.4 plateau.
    assert speedups[2] > 1.3
    assert 1.9 <= speedups[32] <= 2.6
    assert speedups[32] - speedups[8] < 0.3


def test_cpu_speedup_beats_disk_speedup(benchmark, fig4_result, fig5_result):
    """The paper's headline comparison between Figures 4 and 5.  The
    benchmarked quantity is the analytic prediction (closed form; the
    heavy simulations are timed by the two tests above)."""
    from repro.model import build_qcrd, predict_speedup

    benchmark.pedantic(
        predict_speedup, args=(build_qcrd(), "cpus", (2, 8, 32)),
        rounds=3, iterations=1,
    )
    disk = _speedups(fig4_result)
    cpu = _speedups(fig5_result)
    assert cpu[32] > disk[32] + 0.5
    # And the simulation tracks the analytic prediction for both.
    for result in (fig4_result, fig5_result):
        for _n, measured, predicted in result.rows:
            assert abs(measured - predicted) / predicted < 0.12

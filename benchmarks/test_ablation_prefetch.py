"""Ablation: prefetch policy on the sequential-scan trace workload.

The paper's §3.4 attributes its latency structure to OS prefetching.
This ablation quantifies it: the Dmine sequential scan replayed cold
under no / fixed / adaptive read-ahead.
"""

import pytest

from benchmarks.conftest import run_once
from repro.traces import IOOp, ReplayConfig, TraceReplayer, generate_dmine
from repro.units import MiB


def replay_with_policy(policy: str):
    # 3 ms of candidate counting between reads: the window read-ahead
    # overlaps with, as in the real mining application.
    header, records = generate_dmine(
        dataset_size=16 * MiB, passes=1, compute_gap=3e-3
    )
    # The fixed window is sized to the application's read granularity
    # (131072 B = 32 pages), as a tuned deployment would configure it.
    cfg = ReplayConfig(
        warmup=False, prefetch_policy=policy, prefetch_window=32,
        file_size=64 * MiB,
    )
    return TraceReplayer(cfg).replay(header, records, f"dmine-{policy}")


@pytest.fixture(scope="module")
def results():
    return {p: replay_with_policy(p) for p in ("none", "fixed", "adaptive")}


def test_ablation_prefetch_policies(benchmark, record_rows, results):
    # Benchmark one representative run; assert on the precomputed set.
    run_once(benchmark, replay_with_policy, "fixed")
    benchmark.extra_info["mean_read_ms"] = {
        p: r.timings.mean_ms(IOOp.READ) for p, r in results.items()
    }
    none, fixed, adaptive = (results[p] for p in ("none", "fixed", "adaptive"))
    # Read-ahead removes most cold misses on a sequential scan.
    assert fixed.cache_misses < 0.5 * none.cache_misses
    assert adaptive.cache_misses < 0.5 * none.cache_misses
    # And the reads themselves get cheaper (I/O overlapped with compute).
    assert fixed.timings.mean_ms(IOOp.READ) < none.timings.mean_ms(IOOp.READ)
    assert adaptive.timings.mean_ms(IOOp.READ) < none.timings.mean_ms(IOOp.READ)
    assert adaptive.total_time <= none.total_time


def test_prefetch_does_not_help_without_locality(benchmark):
    """Control: on a pure warm cache, policies are indistinguishable."""
    header, records = generate_dmine(dataset_size=8 * MiB, passes=1)

    def warm(policy):
        cfg = ReplayConfig(warmup=True, prefetch_policy=policy, file_size=32 * MiB)
        return TraceReplayer(cfg).replay(header, records)

    a = run_once(benchmark, warm, "none")
    b = warm("adaptive")
    assert a.timings.mean_ms(IOOp.READ) == pytest.approx(
        b.timings.mean_ms(IOOp.READ), rel=0.05
    )

"""Cross-subsystem integration tests: the full paper pipeline.

These exercise paths that unit tests cover piecewise: trace files on
real disk → VM replay → statistics; the model executor over the same
storage substrate the replayer uses; and the web server sharing one
engine with direct file-system users.
"""

import pytest

from repro import (
    ApplicationExecutor,
    IOOp,
    MachineConfig,
    ReplayConfig,
    TraceReplayer,
    WebServerHost,
    build_qcrd,
    generate_trace,
    read_trace,
    write_trace,
)
from repro.units import MiB


def test_trace_file_disk_roundtrip_then_replay(tmp_path):
    """generate → write to a real file → read back → replay on the VM."""
    header, records = generate_trace("titan")
    path = tmp_path / "titan.umdt"
    write_trace(path, header, records)
    header2, records2 = read_trace(path)
    assert records2 == records
    result = TraceReplayer(ReplayConfig(warmup=True)).replay(header2, records2, "titan")
    assert result.timings.count(IOOp.READ) == sum(
        1 for r in records if r.op is IOOp.READ
    )
    assert result.jit_methods >= 1


def test_all_five_applications_replay_end_to_end():
    for name in ("dmine", "pgrep", "lu", "titan", "cholesky"):
        header, records = generate_trace(name)
        cfg = ReplayConfig(file_size=128 * MiB)
        result = TraceReplayer(cfg).replay(header, records, name)
        assert result.total_time > 0, name
        assert result.timings.count(IOOp.OPEN) >= 1, name
        # The paper's universal observation holds for every application.
        assert result.timings.mean_ms(IOOp.CLOSE) > result.timings.mean_ms(
            IOOp.OPEN
        ), name


def test_qcrd_full_pipeline_determinism():
    """Two complete QCRD runs produce bit-identical results."""
    a = ApplicationExecutor(build_qcrd(), MachineConfig(cpus=2, disks=2)).run()
    b = ApplicationExecutor(build_qcrd(), MachineConfig(cpus=2, disks=2)).run()
    assert a.makespan == b.makespan
    for name in a.programs:
        assert a.programs[name].io_busy == b.programs[name].io_busy
        assert a.programs[name].cpu_busy == b.programs[name].cpu_busy


def test_replay_determinism():
    header, records = generate_trace("cholesky")
    r1 = TraceReplayer(ReplayConfig()).replay(header, records)
    r2 = TraceReplayer(ReplayConfig()).replay(header, records)
    assert [t.seconds for t in r1.per_record] == [t.seconds for t in r2.per_record]


def test_webserver_determinism():
    def run():
        host = WebServerHost()
        host.run_request_sequence(
            [("GET", "/images/photo3.jpg"), ("POST", "/u", 9000)] * 3
        )
        return [(r.method, r.response_time) for r in host.metrics.requests]

    assert run() == run()


def test_webserver_coexists_with_direct_fs_users():
    """A background process hammering the file system must not corrupt
    server behaviour (they share the disk, cache, and engine)."""
    host = WebServerHost()
    engine, fs = host.engine, host.fs

    def background_writer():
        handle = yield from fs.open("/scratch/noise.dat", writable=True, create=True)
        for i in range(20):
            yield from fs.write(handle, 8192, offset=i * 8192)
            yield engine.timeout(1e-4)
        yield from fs.close(handle)

    engine.process(background_writer())
    results = host.run_request_sequence([("GET", "/images/photo1.jpg")] * 4)
    assert all(r.status == 200 and r.body_bytes == 50607 for r in results)
    assert fs.size_of("/scratch/noise.dat") == 20 * 8192


def test_paper_headline_claim():
    """The paper's conclusion: 'the CLI is an efficient virtual machine
    for I/O-intensive computing' — operationalized: VM overhead (JIT +
    interpretation) is a small fraction of an I/O-bound replay."""
    header, records = generate_trace("lu")
    result = TraceReplayer(ReplayConfig(file_size=128 * MiB)).replay(
        header, records, "lu"
    )
    # Upper-bound the VM's own costs and compare with total time.
    from repro.cli import InterpreterParams, JitParams

    jit, interp = JitParams(), InterpreterParams()
    vm_cost = (
        result.jit_methods * (jit.base_cost + 40 * jit.per_instruction_cost)
        + result.instructions * interp.instruction_cost
    )
    assert vm_cost < 0.05 * result.total_time
